//! Static analysis of a Python model-pipeline script (paper §3.2): the
//! script is lexed, parsed, and compiled against the API knowledge base
//! into Raven's unified IR; the extracted pipeline spec is then trained on
//! in-database data and stored as a model.
//!
//! ```sh
//! cargo run --example python_pipeline
//! ```

use raven_core::{RavenSession, SessionConfig};
use raven_datagen::hospital;
use raven_pyanalysis::analyze;
use std::time::Instant;

const SCRIPT: &str = r#"
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier

pi = pd.read_sql("patient_info")
bt = pd.read_sql("blood_tests")
pt = pd.read_sql("prenatal_tests")
joined = pi.merge(bt, on="id")
full = joined.merge(pt, on="id")
pregnant_only = full[full.pregnant == 1]
features = pregnant_only[["age", "bp", "fetal_hr"]]
model_pipeline = Pipeline([
    ("scaler", StandardScaler()),
    ("clf", DecisionTreeClassifier(max_depth=6)),
])
predictions = model_pipeline.predict(features)
"#;

fn main() {
    let session = RavenSession::with_config(SessionConfig::default());
    let data = hospital::generate(5_000, 42);
    data.register(session.catalog()).expect("register");

    // 1. Static analysis: script → dataflow trace + unified IR.
    let start = Instant::now();
    let analysis = analyze(SCRIPT, session.catalog()).expect("analyze");
    let elapsed = start.elapsed();

    println!("== Static analysis trace ==");
    for line in &analysis.trace {
        println!("  {line}");
    }
    println!("\nanalysis time: {elapsed:?} (paper: < 10 ms)");
    println!("feature columns: {:?}", analysis.feature_columns);
    println!("UDF fallbacks: {:?}", analysis.udfs);

    println!("\n== Extracted data plan (unified IR) ==");
    println!("{}", analysis.data_plan.as_ref().expect("data plan"));

    // Untrained model → UDF node, per the paper.
    let udf_plan = analysis.to_plan(None).expect("plan");
    println!("== With untrained model (becomes a UDF) ==");
    println!("{udf_plan}");

    // 2. Train the extracted spec on database data and store it. Training
    //    uses an unfiltered variant of the script so the labels (one per
    //    patient) align with the dataflow output.
    let train_script = SCRIPT.replace(
        "pregnant_only = full[full.pregnant == 1]\nfeatures = pregnant_only[[",
        "features = full[[",
    );
    let labels: Vec<f64> = data
        .length_of_stay
        .iter()
        .map(|&s| (s > 4.0) as i64 as f64)
        .collect();
    let version = session
        .store_model_from_script("stay_from_script", &train_script, &labels)
        .expect("train from script");
    println!("trained + stored model 'stay_from_script' (version {version})");

    // 3. The stored model is queryable through SQL like any other.
    let result = session
        .query(
            "WITH data AS (\
               SELECT * FROM patient_info AS pi \
               JOIN blood_tests AS bt ON pi.id = bt.id \
               JOIN prenatal_tests AS pt ON bt.id = pt.id)\
             SELECT d.id, p.long_stay \
             FROM PREDICT(MODEL = 'stay_from_script', DATA = data AS d) \
             WITH (long_stay FLOAT) AS p \
             WHERE d.pregnant = 1 AND p.long_stay > 0.5",
        )
        .expect("query");
    println!(
        "\n{} pregnant patients predicted long-stay; optimizer: {}",
        result.table.num_rows(),
        result.report.summary()
    );
}
