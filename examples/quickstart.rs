//! Quickstart: store a model in the database, run an inference query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{hospital, train};

fn main() {
    // A Raven session is an in-process "database" with a model store.
    let session = RavenSession::with_config(SessionConfig::default());

    // 1. Load data — the hospital tables of the paper's running example.
    let data = hospital::generate(10_000, 42);
    data.register(session.catalog()).expect("register tables");
    println!(
        "registered tables: {:?} ({} patients)",
        session.catalog().table_names(),
        data.len()
    );

    // 2. Train a model pipeline and store it *in the database* — it gets
    //    versioned, serialized and audited like operational data.
    let pipeline = train::hospital_tree(&data, 6).expect("train model");
    let version = session
        .store_model("duration_of_stay", pipeline)
        .expect("store model");
    println!("stored model 'duration_of_stay' (version {version})");

    // 3. An analyst runs an inference query: SQL with PREDICT.
    let sql = "\
        WITH data AS (\
          SELECT * FROM patient_info AS pi \
          JOIN blood_tests AS bt ON pi.id = bt.id \
          JOIN prenatal_tests AS pt ON bt.id = pt.id)\
        SELECT d.id, p.length_of_stay \
        FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
        WITH (length_of_stay FLOAT) AS p \
        WHERE d.pregnant = 1 AND p.length_of_stay > 6";
    let result = session.query(sql).expect("run inference query");

    println!(
        "\n{} pregnant patients predicted to stay > 6 days (of {} total)",
        result.table.num_rows(),
        data.len()
    );
    for row in 0..result.table.num_rows().min(5) {
        let values = result.table.batch().row(row).expect("row");
        println!("  id={} predicted_stay={}", values[0], values[1]);
    }
    println!(
        "\nquery time: {:?} (execution {:?})",
        result.total_time, result.exec_time
    );
    println!("optimizer: {}", result.report.summary());

    // 4. EXPLAIN shows the unified IR before/after cross optimization.
    let explain = session.explain(sql).expect("explain");
    println!("\n{explain}");

    // 5. The audit log recorded the model mutation.
    println!("audit log: {:?}", session.store().audit_log());
}
