//! Prediction serving: one shared `ServerState`, many client threads.
//!
//! Run with `cargo run --release --example serving`. Builds the paper's
//! hospital workload, trains a length-of-stay model, then serves it two
//! ways at once:
//!
//! * SQL inference queries from 4 concurrent analyst threads — the
//!   prepared-plan cache makes parse → bind → optimize a one-time cost;
//! * single-row point lookups from 4 concurrent application threads —
//!   the micro-batcher coalesces them into batched scorer calls;
//! * the same state behind the framed-TCP front end, queried over a real
//!   socket by `RavenClient` (with a deliberately overloaded request to
//!   show the typed admission-control rejection);
//! * template-shaped traffic: queries differing only in their constants
//!   share one prepared plan (transparently via normalization, and
//!   explicitly via `query_params`);
//! * multi-tenant namespaces: two tenants holding a model with the
//!   *same name* but different parameters, each served its own results
//!   over the same socket (`RavenClient::for_tenant`, protocol v4), with
//!   a model swap in one tenant invalidating nothing in the other;
//! * deterministic result caching: an exact repeat (same plan, same
//!   constants, same model/table versions) skips execution entirely, and
//!   a model update invalidates the memoized rows;
//! * observability over the wire: Prometheus-style metrics and the
//!   slow-query log (protocol v5 `Metrics` / `Traces` frames), with the
//!   slowest request's per-stage span-tree breakdown printed the way an
//!   operator would read it during an incident.

use raven_data::Value;
use raven_datagen::{hospital, train};
use raven_server::{BatchConfig, NetConfig, RavenClient, RavenServer, ServerConfig, ServerState};
use std::sync::Arc;
use std::time::Duration;

/// A one-feature linear model `score = w · x0` — enough to make two
/// tenants' same-named models visibly different.
fn linear_model(w: f64) -> raven_ml::Pipeline {
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    Pipeline::new(
        vec![FeatureStep::new("x0", Transform::Identity)],
        Estimator::Linear(LinearModel::new(vec![w], 0.0, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

const SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

fn main() {
    // 1. Stand up the server: catalog + model store behind one Arc.
    // Trace every request (instead of the production 1-in-64 default)
    // and call anything over 2 ms slow, so the forensics section below
    // has a guaranteed span tree to show.
    let config = ServerConfig {
        trace_sample_rate: 1,
        slow_query_threshold: std::time::Duration::from_millis(2),
        ..ServerConfig::default()
    };
    let server = Arc::new(ServerState::new(config));
    let data = hospital::generate(20_000, 42);
    data.register(server.catalog()).expect("register tables");
    let model = train::hospital_tree(&data, 6).expect("train model");

    // Keep the encoded feature columns around for point lookups.
    let joined = data.joined_batch();
    let columns: Vec<Vec<f64>> = model
        .steps()
        .iter()
        .map(|step| {
            let col = joined.column_by_name(&step.column).expect("column");
            step.transform.encode_raw(col).expect("encode")
        })
        .collect();
    server
        .store_model("duration_of_stay", model)
        .expect("store model");

    // 2. Four analyst threads running the same SQL inference query.
    let analysts: Vec<_> = (0..4)
        .map(|t| {
            let server = server.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    let result = server.execute(SQL).expect("query");
                    if t == 0 && i == 0 {
                        println!(
                            "first query: {} rows in {:.2} ms (prepared in {:.2} ms, \
                             cache hit: {})",
                            result.table.num_rows(),
                            result.total_time.as_secs_f64() * 1e3,
                            result.prepared.prepare_time.as_secs_f64() * 1e3,
                            result.cache_hit,
                        );
                    }
                }
            })
        })
        .collect();

    // 3. Four application threads scoring individual patients.
    let apps: Vec<_> = (0..4)
        .map(|t| {
            let server = server.clone();
            let columns = columns.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let patient = (t * 1_000 + i * 37) % 20_000;
                    let row: Vec<f64> = columns.iter().map(|c| c[patient]).collect();
                    let stay = server
                        .score_row("duration_of_stay", row)
                        .expect("point score");
                    assert!(stay.is_finite());
                }
            })
        })
        .collect();

    for h in analysts.into_iter().chain(apps) {
        h.join().expect("client thread");
    }

    // 4. The same state over the wire: framed TCP on an ephemeral port.
    let net = RavenServer::bind(server.clone(), NetConfig::default()).expect("bind listener");
    let addr = net.local_addr();
    let mut client = RavenClient::connect(addr).expect("connect");
    let reply = client.query(SQL).expect("network query");
    println!(
        "\nover TCP ({addr}): {} rows, cache hit: {}, server time {:.2} ms",
        reply.table.num_rows(),
        reply.cache_hit,
        reply.server_time.as_secs_f64() * 1e3,
    );
    // A query that cannot meet its deadline comes back typed, not stuck.
    match client.query_with_deadline(SQL, Some(std::time::Duration::from_micros(1))) {
        Err(e) => println!("1 µs deadline: {e}"),
        Ok(_) => println!("1 µs deadline: served (machine faster than the example expected)"),
    }
    // 5. Parameterized prepared statements: production traffic differs
    // only in constants, and all of it rides one prepared template plan.
    let before = server.plan_cache_stats().preparations;
    for stay in [2.0, 4.0, 6.0, 8.0] {
        let reply = client
            .query_params(
                "WITH data AS (\
                   SELECT * FROM patient_info AS pi \
                   JOIN blood_tests AS bt ON pi.id = bt.id \
                   JOIN prenatal_tests AS pt ON bt.id = pt.id)\
                 SELECT d.id, p.length_of_stay \
                 FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
                 WITH (length_of_stay FLOAT) AS p \
                 WHERE d.pregnant = 1 AND p.length_of_stay > ?",
                vec![Value::Float64(stay)],
                None,
            )
            .expect("parameterized query");
        println!(
            "stay > {stay}: {} rows (cache hit: {})",
            reply.table.num_rows(),
            reply.cache_hit
        );
    }
    let after = server.plan_cache_stats().preparations;
    println!(
        "4 distinct constants cost {} optimization(s)",
        after - before
    );

    // 6. Multi-tenant serving over the same socket: two teams, one
    // model *name*, different parameters — protocol v4 carries the
    // tenant, and each team reads only its own namespace.
    for (tenant, weight) in [("team-a", 1.0), ("team-b", 100.0)] {
        server
            .register_table_in(
                tenant,
                "readings",
                raven_data::Table::try_new(
                    raven_data::Schema::from_pairs(&[("x0", raven_data::DataType::Float64)])
                        .into_shared(),
                    vec![raven_data::Column::Float64(vec![1.0, 2.0, 3.0])],
                )
                .expect("tenant table"),
            )
            .expect("register tenant table");
        server
            .store_model_in(tenant, "scorer", linear_model(weight))
            .expect("store tenant model");
    }
    let tenant_sql =
        "SELECT p.s FROM PREDICT(MODEL = 'scorer', DATA = readings AS d) WITH (s FLOAT) AS p";
    println!();
    for tenant in ["team-a", "team-b"] {
        let mut tenant_client = RavenClient::connect(addr)
            .expect("connect")
            .for_tenant(tenant);
        let reply = tenant_client.query(tenant_sql).expect("tenant query");
        let first = reply
            .table
            .batch()
            .columns()
            .first()
            .and_then(|c| match c.as_ref() {
                raven_data::Column::Float64(v) => v.first().copied(),
                _ => None,
            })
            .unwrap_or(f64::NAN);
        println!("tenant {tenant}: model 'scorer' scores row 0 at {first}");
    }
    // A swap in team-a invalidates nothing in team-b (per-tenant
    // counters over the wire prove it).
    server
        .store_model_in("team-a", "scorer", linear_model(7.0))
        .expect("swap team-a");
    let mut observer = RavenClient::connect(addr).expect("connect");
    let a = observer.stats_for("team-a").expect("stats team-a");
    let b = observer.stats_for("team-b").expect("stats team-b");
    println!(
        "after team-a's swap: team-a invalidations = {}, team-b invalidations = {}",
        a.result_invalidations, b.result_invalidations,
    );

    // 7. Observability over the wire (protocol v5): the unified metrics
    // registry as Prometheus-style text, and the slow-query log with its
    // per-stage latency breakdown.
    let metrics = observer.metrics_aggregate().expect("metrics frame");
    println!("\n-- metrics (aggregate, selected series) --");
    for line in metrics.lines().filter(|l| {
        l.starts_with("raven_queries_total")
            || l.starts_with("raven_template_hits_total")
            || l.starts_with("raven_plan_cache_hits_total")
            || l.starts_with("raven_result_cache_hits_total")
            || l.starts_with("raven_batcher_batches_total")
    }) {
        println!("{line}");
    }
    let slow = observer.slow_queries_for("", 16).expect("slow-query frame");
    println!(
        "\n-- slow-query log: {} request(s) over 2 ms --",
        slow.len()
    );
    if let Some(worst) = slow.iter().max_by_key(|t| t.total_us) {
        let staged: u64 = worst.stage_total_us();
        println!(
            "slowest request ({} µs total, {} µs across {} recorded stages):",
            worst.total_us,
            staged,
            worst.spans.len(),
        );
        println!("{}", worst.render());
    }
    net.shutdown();

    // 8. Deterministic result caching: the repeat path is a hash lookup.
    // A constant not used above, so the first execution is genuinely cold.
    let cold_sql = SQL.replace("> 6", "> 7.5");
    let cold = server.execute(&cold_sql).expect("cold query");
    let warm = server.execute(&cold_sql).expect("warm repeat");
    assert!(!cold.result_cache_hit && warm.result_cache_hit);
    println!(
        "\nresult cache: cold execution {:.3} ms, exact repeat {:.3} ms \
         (result hit: {})",
        cold.total_time.as_secs_f64() * 1e3,
        warm.total_time.as_secs_f64() * 1e3,
        warm.result_cache_hit,
    );
    // A model update retires the memoized rows — the next query executes.
    let retrained = train::hospital_tree(&data, 5).expect("retrain");
    server
        .store_model("duration_of_stay", retrained)
        .expect("transactional update");
    let fresh = server.execute(SQL).expect("post-update query");
    println!(
        "after a model update the repeat re-executes (result hit: {}), {}",
        fresh.result_cache_hit,
        server.result_cache_stats(),
    );

    // 9. SLO-aware micro-batching: a dedicated tenant on the adaptive
    // policy. Each point score carries a deadline; the batcher admits
    // or sheds against its measured cost EWMAs and re-sizes the flush
    // window live — printed here straight from the policy's own
    // `batcher_window_us` gauge.
    let edge = server
        .tenant_with_batch(
            "edge",
            BatchConfig::adaptive(64, Duration::ZERO, Duration::from_millis(2)),
        )
        .expect("edge tenant");
    edge.store_model("risk", linear_model(3.0))
        .expect("edge model");
    println!("\n-- adaptive micro-batching (tenant 'edge', window chosen live) --");
    for (label, deadline) in [
        ("no deadline     ", None),
        ("roomy 20 ms SLO ", Some(Duration::from_millis(20))),
        ("hopeless 0 ns SLO", Some(Duration::ZERO)),
    ] {
        let burst: Vec<_> = (0..8)
            .map(|t| {
                let edge = edge.clone();
                std::thread::spawn(move || {
                    let mut ok = 0usize;
                    let mut rejected = 0usize;
                    for i in 0..8 {
                        match edge.score_row_with_deadline(
                            "risk",
                            vec![(t * 8 + i) as f64],
                            deadline,
                        ) {
                            Ok(_) => ok += 1,
                            Err(_) => rejected += 1,
                        }
                    }
                    (ok, rejected)
                })
            })
            .collect();
        let (mut ok, mut rejected) = (0, 0);
        for h in burst {
            let (o, r) = h.join().expect("edge scorer");
            ok += o;
            rejected += r;
        }
        let stats = edge.batcher_stats();
        println!(
            "{label}: {ok} scored / {rejected} rejected typed; \
             chosen window {:.1} µs (EWMA cost: invocation {:.1} µs, row {:.2} µs); \
             totals: {} shed, {} expired",
            stats.window_micros,
            stats.ewma_invocation_micros,
            stats.ewma_row_micros,
            stats.shed,
            stats.expired,
        );
    }

    // 10. What the server measured.
    println!("\n-- server stats --\n{}", server.stats());
}
