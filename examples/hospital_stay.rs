//! The paper's running example (Fig. 1), optimization by optimization:
//! predicate-based model pruning, model-projection pushdown, join
//! elimination, model inlining, and NN translation — with before/after
//! timing on the hospital length-of-stay workload.
//!
//! ```sh
//! cargo run --release --example hospital_stay
//! ```

use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{hospital, train};
use raven_opt::RuleSet;
use std::time::Instant;

const SQL: &str = "\
    DECLARE @model varbinary(max) = (SELECT model FROM scoring_models \
      WHERE model_name = 'duration_of_stay');\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id);\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = @model, DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

fn run_with_rules(label: &str, rules: RuleSet, data: &raven_datagen::HospitalData) {
    let config = SessionConfig {
        rules,
        ..Default::default()
    };
    let session = RavenSession::with_config(config);
    data.register(session.catalog()).expect("register");
    let model = train::hospital_tree(data, 8).expect("train");
    session
        .store_model("duration_of_stay", model)
        .expect("store");

    // Warm-up run (model/session caches), then timed runs.
    let _ = session.query(SQL).expect("warmup");
    let start = Instant::now();
    let runs = 5;
    let mut rows = 0;
    for _ in 0..runs {
        rows = session.query(SQL).expect("query").table.num_rows();
    }
    let per_query = start.elapsed() / runs;
    println!("{label:<28} {per_query:>12?}  ({rows} rows)");
}

fn main() {
    println!("== Raven running example: hospital length-of-stay ==\n");
    let data = hospital::generate(300_000, 42);
    println!("data: {} patients × 3 tables\n", data.len());

    // Show the optimization story on a small EXPLAIN first.
    let session = RavenSession::with_config(SessionConfig::default());
    let small = hospital::generate(1_000, 42);
    small.register(session.catalog()).expect("register");
    let model = train::hospital_tree(&small, 8).expect("train");
    session
        .store_model("duration_of_stay", model)
        .expect("store");
    let explain = session.explain(SQL).expect("explain");
    println!("{explain}");

    println!(
        "\n== Timing with different rule sets ({} rows) ==\n",
        data.len()
    );
    run_with_rules("no optimization", RuleSet::none(), &data);
    run_with_rules("relational rules only", RuleSet::relational_only(), &data);
    run_with_rules(
        "cross-opts, no inlining",
        RuleSet {
            model_inlining: false,
            ..RuleSet::all()
        },
        &data,
    );
    run_with_rules("full Raven", RuleSet::all(), &data);
}
