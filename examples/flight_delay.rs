//! Flight-delay inference (the paper's second workload): sparse logistic
//! regression, model-projection pushdown, categorical predicate pruning,
//! and model clustering.
//!
//! ```sh
//! cargo run --release --example flight_delay
//! ```

use raven_core::{RavenSession, SessionConfig};
use raven_datagen::{flights, train};
use raven_ml::Estimator;
use raven_opt::rules::clustering::specialize_per_cluster;
use std::time::Instant;

fn main() {
    println!("== Raven flight-delay workload ==\n");
    let data = flights::generate(200_000, &flights::FlightParams::default());
    println!(
        "data: {} flights, {} airports, {} carriers",
        data.len(),
        data.airports.len(),
        data.carriers.len()
    );

    let session = RavenSession::with_config(SessionConfig::default());
    data.register(session.catalog()).expect("register");

    // Train two L1-regularized logistic models: one dense-ish, one sparse
    // (the paper's 41.75% / 80.96% sparsity pair).
    let dense = train::flight_logistic(&data, 0.001, 120).expect("train dense");
    let sparse = train::flight_logistic(&data, 0.03, 120).expect("train sparse");
    let sparsity = |p: &raven_ml::Pipeline| match p.estimator() {
        Estimator::Linear(m) => m.sparsity() * 100.0,
        _ => 0.0,
    };
    println!(
        "models: dense ({:.1}% zero weights), sparse ({:.1}% zero weights)\n",
        sparsity(&dense),
        sparsity(&sparse)
    );
    session.store_model("delay_dense", dense.clone()).unwrap();
    session.store_model("delay_sparse", sparse.clone()).unwrap();

    // 1. Model-projection pushdown: the sparse model drops whole input
    //    columns whose one-hot blocks are entirely zero-weight.
    for name in ["delay_dense", "delay_sparse"] {
        let sql = format!(
            "SELECT f.id, p.prob FROM PREDICT(MODEL = '{name}', DATA = flights AS f) \
             WITH (prob FLOAT) AS p WHERE p.prob > 0.5"
        );
        let start = Instant::now();
        let result = session.query(&sql).expect("query");
        println!(
            "{name:<14} {:>10?}  {} delayed-flight predictions | {}",
            start.elapsed(),
            result.table.num_rows(),
            result.report.summary()
        );
    }

    // 2. Categorical predicate pruning: a filter on the destination pins
    //    one indicator to 1 and the rest to 0 — the paper reports ~2.1×
    //    regardless of selectivity.
    let dest = data.airports[3].clone();
    let sql = format!(
        "SELECT f.id, p.prob FROM PREDICT(MODEL = 'delay_dense', DATA = flights AS f) \
         WITH (prob FLOAT) AS p WHERE f.dest = '{dest}' AND p.prob > 0.5"
    );
    let result = session.query(&sql).expect("filtered query");
    println!(
        "\nfiltered on dest={dest}: {} rows | {}",
        result.table.num_rows(),
        result.report.summary()
    );

    // 3. Model clustering (paper Fig. 2(b)): cluster historical data,
    //    precompile per-cluster specialized models.
    println!("\n== Model clustering ==");
    let sample = data
        .flights
        .batch()
        .slice(0, 20_000.min(data.len()))
        .expect("sample");
    let n_features = dense.n_features();
    for k in [2usize, 4, 8, 16] {
        let clustered = specialize_per_cluster(
            &dense,
            &sample,
            k,
            42,
            &["origin".to_string(), "dest".to_string()],
        )
        .expect("clustering");
        let avg_folded: f64 = clustered.folded_per_cluster.iter().sum::<usize>() as f64 / k as f64;
        let avg_width: f64 = clustered
            .models
            .iter()
            .map(|m| m.n_features() as f64)
            .sum::<f64>()
            / k as f64;
        println!(
            "k={k:<3} compile={:>10?}  features folded/cluster: {avg_folded:>5.1}/{n_features}  \
             specialized model width: {avg_width:.1} features",
            clustered.compile_time,
        );
    }
}
