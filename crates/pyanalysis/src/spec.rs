//! Extracted pipeline structure, and fitting it into an executable model.
//!
//! Static analysis recovers the *structure* of an sklearn-style pipeline
//! (which featurizers, which estimator, which hyperparameters) — weights
//! only exist after training. [`PipelineSpec::fit`] closes the loop by
//! training the spec on in-database data with `raven-ml`'s trainers,
//! yielding a [`raven_ml::Pipeline`] that the rest of Raven can store,
//! optimize and execute.

use crate::error::PyError;
use crate::Result;
use raven_data::{Column, RecordBatch};
use raven_ml::featurize::{OneHotEncoder, StandardScaler, Transform};
use raven_ml::forest::ForestParams;
use raven_ml::linear::{LinearKind, LinearParams};
use raven_ml::mlp::MlpParams;
use raven_ml::tree::TreeParams;
use raven_ml::{DecisionTree, Estimator, FeatureStep, LinearModel, Mlp, Pipeline, RandomForest};

/// Estimator structure + hyperparameters recognized by the knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorSpec {
    /// `DecisionTreeClassifier(max_depth=...)` / `DecisionTreeRegressor`.
    DecisionTree { max_depth: usize },
    /// `RandomForestClassifier(n_estimators=..., max_depth=...)`.
    RandomForest { n_trees: usize, max_depth: usize },
    /// `LogisticRegression(penalty='l1', C=...)` — `l1 = 1/C`.
    Logistic { l1: f64 },
    /// `LinearRegression()` / `Lasso(alpha=...)`.
    Linear { l1: f64 },
    /// `MLPClassifier(hidden_layer_sizes=(...))`.
    Mlp { hidden: Vec<usize> },
}

impl EstimatorSpec {
    /// Short name for traces.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorSpec::DecisionTree { .. } => "DecisionTree",
            EstimatorSpec::RandomForest { .. } => "RandomForest",
            EstimatorSpec::Logistic { .. } => "LogisticRegression",
            EstimatorSpec::Linear { .. } => "LinearRegression",
            EstimatorSpec::Mlp { .. } => "MLP",
        }
    }
}

/// The structure of a model pipeline extracted from a script.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// A `StandardScaler` appears in the pipeline.
    pub scale_numeric: bool,
    /// A `OneHotEncoder` appears in the pipeline.
    pub onehot_categorical: bool,
    pub estimator: EstimatorSpec,
    /// Feature columns, when the script selected them (`df[['age','bp']]`).
    pub feature_columns: Vec<String>,
    /// Label column, when visible from `fit(X, df['label'])`.
    pub label_column: Option<String>,
}

impl PipelineSpec {
    /// Train the spec on a batch of data.
    ///
    /// `features` override the spec's recorded feature columns when given;
    /// `labels` are the training targets (one per row).
    pub fn fit(
        &self,
        batch: &RecordBatch,
        features: &[String],
        labels: &[f64],
        seed: u64,
    ) -> Result<Pipeline> {
        let feature_columns: Vec<String> = if features.is_empty() {
            self.feature_columns.clone()
        } else {
            features.to_vec()
        };
        if feature_columns.is_empty() {
            return Err(PyError::Fit("no feature columns".into()));
        }
        if labels.len() != batch.num_rows() {
            return Err(PyError::Fit(format!(
                "{} labels for {} rows",
                labels.len(),
                batch.num_rows()
            )));
        }

        // Build one FeatureStep per column, fitted on the data.
        let mut steps = Vec::with_capacity(feature_columns.len());
        for col_name in &feature_columns {
            let col = batch
                .column_by_name(col_name)
                .map_err(|e| PyError::Fit(e.to_string()))?;
            let transform = match col {
                Column::Utf8(values) => {
                    // String features always need encoding; honor the spec
                    // when present, otherwise encode anyway (sklearn would
                    // fail — we degrade gracefully and note it in docs).
                    Transform::OneHot(OneHotEncoder::fit(values)?)
                }
                numeric => {
                    if self.scale_numeric {
                        let values = numeric
                            .to_f64_vec()
                            .map_err(|e| PyError::Fit(e.to_string()))?;
                        Transform::Scale(StandardScaler::fit(&values)?)
                    } else {
                        Transform::Identity
                    }
                }
            };
            steps.push(FeatureStep::new(col_name.clone(), transform));
        }

        // Featurize the training data through the steps.
        let probe = Pipeline::new(
            steps.clone(),
            // Temporary estimator with the right width for featurization.
            Estimator::Linear(
                LinearModel::new(
                    vec![
                        0.0;
                        steps
                            .iter()
                            .map(|s| s.transform.n_outputs())
                            .sum::<usize>()
                            .max(1)
                    ],
                    0.0,
                    LinearKind::Regression,
                )
                .map_err(PyError::from)?,
            ),
        )
        .map_err(PyError::from)?;
        let x = probe.featurize(batch).map_err(PyError::from)?;
        let width = probe.n_features();
        let rows = batch.num_rows();
        debug_assert_eq!(x.len(), width * rows);

        let estimator = match &self.estimator {
            EstimatorSpec::DecisionTree { max_depth } => Estimator::Tree(
                DecisionTree::fit(
                    &x,
                    width,
                    labels,
                    &TreeParams {
                        max_depth: *max_depth,
                        ..Default::default()
                    },
                )
                .map_err(PyError::from)?,
            ),
            EstimatorSpec::RandomForest { n_trees, max_depth } => Estimator::Forest(
                RandomForest::fit(
                    &x,
                    width,
                    labels,
                    &ForestParams {
                        n_trees: *n_trees,
                        tree: TreeParams {
                            max_depth: *max_depth,
                            ..Default::default()
                        },
                        seed,
                        ..Default::default()
                    },
                )
                .map_err(PyError::from)?,
            ),
            EstimatorSpec::Logistic { l1 } => Estimator::Linear(
                LinearModel::fit(
                    &x,
                    width,
                    labels,
                    &LinearParams {
                        kind: LinearKind::Logistic,
                        l1: *l1,
                        ..Default::default()
                    },
                )
                .map_err(PyError::from)?,
            ),
            EstimatorSpec::Linear { l1 } => Estimator::Linear(
                LinearModel::fit(
                    &x,
                    width,
                    labels,
                    &LinearParams {
                        kind: LinearKind::Regression,
                        l1: *l1,
                        ..Default::default()
                    },
                )
                .map_err(PyError::from)?,
            ),
            EstimatorSpec::Mlp { hidden } => Estimator::Mlp(
                Mlp::fit(
                    &x,
                    width,
                    labels,
                    &MlpParams {
                        hidden: hidden.clone(),
                        seed,
                        ..Default::default()
                    },
                )
                .map_err(PyError::from)?,
            ),
        };
        Pipeline::new(steps, estimator).map_err(PyError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{DataType, Schema};

    fn batch() -> RecordBatch {
        let schema = Schema::from_pairs(&[("age", DataType::Float64), ("dest", DataType::Utf8)])
            .into_shared();
        let ages: Vec<f64> = (0..40).map(|i| 20.0 + (i % 30) as f64).collect();
        let dests: Vec<&str> = (0..40)
            .map(|i| if i % 2 == 0 { "JFK" } else { "LAX" })
            .collect();
        RecordBatch::try_new(schema, vec![Column::from(ages), Column::from(dests)]).unwrap()
    }

    fn labels() -> Vec<f64> {
        (0..40)
            .map(|i| ((20 + (i % 30)) > 35) as i64 as f64)
            .collect()
    }

    #[test]
    fn fit_tree_spec() {
        let spec = PipelineSpec {
            scale_numeric: true,
            onehot_categorical: true,
            estimator: EstimatorSpec::DecisionTree { max_depth: 4 },
            feature_columns: vec!["age".into(), "dest".into()],
            label_column: None,
        };
        let p = spec.fit(&batch(), &[], &labels(), 1).unwrap();
        assert_eq!(p.input_columns(), vec!["age", "dest"]);
        // Scaler on age, one-hot on dest (2 categories) → 3 features.
        assert_eq!(p.n_features(), 3);
        // The model learned the age threshold.
        let preds = p.predict(&batch()).unwrap();
        for (pred, label) in preds.iter().zip(labels()) {
            assert!((pred - label).abs() < 0.5);
        }
    }

    #[test]
    fn fit_all_estimator_kinds() {
        let b = batch();
        let y = labels();
        for est in [
            EstimatorSpec::RandomForest {
                n_trees: 3,
                max_depth: 3,
            },
            EstimatorSpec::Logistic { l1: 0.01 },
            EstimatorSpec::Linear { l1: 0.0 },
            EstimatorSpec::Mlp { hidden: vec![4] },
        ] {
            let spec = PipelineSpec {
                scale_numeric: false,
                onehot_categorical: true,
                estimator: est.clone(),
                feature_columns: vec!["age".into(), "dest".into()],
                label_column: None,
            };
            let p = spec.fit(&b, &[], &y, 1);
            assert!(p.is_ok(), "failed for {}", est.name());
        }
    }

    #[test]
    fn fit_errors() {
        let spec = PipelineSpec {
            scale_numeric: false,
            onehot_categorical: false,
            estimator: EstimatorSpec::Linear { l1: 0.0 },
            feature_columns: vec![],
            label_column: None,
        };
        assert!(spec.fit(&batch(), &[], &labels(), 1).is_err());
        let spec2 = PipelineSpec {
            feature_columns: vec!["ghost".into()],
            ..spec.clone()
        };
        assert!(spec2.fit(&batch(), &[], &labels(), 1).is_err());
        let spec3 = PipelineSpec {
            feature_columns: vec!["age".into()],
            ..spec
        };
        assert!(spec3.fit(&batch(), &[], &[1.0], 1).is_err());
    }

    #[test]
    fn feature_override() {
        let spec = PipelineSpec {
            scale_numeric: false,
            onehot_categorical: false,
            estimator: EstimatorSpec::Linear { l1: 0.0 },
            feature_columns: vec!["dest".into()],
            label_column: None,
        };
        let p = spec
            .fit(&batch(), &["age".to_string()], &labels(), 1)
            .unwrap();
        assert_eq!(p.input_columns(), vec!["age"]);
    }
}
