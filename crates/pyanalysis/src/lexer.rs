//! Python-subset lexer.

use crate::error::PyError;
use crate::Result;

/// A Python token, tagged with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: PyToken,
    pub line: usize,
}

/// Python-subset tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum PyToken {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Newline,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Assign,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Star,
    Slash,
}

/// Tokenize a script. Newlines are significant (statement separators)
/// except inside brackets/parens; `#` comments and blank lines are
/// skipped; both quote styles are accepted.
pub fn lex(source: &str) -> Result<Vec<Spanned>> {
    let bytes = source.as_bytes();
    let mut out: Vec<Spanned> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut depth = 0usize; // bracket nesting: newlines inside are ignored

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                if depth == 0
                    && !matches!(out.last().map(|s| &s.token), None | Some(PyToken::Newline))
                {
                    out.push(Spanned {
                        token: PyToken::Newline,
                        line,
                    });
                }
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '\\' if bytes.get(i + 1) == Some(&b'\n') => {
                // Explicit line continuation.
                line += 1;
                i += 2;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                depth += 1;
                out.push(Spanned {
                    token: PyToken::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                depth = depth.saturating_sub(1);
                out.push(Spanned {
                    token: PyToken::RParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                depth += 1;
                out.push(Spanned {
                    token: PyToken::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                depth = depth.saturating_sub(1);
                out.push(Spanned {
                    token: PyToken::RBracket,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: PyToken::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: PyToken::Dot,
                    line,
                });
                i += 1;
            }
            ':' => {
                out.push(Spanned {
                    token: PyToken::Colon,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    token: PyToken::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    token: PyToken::Minus,
                    line,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: PyToken::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                out.push(Spanned {
                    token: PyToken::Slash,
                    line,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: PyToken::EqEq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: PyToken::Assign,
                        line,
                    });
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Spanned {
                    token: PyToken::NotEq,
                    line,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: PyToken::LtEq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: PyToken::Lt,
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: PyToken::GtEq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: PyToken::Gt,
                        line,
                    });
                    i += 1;
                }
            }
            q @ ('"' | '\'') => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(PyError::Lex {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&b) if b as char == q => {
                            i += 1;
                            break;
                        }
                        Some(&b'\n') => {
                            return Err(PyError::Lex {
                                line,
                                message: "newline in string".into(),
                            })
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: PyToken::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &source[start..i];
                let token = if is_float {
                    PyToken::Float(text.parse().map_err(|_| PyError::Lex {
                        line,
                        message: format!("bad float {text}"),
                    })?)
                } else {
                    PyToken::Int(text.parse().map_err(|_| PyError::Lex {
                        line,
                        message: format!("bad int {text}"),
                    })?)
                };
                out.push(Spanned { token, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: PyToken::Ident(source[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(PyError::Lex {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    // Terminate the final statement.
    if !matches!(out.last().map(|s| &s.token), None | Some(PyToken::Newline)) {
        out.push(Spanned {
            token: PyToken::Newline,
            line,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<PyToken> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn assignment_and_call() {
        let t = toks("df = pd.read_sql(\"patients\")");
        assert_eq!(
            t,
            vec![
                PyToken::Ident("df".into()),
                PyToken::Assign,
                PyToken::Ident("pd".into()),
                PyToken::Dot,
                PyToken::Ident("read_sql".into()),
                PyToken::LParen,
                PyToken::Str("patients".into()),
                PyToken::RParen,
                PyToken::Newline,
            ]
        );
    }

    #[test]
    fn newlines_inside_brackets_ignored() {
        let t = toks("x = Pipeline([\n  ('a', B()),\n])\ny = 1");
        let newlines = t.iter().filter(|t| **t == PyToken::Newline).count();
        assert_eq!(newlines, 2, "one per logical statement");
    }

    #[test]
    fn comments_and_blank_lines() {
        let t = toks("# header\n\nx = 1  # trailing\n\n");
        assert_eq!(
            t,
            vec![
                PyToken::Ident("x".into()),
                PyToken::Assign,
                PyToken::Int(1),
                PyToken::Newline,
            ]
        );
    }

    #[test]
    fn comparisons() {
        let t = toks("df[df.pregnant == 1]");
        assert!(t.contains(&PyToken::EqEq));
        let t = toks("a != b <= c >= d");
        assert!(t.contains(&PyToken::NotEq));
        assert!(t.contains(&PyToken::LtEq));
        assert!(t.contains(&PyToken::GtEq));
    }

    #[test]
    fn both_quote_styles() {
        assert_eq!(toks("'a'")[0], PyToken::Str("a".into()));
        assert_eq!(toks("\"a\"")[0], PyToken::Str("a".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("3")[0], PyToken::Int(3));
        assert_eq!(toks("3.5")[0], PyToken::Float(3.5));
    }

    #[test]
    fn line_tracking() {
        let spanned = lex("a = 1\nb = 2").unwrap();
        let b = spanned
            .iter()
            .find(|s| s.token == PyToken::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("x = $").is_err());
    }
}
