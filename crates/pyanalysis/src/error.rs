//! Error type for the static analyzer.

use std::fmt;

/// Errors produced while analyzing Python scripts.
#[derive(Debug, Clone, PartialEq)]
pub enum PyError {
    /// Lexical error with line number.
    Lex { line: usize, message: String },
    /// Parse error.
    Parse { line: usize, message: String },
    /// Dataflow/semantic error (e.g. use of an unbound variable).
    Analysis(String),
    /// Fitting a pipeline spec failed.
    Fit(String),
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyError::Lex { line, message } => write!(f, "line {line}: lex error: {message}"),
            PyError::Parse { line, message } => {
                write!(f, "line {line}: parse error: {message}")
            }
            PyError::Analysis(msg) => write!(f, "analysis error: {msg}"),
            PyError::Fit(msg) => write!(f, "pipeline fit error: {msg}"),
        }
    }
}

impl std::error::Error for PyError {}

impl From<raven_ml::MlError> for PyError {
    fn from(e: raven_ml::MlError) -> Self {
        PyError::Fit(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PyError::Parse {
            line: 4,
            message: "bad".into(),
        };
        assert_eq!(e.to_string(), "line 4: parse error: bad");
    }
}
