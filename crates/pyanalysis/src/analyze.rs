//! Dataflow extraction over the API knowledge base.

use crate::ast::{CmpOp, PyExpr, Stmt};
use crate::error::PyError;
use crate::parser::parse;
use crate::spec::{EstimatorSpec, PipelineSpec};
use crate::Result;
use raven_data::Catalog;
use raven_ir::{BinOp, ExecutionMode, Expr, JoinKind, ModelRef, Plan};
use raven_ml::Pipeline;
use std::collections::HashMap;
use std::sync::Arc;

/// What a script variable holds, as far as the analyzer can tell.
#[derive(Debug, Clone)]
enum FlowValue {
    /// A module alias (`pd` → `pandas`).
    Module(String),
    /// A name imported from a module (`DecisionTreeClassifier` →
    /// `sklearn.tree.DecisionTreeClassifier`).
    ImportedName(String),
    /// A relational dataflow (DataFrame-like).
    Rel(Plan),
    /// An instantiated featurizer.
    Featurizer(FeaturizerKind),
    /// An instantiated (untrained) estimator.
    Estimator(EstimatorSpec),
    /// An sklearn-style pipeline object.
    PipelineObj(PipelineSpec),
    /// A prediction result: data plan + the pipeline that scored it.
    Predictions { input: Plan, spec: PipelineSpec },
    /// Anything the knowledge base cannot interpret.
    Opaque(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeaturizerKind {
    Scaler,
    OneHot,
    FeatureUnion,
}

/// Result of analyzing a script.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// One trace line per statement: what the knowledge base mapped it to.
    pub trace: Vec<String>,
    /// The relational dataflow feeding the model (if a predict was seen,
    /// its input; otherwise the last DataFrame value).
    pub data_plan: Option<Plan>,
    /// The extracted pipeline structure, if any.
    pub pipeline: Option<PipelineSpec>,
    /// Feature columns observed flowing into the model.
    pub feature_columns: Vec<String>,
    /// Constructs that fell back to UDFs.
    pub udfs: Vec<String>,
}

impl Analysis {
    /// Assemble the unified IR for the script: the data plan topped by the
    /// model operator. With a trained pipeline the model becomes a
    /// `Predict` node; without one (or when the script was opaque) it
    /// becomes a `Udf` node, as the paper prescribes for non-analyzable
    /// code.
    pub fn to_plan(&self, trained: Option<(String, Arc<Pipeline>)>) -> Result<Plan> {
        let data = self
            .data_plan
            .clone()
            .ok_or_else(|| PyError::Analysis("script has no relational dataflow".into()))?;
        match (trained, &self.pipeline) {
            (Some((name, pipeline)), Some(_)) => Ok(Plan::Predict {
                input: Box::new(data),
                model: ModelRef { name, pipeline },
                output: "prediction".into(),
                mode: ExecutionMode::InProcess,
            }),
            _ => Ok(Plan::Udf {
                input: Box::new(data),
                name: self
                    .pipeline
                    .as_ref()
                    .map(|p| format!("untrained:{}", p.estimator.name()))
                    .unwrap_or_else(|| "opaque_script".into()),
                inputs: self.feature_columns.clone(),
                output: "prediction".into(),
            }),
        }
    }
}

/// Analyze a script against the catalog (for table schemas).
pub fn analyze(source: &str, catalog: &Catalog) -> Result<Analysis> {
    let stmts = parse(source)?;
    let mut a = Analyzer {
        catalog,
        env: HashMap::new(),
        analysis: Analysis {
            trace: Vec::new(),
            data_plan: None,
            pipeline: None,
            feature_columns: Vec::new(),
            udfs: Vec::new(),
        },
    };
    for stmt in &stmts {
        a.statement(stmt)?;
    }
    Ok(a.analysis)
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    env: HashMap<String, FlowValue>,
    analysis: Analysis,
}

impl<'a> Analyzer<'a> {
    fn statement(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Import { module, alias } => {
                self.env
                    .insert(alias.clone(), FlowValue::Module(module.clone()));
                self.analysis
                    .trace
                    .push(format!("import {module} as {alias}"));
            }
            Stmt::FromImport { module, names } => {
                for name in names {
                    self.env.insert(
                        name.clone(),
                        FlowValue::ImportedName(format!("{module}.{name}")),
                    );
                }
                self.analysis
                    .trace
                    .push(format!("from {module} import {}", names.join(", ")));
            }
            Stmt::Assign { target, value, .. } => {
                let v = self.eval(value)?;
                self.analysis
                    .trace
                    .push(format!("{target} = {}", describe(&v)));
                self.record(&v);
                self.env.insert(target.clone(), v);
            }
            Stmt::Expr { value, .. } => {
                let v = self.eval(value)?;
                self.analysis.trace.push(describe(&v));
                self.record(&v);
            }
        }
        Ok(())
    }

    /// Track analysis-level facts from an evaluated value.
    fn record(&mut self, v: &FlowValue) {
        match v {
            FlowValue::Rel(plan) => {
                self.analysis.data_plan = Some(plan.clone());
            }
            FlowValue::Predictions { input, spec } => {
                self.analysis.data_plan = Some(input.clone());
                self.analysis.pipeline = Some(spec.clone());
                if !spec.feature_columns.is_empty() {
                    self.analysis.feature_columns = spec.feature_columns.clone();
                }
            }
            FlowValue::PipelineObj(spec) => {
                self.analysis.pipeline = Some(spec.clone());
            }
            FlowValue::Opaque(what) => {
                self.analysis.udfs.push(what.clone());
            }
            _ => {}
        }
    }

    fn eval(&mut self, expr: &PyExpr) -> Result<FlowValue> {
        match expr {
            PyExpr::Name(n) => Ok(self
                .env
                .get(n)
                .cloned()
                .unwrap_or_else(|| FlowValue::Opaque(format!("unbound:{n}")))),
            PyExpr::Call { func, args, kwargs } => self.eval_call(func, args, kwargs),
            PyExpr::Subscript { base, index } => self.eval_subscript(base, index),
            PyExpr::Attr(..) => {
                // Bare attribute access (e.g. `df.columns`) — opaque.
                Ok(FlowValue::Opaque(expr.to_string()))
            }
            other => Ok(FlowValue::Opaque(other.to_string())),
        }
    }

    fn eval_call(
        &mut self,
        func: &PyExpr,
        args: &[PyExpr],
        kwargs: &[(String, PyExpr)],
    ) -> Result<FlowValue> {
        // Method call on an evaluated receiver?
        if let PyExpr::Attr(base, method) = func {
            let receiver = self.eval(base)?;
            return self.eval_method(receiver, method, args, kwargs, func);
        }
        // Free function / constructor by (possibly imported) name.
        if let PyExpr::Name(name) = func {
            match self.env.get(name).cloned() {
                Some(FlowValue::ImportedName(path)) => {
                    return Ok(self.construct(&path, args, kwargs))
                }
                _ => {
                    // Unimported constructor names still match the KB
                    // (scripts often elide imports in notebooks).
                    return Ok(self.construct(name, args, kwargs));
                }
            }
        }
        Ok(FlowValue::Opaque(format!("call:{func}")))
    }

    /// Knowledge base: constructors.
    fn construct(&mut self, path: &str, args: &[PyExpr], kwargs: &[(String, PyExpr)]) -> FlowValue {
        let short = path.rsplit('.').next().unwrap_or(path);
        match short {
            "StandardScaler" => FlowValue::Featurizer(FeaturizerKind::Scaler),
            "OneHotEncoder" => FlowValue::Featurizer(FeaturizerKind::OneHot),
            "FeatureUnion" => FlowValue::Featurizer(FeaturizerKind::FeatureUnion),
            "DecisionTreeClassifier" | "DecisionTreeRegressor" => {
                FlowValue::Estimator(EstimatorSpec::DecisionTree {
                    max_depth: kw_usize(kwargs, "max_depth").unwrap_or(8),
                })
            }
            "RandomForestClassifier" | "RandomForestRegressor" => {
                FlowValue::Estimator(EstimatorSpec::RandomForest {
                    n_trees: kw_usize(kwargs, "n_estimators").unwrap_or(10),
                    max_depth: kw_usize(kwargs, "max_depth").unwrap_or(8),
                })
            }
            "LogisticRegression" => {
                let c = kw_f64(kwargs, "C").unwrap_or(1.0);
                let penalty_l1 = kwargs
                    .iter()
                    .any(|(k, v)| k == "penalty" && matches!(v, PyExpr::Str(s) if s == "l1"));
                FlowValue::Estimator(EstimatorSpec::Logistic {
                    l1: if penalty_l1 { 1.0 / c.max(1e-9) } else { 0.0 },
                })
            }
            "LinearRegression" => FlowValue::Estimator(EstimatorSpec::Linear { l1: 0.0 }),
            "Lasso" => FlowValue::Estimator(EstimatorSpec::Linear {
                l1: kw_f64(kwargs, "alpha").unwrap_or(1.0),
            }),
            "MLPClassifier" | "MLPRegressor" => {
                let hidden = kwargs
                    .iter()
                    .find(|(k, _)| k == "hidden_layer_sizes")
                    .map(|(_, v)| match v {
                        PyExpr::Tuple(items) | PyExpr::List(items) => items
                            .iter()
                            .filter_map(|i| match i {
                                PyExpr::Int(n) if *n > 0 => Some(*n as usize),
                                _ => None,
                            })
                            .collect(),
                        PyExpr::Int(n) if *n > 0 => vec![*n as usize],
                        _ => vec![16],
                    })
                    .unwrap_or_else(|| vec![16]);
                FlowValue::Estimator(EstimatorSpec::Mlp { hidden })
            }
            "Pipeline" => self.construct_pipeline(args),
            other => FlowValue::Opaque(format!("call:{other}")),
        }
    }

    /// `Pipeline([('name', step), ...])` — fold featurizer flags, take the
    /// last estimator.
    fn construct_pipeline(&mut self, args: &[PyExpr]) -> FlowValue {
        let Some(PyExpr::List(steps)) = args.first() else {
            return FlowValue::Opaque("Pipeline(non-list)".into());
        };
        let mut scale = false;
        let mut onehot = false;
        let mut estimator = None;
        for step in steps {
            // Steps are ('name', obj) tuples or bare objects.
            let obj = match step {
                PyExpr::Tuple(items) if items.len() == 2 => &items[1],
                other => other,
            };
            match self.eval(obj) {
                Ok(FlowValue::Featurizer(FeaturizerKind::Scaler)) => scale = true,
                Ok(FlowValue::Featurizer(FeaturizerKind::OneHot)) => onehot = true,
                Ok(FlowValue::Featurizer(FeaturizerKind::FeatureUnion)) => {
                    // A FeatureUnion wraps nested featurizers; its members
                    // were already evaluated by the nested Call handling —
                    // treat it as "both kinds may be present".
                    scale = true;
                    onehot = true;
                }
                Ok(FlowValue::Estimator(spec)) => estimator = Some(spec),
                _ => {
                    self.analysis.udfs.push(format!("pipeline step: {obj}"));
                }
            }
        }
        match estimator {
            Some(estimator) => FlowValue::PipelineObj(PipelineSpec {
                scale_numeric: scale,
                onehot_categorical: onehot,
                estimator,
                feature_columns: Vec::new(),
                label_column: None,
            }),
            None => FlowValue::Opaque("Pipeline(no estimator)".into()),
        }
    }

    /// Knowledge base: methods.
    fn eval_method(
        &mut self,
        receiver: FlowValue,
        method: &str,
        args: &[PyExpr],
        kwargs: &[(String, PyExpr)],
        whole: &PyExpr,
    ) -> Result<FlowValue> {
        match (&receiver, method) {
            // pandas module functions.
            (FlowValue::Module(m), "read_sql" | "read_csv" | "read_table") if m == "pandas" => {
                let Some(PyExpr::Str(table)) = args.first() else {
                    return Ok(FlowValue::Opaque(format!("pd.{method}(non-literal)")));
                };
                match self.catalog.table(table) {
                    Ok(t) => Ok(FlowValue::Rel(Plan::Scan {
                        table: table.clone(),
                        schema: t.schema().clone(),
                    })),
                    Err(_) => Err(PyError::Analysis(format!(
                        "script reads unknown table: {table}"
                    ))),
                }
            }
            // DataFrame.merge → join.
            (FlowValue::Rel(left), "merge") => {
                let Some(first) = args.first() else {
                    return Ok(FlowValue::Opaque("merge(no args)".into()));
                };
                let FlowValue::Rel(right) = self.eval(first)? else {
                    return Ok(FlowValue::Opaque("merge(non-dataframe)".into()));
                };
                let (lk, rk) = match (
                    kw_str(kwargs, "on"),
                    kw_str(kwargs, "left_on"),
                    kw_str(kwargs, "right_on"),
                ) {
                    (Some(on), _, _) => (on.clone(), on),
                    (None, Some(l), Some(r)) => (l, r),
                    _ => {
                        return Ok(FlowValue::Opaque(
                            "merge without on=/left_on=/right_on=".into(),
                        ))
                    }
                };
                let joined = Plan::Join {
                    left: Box::new(left.clone()),
                    right: Box::new(right),
                    left_key: lk,
                    right_key: rk.clone(),
                    kind: JoinKind::Inner,
                };
                // Drop the duplicated right key (pandas keeps one `on` col).
                let schema = joined
                    .schema()
                    .map_err(|e| PyError::Analysis(e.to_string()))?;
                let mut exprs = Vec::new();
                let mut dropped = false;
                for f in schema.fields() {
                    let is_dup =
                        !dropped && exprs.iter().any(|(_, n): &(Expr, String)| n == &f.name);
                    if is_dup {
                        dropped = true;
                        continue;
                    }
                    exprs.push((Expr::col(f.name.clone()), f.name.clone()));
                }
                Ok(FlowValue::Rel(Plan::Project {
                    input: Box::new(joined),
                    exprs,
                }))
            }
            // pipeline.fit(X, y) — record feature/label columns.
            (FlowValue::PipelineObj(spec), "fit") => {
                let mut spec = spec.clone();
                if let Some(x) = args.first() {
                    if let Some(cols) = projected_columns(x) {
                        spec.feature_columns = cols;
                    }
                }
                if let Some(y) = args.get(1) {
                    if let Some(col) = label_column(y) {
                        spec.label_column = Some(col);
                    }
                }
                Ok(FlowValue::PipelineObj(spec))
            }
            // pipeline.predict(X) / estimator.predict(X).
            (FlowValue::PipelineObj(spec), "predict") => {
                self.eval_predict(spec.clone(), args, whole)
            }
            (FlowValue::Estimator(est), "predict") => {
                let spec = PipelineSpec {
                    scale_numeric: false,
                    onehot_categorical: false,
                    estimator: est.clone(),
                    feature_columns: Vec::new(),
                    label_column: None,
                };
                self.eval_predict(spec, args, whole)
            }
            _ => Ok(FlowValue::Opaque(whole.to_string())),
        }
    }

    fn eval_predict(
        &mut self,
        mut spec: PipelineSpec,
        args: &[PyExpr],
        whole: &PyExpr,
    ) -> Result<FlowValue> {
        let Some(x) = args.first() else {
            return Ok(FlowValue::Opaque(format!("{whole}")));
        };
        // The argument may be a projected frame: record columns.
        if let Some(cols) = projected_columns(x) {
            spec.feature_columns = cols;
        }
        let input = match self.eval(x)? {
            FlowValue::Rel(plan) => plan,
            FlowValue::Predictions { input, .. } => input,
            _ => {
                return Ok(FlowValue::Opaque(format!("{whole}")));
            }
        };
        // A projection over the data narrows feature columns.
        if spec.feature_columns.is_empty() {
            if let Ok(schema) = input.schema() {
                spec.feature_columns = schema.names().into_iter().map(str::to_string).collect();
            }
        }
        Ok(FlowValue::Predictions { input, spec })
    }

    fn eval_subscript(&mut self, base: &PyExpr, index: &PyExpr) -> Result<FlowValue> {
        let receiver = self.eval(base)?;
        let FlowValue::Rel(plan) = receiver else {
            return Ok(FlowValue::Opaque(format!("{base}[{index}]")));
        };
        match index {
            // df[df.col <op> literal] → Filter.
            PyExpr::Compare { left, op, right } => {
                let Some(col) = mask_column(left) else {
                    self.analysis
                        .udfs
                        .push(format!("unrecognized mask: {index}"));
                    return Ok(FlowValue::Rel(plan));
                };
                let Some(lit) = py_literal(right) else {
                    self.analysis
                        .udfs
                        .push(format!("non-literal mask rhs: {index}"));
                    return Ok(FlowValue::Rel(plan));
                };
                let bin = match op {
                    CmpOp::Eq => BinOp::Eq,
                    CmpOp::NotEq => BinOp::NotEq,
                    CmpOp::Lt => BinOp::Lt,
                    CmpOp::LtEq => BinOp::LtEq,
                    CmpOp::Gt => BinOp::Gt,
                    CmpOp::GtEq => BinOp::GtEq,
                };
                Ok(FlowValue::Rel(Plan::Filter {
                    input: Box::new(plan),
                    predicate: Expr::binary(bin, Expr::col(col), Expr::Literal(lit)),
                }))
            }
            // df[['a', 'b']] → Project.
            PyExpr::List(items) => {
                let mut exprs = Vec::new();
                for item in items {
                    let PyExpr::Str(name) = item else {
                        self.analysis
                            .udfs
                            .push(format!("non-string projection: {index}"));
                        return Ok(FlowValue::Rel(plan));
                    };
                    exprs.push((Expr::col(name.clone()), name.clone()));
                }
                Ok(FlowValue::Rel(Plan::Project {
                    input: Box::new(plan),
                    exprs,
                }))
            }
            // df['col'] → single-column projection.
            PyExpr::Str(name) => Ok(FlowValue::Rel(Plan::Project {
                input: Box::new(plan),
                exprs: vec![(Expr::col(name.clone()), name.clone())],
            })),
            other => {
                self.analysis.udfs.push(format!("subscript: {other}"));
                Ok(FlowValue::Rel(plan))
            }
        }
    }
}

/// `df.col` or `df['col']` inside a boolean mask.
fn mask_column(expr: &PyExpr) -> Option<String> {
    match expr {
        PyExpr::Attr(_, attr) => Some(attr.clone()),
        PyExpr::Subscript { index, .. } => match index.as_ref() {
            PyExpr::Str(s) => Some(s.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn py_literal(expr: &PyExpr) -> Option<raven_data::Value> {
    match expr {
        PyExpr::Int(v) => Some(raven_data::Value::Int64(*v)),
        PyExpr::Float(v) => Some(raven_data::Value::Float64(*v)),
        PyExpr::Str(s) => Some(raven_data::Value::Utf8(s.clone())),
        _ => None,
    }
}

/// Columns of a `df[['a','b']]` projection expression.
fn projected_columns(expr: &PyExpr) -> Option<Vec<String>> {
    if let PyExpr::Subscript { index, .. } = expr {
        if let PyExpr::List(items) = index.as_ref() {
            let cols: Option<Vec<String>> = items
                .iter()
                .map(|i| match i {
                    PyExpr::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            return cols;
        }
    }
    None
}

/// Label column of `df['label']`.
fn label_column(expr: &PyExpr) -> Option<String> {
    if let PyExpr::Subscript { index, .. } = expr {
        if let PyExpr::Str(s) = index.as_ref() {
            return Some(s.clone());
        }
    }
    None
}

fn kw_usize(kwargs: &[(String, PyExpr)], key: &str) -> Option<usize> {
    kwargs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            PyExpr::Int(n) if *n > 0 => Some(*n as usize),
            _ => None,
        })
}

fn kw_f64(kwargs: &[(String, PyExpr)], key: &str) -> Option<f64> {
    kwargs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            PyExpr::Int(n) => Some(*n as f64),
            PyExpr::Float(f) => Some(*f),
            _ => None,
        })
}

fn kw_str(kwargs: &[(String, PyExpr)], key: &str) -> Option<String> {
    kwargs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            PyExpr::Str(s) => Some(s.clone()),
            _ => None,
        })
}

fn describe(v: &FlowValue) -> String {
    match v {
        FlowValue::Module(m) => format!("module({m})"),
        FlowValue::ImportedName(p) => format!("imported({p})"),
        FlowValue::Rel(plan) => format!("relation({})", plan.label()),
        FlowValue::Featurizer(k) => format!("featurizer({k:?})"),
        FlowValue::Estimator(e) => format!("estimator({})", e.name()),
        FlowValue::PipelineObj(p) => format!("pipeline({})", p.estimator.name()),
        FlowValue::Predictions { spec, .. } => {
            format!("predictions({})", spec.estimator.name())
        }
        FlowValue::Opaque(s) => format!("UDF({s})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema, Table};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "patients",
            Table::try_new(
                Schema::from_pairs(&[
                    ("id", DataType::Int64),
                    ("age", DataType::Float64),
                    ("pregnant", DataType::Int64),
                ])
                .into_shared(),
                vec![
                    Column::from(vec![1i64, 2]),
                    Column::from(vec![30.0, 40.0]),
                    Column::from(vec![1i64, 0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "blood",
            Table::try_new(
                Schema::from_pairs(&[("id", DataType::Int64), ("bp", DataType::Float64)])
                    .into_shared(),
                vec![
                    Column::from(vec![1i64, 2]),
                    Column::from(vec![120.0, 140.0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    const RUNNING_EXAMPLE: &str = r#"
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier

df = pd.read_sql("patients")
blood = pd.read_sql("blood")
joined = df.merge(blood, on="id")
filtered = joined[joined.pregnant == 1]
features = filtered[["age", "bp"]]
model_pipeline = Pipeline([
    ("scaler", StandardScaler()),
    ("clf", DecisionTreeClassifier(max_depth=5)),
])
predictions = model_pipeline.predict(features)
"#;

    #[test]
    fn running_example_extracts_everything() {
        let a = analyze(RUNNING_EXAMPLE, &catalog()).unwrap();
        let spec = a.pipeline.as_ref().expect("pipeline extracted");
        assert!(spec.scale_numeric);
        assert_eq!(spec.estimator, EstimatorSpec::DecisionTree { max_depth: 5 });
        assert_eq!(a.feature_columns, vec!["age", "bp"]);
        assert!(a.udfs.is_empty(), "udfs: {:?}", a.udfs);

        // The data plan: Project(Filter(Project(Join(Scan, Scan)))).
        let plan = a.data_plan.as_ref().unwrap();
        let tables = plan.scanned_tables();
        assert_eq!(tables, vec!["patients", "blood"]);
        let mut filters = 0;
        plan.visit(&mut |p| {
            if matches!(p, Plan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 1);
        // Schema of the feature projection.
        assert_eq!(plan.schema().unwrap().names(), vec!["age", "bp"]);
    }

    #[test]
    fn estimator_hyperparameters() {
        let src = "from sklearn.ensemble import RandomForestClassifier\nm = RandomForestClassifier(n_estimators=25, max_depth=3)";
        let a = analyze(src, &catalog()).unwrap();
        // Estimator alone isn't a pipeline; check the trace.
        assert!(a.trace.iter().any(|t| t.contains("RandomForest")));
    }

    #[test]
    fn logistic_l1_from_penalty() {
        let src = "from sklearn.linear_model import LogisticRegression\nfrom sklearn.pipeline import Pipeline\np = Pipeline([('clf', LogisticRegression(penalty='l1', C=0.5))])";
        let a = analyze(src, &catalog()).unwrap();
        let spec = a.pipeline.unwrap();
        assert_eq!(spec.estimator, EstimatorSpec::Logistic { l1: 2.0 });
    }

    #[test]
    fn unknown_calls_become_udfs() {
        let src = "import pandas as pd\ndf = pd.read_sql('patients')\nx = custom_magic(df)";
        let a = analyze(src, &catalog()).unwrap();
        assert!(!a.udfs.is_empty());
        assert!(a.trace.last().unwrap().contains("UDF"));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let src = "import pandas as pd\ndf = pd.read_sql('ghost_table')";
        assert!(matches!(
            analyze(src, &catalog()),
            Err(PyError::Analysis(_))
        ));
    }

    #[test]
    fn filter_with_string_subscript_mask() {
        let src = "import pandas as pd\ndf = pd.read_sql('patients')\nf = df[df['age'] > 35]";
        let a = analyze(src, &catalog()).unwrap();
        let plan = a.data_plan.unwrap();
        assert!(matches!(&plan, Plan::Filter { predicate, .. }
            if predicate.to_string() == "(age > 35)"));
    }

    #[test]
    fn to_plan_with_and_without_model() {
        let a = analyze(RUNNING_EXAMPLE, &catalog()).unwrap();
        // Untrained → UDF node.
        let p = a.to_plan(None).unwrap();
        assert!(matches!(&p, Plan::Udf { name, .. } if name.contains("DecisionTree")));

        // Trained → Predict node.
        use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Transform};
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new("age", Transform::Identity),
                FeatureStep::new("bp", Transform::Identity),
            ],
            Estimator::Linear(
                LinearModel::new(vec![1.0, 1.0], 0.0, LinearKind::Regression).unwrap(),
            ),
        )
        .unwrap();
        let p = a
            .to_plan(Some(("stay".into(), Arc::new(pipeline))))
            .unwrap();
        assert!(matches!(&p, Plan::Predict { model, .. } if model.name == "stay"));
    }

    #[test]
    fn fit_records_label_column() {
        let src = "import pandas as pd\nfrom sklearn.pipeline import Pipeline\nfrom sklearn.tree import DecisionTreeClassifier\ndf = pd.read_sql('patients')\np = Pipeline([('clf', DecisionTreeClassifier())])\np2 = p.fit(df[['age']], df['pregnant'])";
        let a = analyze(src, &catalog()).unwrap();
        // fit() returns the pipeline; the assignment stores the updated spec.
        assert!(a.trace.iter().any(|t| t.contains("pipeline")));
    }

    #[test]
    fn analysis_is_fast() {
        // The paper: static analysis < 10 ms. Generous bound for CI noise.
        let cat = catalog();
        let start = std::time::Instant::now();
        for _ in 0..10 {
            analyze(RUNNING_EXAMPLE, &cat).unwrap();
        }
        let per_run = start.elapsed() / 10;
        assert!(
            per_run < std::time::Duration::from_millis(10),
            "analysis took {per_run:?}"
        );
    }
}
