//! # raven-pyanalysis
//!
//! Static analysis of Python model-pipeline scripts — the paper's §3.2:
//! *"Given a Python script, the Static Analyzer performs lexing, parsing,
//! extraction of variables and their scopes, semantic analysis, type
//! inference, and finally extraction of control and data flows"*, compiled
//! against *"an in-house knowledge base of APIs of popular data science
//! libraries"*.
//!
//! Scope: straight-line scripts (the paper's own measurement: ~83% of the
//! 4.6M analyzed notebooks need nothing more). Supported constructs:
//! imports, assignments, attribute access, calls with positional/keyword
//! arguments, list/tuple literals, subscripts (`df[...]`), and comparisons
//! inside subscripts (`df[df.pregnant == 1]`). Anything the knowledge base
//! cannot map becomes a **UDF** node, exactly as the paper prescribes.
//!
//! Pipeline of this crate:
//!
//! 1. [`lexer`] / [`parser`] — Python-subset front end;
//! 2. [`mod@analyze`] — dataflow extraction over the knowledge base
//!    (pandas `read_sql`/`merge`/filter/projection; sklearn `Pipeline`,
//!    featurizers, estimators; `.predict`), producing an [`analyze::Analysis`];
//! 3. [`spec`] — the extracted [`spec::PipelineSpec`] (featurizer +
//!    estimator structure and hyperparameters), which can be **fitted** on
//!    in-database data with `raven-ml`'s trainers to yield an executable
//!    [`raven_ml::Pipeline`];
//! 4. `Analysis::to_plan` — the relational dataflow as a
//!    [`raven_ir::Plan`], with the model step bound either to a trained
//!    pipeline or wrapped as a UDF when untrained.

pub mod analyze;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod spec;

pub use analyze::{analyze, Analysis};
pub use error::PyError;
pub use spec::{EstimatorSpec, PipelineSpec};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PyError>;
