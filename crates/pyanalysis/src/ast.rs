//! Python-subset abstract syntax.

use std::fmt;

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `import pandas as pd` — records `pd` → `pandas`.
    Import { module: String, alias: String },
    /// `from sklearn.tree import DecisionTreeClassifier, ...` — records
    /// each imported name with its source module path.
    FromImport { module: String, names: Vec<String> },
    /// `target = expr`.
    Assign {
        target: String,
        value: PyExpr,
        line: usize,
    },
    /// A bare expression (e.g. a call for its side effect).
    Expr { value: PyExpr, line: usize },
}

/// Comparison operators inside boolean masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PyExpr {
    /// Variable reference.
    Name(String),
    /// `base.attr`.
    Attr(Box<PyExpr>, String),
    /// `func(args..., kw=value...)`.
    Call {
        func: Box<PyExpr>,
        args: Vec<PyExpr>,
        kwargs: Vec<(String, PyExpr)>,
    },
    /// `base[index]`.
    Subscript {
        base: Box<PyExpr>,
        index: Box<PyExpr>,
    },
    /// `left <op> right`.
    Compare {
        left: Box<PyExpr>,
        op: CmpOp,
        right: Box<PyExpr>,
    },
    /// `[a, b, ...]`.
    List(Vec<PyExpr>),
    /// `(a, b, ...)`.
    Tuple(Vec<PyExpr>),
    Str(String),
    Int(i64),
    Float(f64),
}

impl PyExpr {
    /// Render a dotted path (`pd.read_sql`) if this expression is a chain
    /// of names/attributes; `None` otherwise.
    pub fn dotted_path(&self) -> Option<String> {
        match self {
            PyExpr::Name(n) => Some(n.clone()),
            PyExpr::Attr(base, attr) => Some(format!("{}.{attr}", base.dotted_path()?)),
            _ => None,
        }
    }

    /// The base variable of an attribute/subscript chain
    /// (`df.merge(...)` → `df`).
    pub fn base_name(&self) -> Option<&str> {
        match self {
            PyExpr::Name(n) => Some(n),
            PyExpr::Attr(base, _) | PyExpr::Subscript { base, .. } => base.base_name(),
            _ => None,
        }
    }
}

impl fmt::Display for PyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyExpr::Name(n) => f.write_str(n),
            PyExpr::Attr(b, a) => write!(f, "{b}.{a}"),
            PyExpr::Call { func, args, kwargs } => {
                write!(f, "{func}(")?;
                let mut first = true;
                for a in args {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                    first = false;
                }
                for (k, v) in kwargs {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}={v}")?;
                    first = false;
                }
                write!(f, ")")
            }
            PyExpr::Subscript { base, index } => write!(f, "{base}[{index}]"),
            PyExpr::Compare { left, op, right } => {
                let op = match op {
                    CmpOp::Eq => "==",
                    CmpOp::NotEq => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::LtEq => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::GtEq => ">=",
                };
                write!(f, "{left} {op} {right}")
            }
            PyExpr::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            PyExpr::Tuple(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            PyExpr::Str(s) => write!(f, "'{s}'"),
            PyExpr::Int(v) => write!(f, "{v}"),
            PyExpr::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_paths() {
        let e = PyExpr::Attr(
            Box::new(PyExpr::Attr(Box::new(PyExpr::Name("a".into())), "b".into())),
            "c".into(),
        );
        assert_eq!(e.dotted_path(), Some("a.b.c".into()));
        assert_eq!(e.base_name(), Some("a"));
        let call = PyExpr::Call {
            func: Box::new(e),
            args: vec![],
            kwargs: vec![],
        };
        assert_eq!(call.dotted_path(), None);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = PyExpr::Call {
            func: Box::new(PyExpr::Attr(
                Box::new(PyExpr::Name("df".into())),
                "merge".into(),
            )),
            args: vec![PyExpr::Name("other".into())],
            kwargs: vec![("on".into(), PyExpr::Str("id".into()))],
        };
        assert_eq!(e.to_string(), "df.merge(other, on='id')");
    }
}
