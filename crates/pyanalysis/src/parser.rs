//! Python-subset parser (straight-line statements).

use crate::ast::{CmpOp, PyExpr, Stmt};
use crate::error::PyError;
use crate::lexer::{lex, PyToken, Spanned};
use crate::Result;

/// Positional and keyword arguments of a call expression.
type CallArguments = (Vec<PyExpr>, Vec<(String, PyExpr)>);

/// Parse a script into statements.
pub fn parse(source: &str) -> Result<Vec<Stmt>> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        if p.eat(&PyToken::Newline) {
            continue;
        }
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn peek(&self) -> Option<&PyToken> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn next(&mut self) -> Result<PyToken> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|s| s.token.clone())
            .ok_or_else(|| PyError::Parse {
                line: self.line(),
                message: "unexpected end of input".into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, token: &PyToken) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: PyToken) -> Result<()> {
        let line = self.line();
        let got = self.next()?;
        if got == token {
            Ok(())
        } else {
            Err(PyError::Parse {
                line,
                message: format!("expected {token:?}, found {got:?}"),
            })
        }
    }

    fn ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.next()? {
            PyToken::Ident(s) => Ok(s),
            other => Err(PyError::Parse {
                line,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn end_statement(&mut self) -> Result<()> {
        if self.at_end() || self.eat(&PyToken::Newline) {
            Ok(())
        } else {
            Err(PyError::Parse {
                line: self.line(),
                message: format!("expected end of statement, found {:?}", self.peek()),
            })
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        let line = self.line();
        match self.peek() {
            Some(PyToken::Ident(kw)) if kw == "import" => {
                self.pos += 1;
                let mut module = self.ident()?;
                while self.eat(&PyToken::Dot) {
                    module = format!("{module}.{}", self.ident()?);
                }
                let alias = if self.eat(&PyToken::Ident("as".into())) {
                    self.ident()?
                } else {
                    module.split('.').next_back().unwrap_or(&module).to_string()
                };
                self.end_statement()?;
                Ok(Stmt::Import { module, alias })
            }
            Some(PyToken::Ident(kw)) if kw == "from" => {
                self.pos += 1;
                let mut module = self.ident()?;
                while self.eat(&PyToken::Dot) {
                    module = format!("{module}.{}", self.ident()?);
                }
                let line2 = self.line();
                match self.next()? {
                    PyToken::Ident(k) if k == "import" => {}
                    other => {
                        return Err(PyError::Parse {
                            line: line2,
                            message: format!("expected import, found {other:?}"),
                        })
                    }
                }
                let mut names = vec![self.ident()?];
                while self.eat(&PyToken::Comma) {
                    names.push(self.ident()?);
                }
                self.end_statement()?;
                Ok(Stmt::FromImport { module, names })
            }
            _ => {
                // `name = expr` or a bare expression.
                let checkpoint = self.pos;
                if let Some(PyToken::Ident(name)) = self.peek().cloned() {
                    self.pos += 1;
                    if self.eat(&PyToken::Assign) {
                        let value = self.expr()?;
                        self.end_statement()?;
                        return Ok(Stmt::Assign {
                            target: name,
                            value,
                            line,
                        });
                    }
                    self.pos = checkpoint;
                }
                let value = self.expr()?;
                self.end_statement()?;
                Ok(Stmt::Expr { value, line })
            }
        }
    }

    /// Expression grammar: comparison over postfix over primary.
    fn expr(&mut self) -> Result<PyExpr> {
        let left = self.postfix()?;
        let op = match self.peek() {
            Some(PyToken::EqEq) => Some(CmpOp::Eq),
            Some(PyToken::NotEq) => Some(CmpOp::NotEq),
            Some(PyToken::Lt) => Some(CmpOp::Lt),
            Some(PyToken::LtEq) => Some(CmpOp::LtEq),
            Some(PyToken::Gt) => Some(CmpOp::Gt),
            Some(PyToken::GtEq) => Some(CmpOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.postfix()?;
            Ok(PyExpr::Compare {
                left: Box::new(left),
                op,
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    /// Postfix chain: attribute access, calls, subscripts.
    fn postfix(&mut self) -> Result<PyExpr> {
        let mut expr = self.primary()?;
        loop {
            if self.eat(&PyToken::Dot) {
                let attr = self.ident()?;
                expr = PyExpr::Attr(Box::new(expr), attr);
            } else if self.eat(&PyToken::LParen) {
                let (args, kwargs) = self.call_arguments()?;
                expr = PyExpr::Call {
                    func: Box::new(expr),
                    args,
                    kwargs,
                };
            } else if self.eat(&PyToken::LBracket) {
                let index = self.expr()?;
                self.expect(PyToken::RBracket)?;
                expr = PyExpr::Subscript {
                    base: Box::new(expr),
                    index: Box::new(index),
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn call_arguments(&mut self) -> Result<CallArguments> {
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        if self.eat(&PyToken::RParen) {
            return Ok((args, kwargs));
        }
        loop {
            // Keyword argument? (ident '=' not '==')
            if let (Some(PyToken::Ident(name)), Some(PyToken::Assign)) = (
                self.peek().cloned().clone().as_ref(),
                self.tokens.get(self.pos + 1).map(|s| &s.token),
            ) {
                let name = name.clone();
                self.pos += 2;
                let value = self.expr()?;
                kwargs.push((name, value));
            } else {
                args.push(self.expr()?);
            }
            if self.eat(&PyToken::Comma) {
                // Allow trailing comma before ')'.
                if self.eat(&PyToken::RParen) {
                    return Ok((args, kwargs));
                }
                continue;
            }
            self.expect(PyToken::RParen)?;
            return Ok((args, kwargs));
        }
    }

    fn primary(&mut self) -> Result<PyExpr> {
        let line = self.line();
        match self.next()? {
            PyToken::Ident(n) => Ok(PyExpr::Name(n)),
            PyToken::Str(s) => Ok(PyExpr::Str(s)),
            PyToken::Int(v) => Ok(PyExpr::Int(v)),
            PyToken::Float(v) => Ok(PyExpr::Float(v)),
            PyToken::Minus => match self.next()? {
                PyToken::Int(v) => Ok(PyExpr::Int(-v)),
                PyToken::Float(v) => Ok(PyExpr::Float(-v)),
                other => Err(PyError::Parse {
                    line,
                    message: format!("expected number after '-', found {other:?}"),
                }),
            },
            PyToken::LBracket => {
                let mut items = Vec::new();
                if self.eat(&PyToken::RBracket) {
                    return Ok(PyExpr::List(items));
                }
                loop {
                    items.push(self.expr()?);
                    if self.eat(&PyToken::Comma) {
                        if self.eat(&PyToken::RBracket) {
                            break;
                        }
                        continue;
                    }
                    self.expect(PyToken::RBracket)?;
                    break;
                }
                Ok(PyExpr::List(items))
            }
            PyToken::LParen => {
                let mut items = Vec::new();
                if self.eat(&PyToken::RParen) {
                    return Ok(PyExpr::Tuple(items));
                }
                loop {
                    items.push(self.expr()?);
                    if self.eat(&PyToken::Comma) {
                        if self.eat(&PyToken::RParen) {
                            break;
                        }
                        continue;
                    }
                    self.expect(PyToken::RParen)?;
                    // Single parenthesized expression, not a tuple.
                    if items.len() == 1 {
                        return Ok(items.pop().expect("non-empty"));
                    }
                    break;
                }
                Ok(PyExpr::Tuple(items))
            }
            other => Err(PyError::Parse {
                line,
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports() {
        let s =
            parse("import pandas as pd\nfrom sklearn.tree import DecisionTreeClassifier").unwrap();
        assert_eq!(
            s[0],
            Stmt::Import {
                module: "pandas".into(),
                alias: "pd".into()
            }
        );
        assert_eq!(
            s[1],
            Stmt::FromImport {
                module: "sklearn.tree".into(),
                names: vec!["DecisionTreeClassifier".into()]
            }
        );
    }

    #[test]
    fn import_without_alias() {
        let s = parse("import numpy").unwrap();
        assert_eq!(
            s[0],
            Stmt::Import {
                module: "numpy".into(),
                alias: "numpy".into()
            }
        );
    }

    #[test]
    fn assignment_with_call_chain() {
        let s = parse("df = pd.read_sql('patients')").unwrap();
        let Stmt::Assign { target, value, .. } = &s[0] else {
            panic!()
        };
        assert_eq!(target, "df");
        assert_eq!(value.to_string(), "pd.read_sql('patients')");
    }

    #[test]
    fn boolean_mask_subscript() {
        let s = parse("df2 = df[df.pregnant == 1]").unwrap();
        let Stmt::Assign { value, .. } = &s[0] else {
            panic!()
        };
        assert_eq!(value.to_string(), "df[df.pregnant == 1]");
    }

    #[test]
    fn column_list_subscript() {
        let s = parse("x = df[['age', 'bp']]").unwrap();
        let Stmt::Assign { value, .. } = &s[0] else {
            panic!()
        };
        assert_eq!(value.to_string(), "df[['age', 'bp']]");
    }

    #[test]
    fn pipeline_with_tuples_multiline() {
        let src = "model = Pipeline([\n    ('scaler', StandardScaler()),\n    ('clf', DecisionTreeClassifier(max_depth=5)),\n])";
        let s = parse(src).unwrap();
        let Stmt::Assign { value, .. } = &s[0] else {
            panic!()
        };
        assert_eq!(
            value.to_string(),
            "Pipeline([('scaler', StandardScaler()), ('clf', DecisionTreeClassifier(max_depth=5))])"
        );
    }

    #[test]
    fn kwargs_and_args() {
        let s = parse("df.merge(other, on='id', how='inner')").unwrap();
        let Stmt::Expr { value, .. } = &s[0] else {
            panic!()
        };
        let PyExpr::Call { args, kwargs, .. } = value else {
            panic!()
        };
        assert_eq!(args.len(), 1);
        assert_eq!(kwargs.len(), 2);
        assert_eq!(kwargs[0].0, "on");
    }

    #[test]
    fn negative_literals() {
        let s = parse("x = f(-1, -2.5)").unwrap();
        let Stmt::Assign { value, .. } = &s[0] else {
            panic!()
        };
        assert_eq!(value.to_string(), "f(-1, -2.5)");
    }

    #[test]
    fn parenthesized_vs_tuple() {
        let s = parse("x = (a)\ny = (a, b)").unwrap();
        let Stmt::Assign { value, .. } = &s[0] else {
            panic!()
        };
        assert_eq!(*value, PyExpr::Name("a".into()));
        let Stmt::Assign { value, .. } = &s[1] else {
            panic!()
        };
        assert!(matches!(value, PyExpr::Tuple(items) if items.len() == 2));
    }

    #[test]
    fn errors_with_lines() {
        let err = parse("x = 1\ny = = 2").unwrap_err();
        assert!(matches!(err, PyError::Parse { line: 2, .. }));
        assert!(parse("x = ").is_err());
        assert!(parse("f(a,,b)").is_err());
    }
}
