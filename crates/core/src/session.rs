//! `RavenSession`: the end-to-end system.

use crate::store::ModelStore;
use raven_data::{Catalog, Table};
use raven_ir::Plan;
use raven_opt::{OptimizationReport, Optimizer, OptimizerContext, OptimizerMode, RuleSet};
use raven_pyanalysis::{analyze, PipelineSpec};
use raven_relational::{CancelToken, ExecError, ExecOptions, Executor};
use raven_runtime::{codegen, RavenScorer, ScorerConfig};
use raven_sql::{parse, Binder};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session-level errors (unifies every subsystem's error type).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    Data(String),
    Sql(String),
    Python(String),
    Optimizer(String),
    Execution(String),
    Store(String),
    /// Execution was cancelled (explicit cancel or an expired deadline).
    Cancelled,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            SessionError::Data(m) => ("data", m),
            SessionError::Sql(m) => ("sql", m),
            SessionError::Python(m) => ("python", m),
            SessionError::Optimizer(m) => ("optimizer", m),
            SessionError::Execution(m) => ("execution", m),
            SessionError::Store(m) => ("model store", m),
            SessionError::Cancelled => return write!(f, "execution cancelled"),
        };
        write!(f, "{kind} error: {msg}")
    }
}

impl std::error::Error for SessionError {}

/// Result alias for session operations.
pub type Result<T> = std::result::Result<T, SessionError>;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Cross-optimizer rule toggles.
    pub rules: RuleSet,
    /// Heuristic or cost-based driver.
    pub optimizer_mode: OptimizerMode,
    /// Device for NN-translated models.
    pub device: raven_ir::Device,
    /// Trees at most this large inline to CASE expressions.
    pub inline_max_tree_nodes: usize,
    /// Relational executor options (parallelism).
    pub exec: ExecOptions,
    /// Scorer costs (external runtime latencies, tensor batch size).
    pub scorer: ScorerConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            rules: RuleSet::all(),
            optimizer_mode: OptimizerMode::Heuristic,
            device: raven_ir::Device::CpuParallel,
            inline_max_tree_nodes: 512,
            exec: ExecOptions::default(),
            scorer: ScorerConfig::default(),
        }
    }
}

impl SessionConfig {
    /// Config suitable for unit tests: serial execution, zero-latency
    /// externals.
    pub fn for_tests() -> Self {
        SessionConfig {
            exec: ExecOptions::serial(),
            scorer: ScorerConfig::instant(),
            ..Default::default()
        }
    }
}

/// The result of an inference query.
#[derive(Debug)]
pub struct QueryResult {
    pub table: Table,
    /// End-to-end wall time (parse + optimize + execute).
    pub total_time: Duration,
    /// Execution-only wall time.
    pub exec_time: Duration,
    /// What the cross optimizer did.
    pub report: OptimizationReport,
}

/// EXPLAIN output: plans before/after, optimizer report, generated SQL.
#[derive(Debug, Clone)]
pub struct ExplainOutput {
    pub logical_plan: String,
    pub optimized_plan: String,
    pub report_summary: String,
    pub generated_sql: String,
}

impl fmt::Display for ExplainOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Logical plan (unified IR) ==")?;
        writeln!(f, "{}", self.logical_plan)?;
        writeln!(f, "== After cross optimization ==")?;
        writeln!(f, "{}", self.optimized_plan)?;
        writeln!(f, "== Optimizer report ==")?;
        writeln!(f, "{}", self.report_summary)?;
        writeln!(f, "== Generated SQL ==")?;
        writeln!(f, "{}", self.generated_sql)
    }
}

/// An in-process Raven instance: catalog + model store + optimizer +
/// execution engines.
///
/// All state lives behind `Arc`s, so a session can hand shared ownership
/// of its catalog, model store, and scorer to concurrent components (the
/// `raven-server` serving layer) instead of threading `&'a` borrows
/// through every engine.
pub struct RavenSession {
    catalog: Arc<Catalog>,
    store: Arc<ModelStore>,
    scorer: Arc<RavenScorer>,
    config: SessionConfig,
}

impl Default for RavenSession {
    fn default() -> Self {
        RavenSession::new()
    }
}

impl RavenSession {
    /// New session with default configuration.
    pub fn new() -> Self {
        RavenSession::with_config(SessionConfig::default())
    }

    /// New session with explicit configuration.
    pub fn with_config(config: SessionConfig) -> Self {
        RavenSession {
            catalog: Arc::new(Catalog::new()),
            store: Arc::new(ModelStore::new()),
            scorer: Arc::new(RavenScorer::new(config.scorer.clone())),
            config,
        }
    }

    /// A session over *existing* shared state — many sessions (or a
    /// session plus a server) can serve the same catalog and models.
    pub fn from_shared(
        catalog: Arc<Catalog>,
        store: Arc<ModelStore>,
        scorer: Arc<RavenScorer>,
        config: SessionConfig,
    ) -> Self {
        RavenSession {
            catalog,
            store,
            scorer,
            config,
        }
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Shared handle to the catalog.
    pub fn catalog_shared(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// The model store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Shared handle to the model store.
    pub fn store_shared(&self) -> Arc<ModelStore> {
        self.store.clone()
    }

    /// Shared handle to the scorer (inference-session cache included).
    pub fn scorer_shared(&self) -> Arc<RavenScorer> {
        self.scorer.clone()
    }

    /// Current configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Replace the rule set (for ablations).
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.config.rules = rules;
    }

    /// Register a table.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        self.catalog
            .register(name, table)
            .map_err(|e| SessionError::Data(e.to_string()))
    }

    /// Store a trained model pipeline; returns its version.
    pub fn store_model(&self, name: &str, pipeline: raven_ml::Pipeline) -> Result<u32> {
        let version = self.store.store(name, pipeline);
        // A model update invalidates cached inference sessions —
        // the transactional-update story of the paper's §2.
        self.scorer.invalidate(name);
        Ok(version)
    }

    /// Statically analyze a Python pipeline script (paper §3.2), train the
    /// extracted spec on the script's own dataflow result, and store it.
    ///
    /// `label_column` supplies training targets; it must exist in the
    /// script's data plan output (or be provided via `labels`).
    pub fn store_model_from_script(&self, name: &str, script: &str, labels: &[f64]) -> Result<u32> {
        let analysis =
            analyze(script, &self.catalog).map_err(|e| SessionError::Python(e.to_string()))?;
        let spec: &PipelineSpec = analysis
            .pipeline
            .as_ref()
            .ok_or_else(|| SessionError::Python("script defines no pipeline".into()))?;
        // Execute the data plan to get the training frame.
        let data_plan = analysis
            .data_plan
            .clone()
            .ok_or_else(|| SessionError::Python("script has no dataflow".into()))?;
        let table = self.execute_plan_raw(&data_plan)?;
        let features: Vec<String> = analysis.feature_columns.clone();
        let pipeline = spec
            .fit(table.batch(), &features, labels, 42)
            .map_err(|e| SessionError::Python(e.to_string()))?;
        self.store_model(name, pipeline)
    }

    /// Parse + bind a SQL query into the unified IR (no optimization).
    pub fn plan(&self, sql_text: &str) -> Result<Plan> {
        let query = parse(sql_text).map_err(|e| SessionError::Sql(e.to_string()))?;
        let mut binder = Binder::new(&self.catalog, self.store.as_ref());
        binder
            .bind_query(&query)
            .map_err(|e| SessionError::Sql(e.to_string()))
    }

    /// Run the cross optimizer on a plan.
    pub fn optimize(&self, plan: Plan) -> Result<(Plan, OptimizationReport)> {
        self.optimize_with_observed(plan, raven_opt::ObservedCosts::default())
    }

    /// Run the cross optimizer with runtime-observed cost feedback (the
    /// serving layer passes the micro-batcher's EWMA gauges here so
    /// kernel placement prices the classical path at its measured cost).
    pub fn optimize_with_observed(
        &self,
        plan: Plan,
        observed: raven_opt::ObservedCosts,
    ) -> Result<(Plan, OptimizationReport)> {
        let ctx = OptimizerContext {
            catalog: &self.catalog,
            rules: self.config.rules,
            inline_max_tree_nodes: self.config.inline_max_tree_nodes,
            device: self.config.device,
            assume_fk_joins: true,
            cost_params: raven_opt::CostParams::default(),
            observed,
        };
        let optimizer = match self.config.optimizer_mode {
            OptimizerMode::Heuristic => Optimizer::heuristic(),
            OptimizerMode::CostBased => Optimizer::cost_based(),
        };
        optimizer
            .run(plan, &ctx)
            .map_err(|e| SessionError::Optimizer(e.to_string()))
    }

    /// Execute a SQL inference query end to end.
    pub fn query(&self, sql_text: &str) -> Result<QueryResult> {
        let start = Instant::now();
        let plan = self.plan(sql_text)?;
        let (optimized, report) = self.optimize(plan)?;
        let exec_start = Instant::now();
        let table = self.execute_plan_raw(&optimized)?;
        let exec_time = exec_start.elapsed();
        Ok(QueryResult {
            table,
            total_time: start.elapsed(),
            exec_time,
            report,
        })
    }

    /// Execute an already-optimized plan.
    pub fn execute_plan(&self, plan: &Plan) -> Result<Table> {
        self.execute_plan_raw(plan)
    }

    /// Execute an already-optimized plan under a cancellation token. The
    /// executor polls the token between operators and morsels (and the
    /// scorer across simulated external-runtime sleeps), so an expired
    /// deadline aborts with [`SessionError::Cancelled`] instead of
    /// running to completion.
    pub fn execute_plan_with_cancel(&self, plan: &Plan, cancel: &CancelToken) -> Result<Table> {
        Executor::new(&self.catalog, self.scorer.as_ref(), self.config.exec)
            .with_cancel(cancel.clone())
            .execute(plan)
            .map_err(|e| match e {
                ExecError::Cancelled => SessionError::Cancelled,
                e => SessionError::Execution(e.to_string()),
            })
    }

    /// EXPLAIN: plans before and after optimization, the rule report, and
    /// the regenerated SQL (the Runtime Code Generator's output).
    pub fn explain(&self, sql_text: &str) -> Result<ExplainOutput> {
        let plan = self.plan(sql_text)?;
        let logical = plan.to_string();
        let (optimized, report) = self.optimize(plan)?;
        Ok(ExplainOutput {
            logical_plan: logical,
            optimized_plan: optimized.to_string(),
            report_summary: report.summary(),
            generated_sql: codegen::to_sql(&optimized),
        })
    }

    /// Inference-session cache stats (hits, misses).
    pub fn session_cache_stats(&self) -> (u64, u64) {
        self.scorer.cache_stats()
    }

    fn execute_plan_raw(&self, plan: &Plan) -> Result<Table> {
        Executor::new(&self.catalog, self.scorer.as_ref(), self.config.exec)
            .execute(plan)
            .map_err(|e| SessionError::Execution(e.to_string()))
    }
}

/// Make the session's model store usable where an `Arc`-based resolver is
/// needed.
impl raven_sql::ModelResolver for RavenSession {
    fn resolve(&self, name: &str) -> Option<Arc<raven_ml::Pipeline>> {
        self.store.get(name).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_datagen::{flights, hospital, train};

    fn hospital_session() -> (RavenSession, raven_datagen::HospitalData) {
        let session = RavenSession::with_config(SessionConfig::for_tests());
        let data = hospital::generate(500, 42);
        data.register(session.catalog()).unwrap();
        let model = train::hospital_tree(&data, 6).unwrap();
        session.store_model("duration_of_stay", model).unwrap();
        (session, data)
    }

    const RUNNING_EXAMPLE_SQL: &str = "\
        DECLARE @model varbinary(max) = (SELECT model FROM scoring_models \
          WHERE model_name = 'duration_of_stay');\
        WITH data AS (\
          SELECT * FROM patient_info AS pi \
          JOIN blood_tests AS bt ON pi.id = bt.id \
          JOIN prenatal_tests AS pt ON bt.id = pt.id);\
        SELECT d.id, p.length_of_stay \
        FROM PREDICT(MODEL = @model, DATA = data AS d) \
        WITH (length_of_stay FLOAT) AS p \
        WHERE d.pregnant = 1 AND p.length_of_stay > 6;";

    #[test]
    fn running_example_executes() {
        let (session, data) = hospital_session();
        let result = session.query(RUNNING_EXAMPLE_SQL).unwrap();
        assert_eq!(
            result.table.schema().names(),
            vec!["d.id", "p.length_of_stay"]
        );
        // Every returned row is pregnant with a long predicted stay;
        // cross-check against raw data.
        let batch = data.joined_batch();
        let pregnant = batch
            .column_by_name("pregnant")
            .unwrap()
            .i64_values()
            .unwrap();
        let ids = result
            .table
            .column_by_name("d.id")
            .unwrap()
            .i64_values()
            .unwrap();
        assert!(!ids.is_empty());
        for &id in ids {
            assert_eq!(pregnant[id as usize], 1);
        }
        let stays = result
            .table
            .column_by_name("p.length_of_stay")
            .unwrap()
            .f64_values()
            .unwrap();
        assert!(stays.iter().all(|&s| s > 6.0));
    }

    #[test]
    fn optimization_preserves_results() {
        let (mut session, _) = hospital_session();
        let optimized = session.query(RUNNING_EXAMPLE_SQL).unwrap();
        session.set_rules(RuleSet::none());
        let unoptimized = session.query(RUNNING_EXAMPLE_SQL).unwrap();
        assert_eq!(optimized.table.num_rows(), unoptimized.table.num_rows());
        let sort = |t: &Table| -> Vec<i64> {
            let mut v = t
                .column_by_name("d.id")
                .unwrap()
                .i64_values()
                .unwrap()
                .to_vec();
            v.sort();
            v
        };
        assert_eq!(sort(&optimized.table), sort(&unoptimized.table));
    }

    #[test]
    fn explain_shows_cross_optimizations() {
        // Use the exact Fig.-1 tree so the optimization cascade is fully
        // deterministic: pregnant=1 prunes the branch that used the
        // prenatal feature → projection pushdown drops it → the
        // prenatal_tests join is eliminated → the tiny tree inlines.
        use raven_ml::featurize::Transform;
        use raven_ml::tree::TreeNode;
        use raven_ml::{DecisionTree, Estimator, FeatureStep, Pipeline};
        let session = RavenSession::with_config(SessionConfig::for_tests());
        let data = hospital::generate(300, 42);
        data.register(session.catalog()).unwrap();
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0, // pregnant
                    threshold: 0.5,
                    left: 1,
                    right: 4,
                },
                TreeNode::Split {
                    feature: 2, // fetal_hr (prenatal feature)
                    threshold: 50.0,
                    left: 2,
                    right: 3,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 3.0 },
                TreeNode::Split {
                    feature: 1, // bp
                    threshold: 140.0,
                    left: 5,
                    right: 6,
                },
                TreeNode::Leaf { value: 4.0 },
                TreeNode::Leaf { value: 7.0 },
            ],
            3,
        )
        .unwrap();
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new("pregnant", Transform::Identity),
                FeatureStep::new("bp", Transform::Identity),
                FeatureStep::new("fetal_hr", Transform::Identity),
            ],
            Estimator::Tree(tree),
        )
        .unwrap();
        session.store_model("duration_of_stay", pipeline).unwrap();

        let explain = session.explain(RUNNING_EXAMPLE_SQL).unwrap();
        assert!(explain.logical_plan.contains("Predict"));
        assert!(
            explain.report_summary.contains("predicate_model_pruning"),
            "{}",
            explain.report_summary
        );
        assert!(
            !explain.optimized_plan.contains("prenatal_tests"),
            "join not eliminated:\n{}",
            explain.optimized_plan
        );
        assert!(explain.generated_sql.contains("SELECT"));
        let display = explain.to_string();
        assert!(display.contains("== Generated SQL =="));
    }

    #[test]
    fn flight_query_with_model() {
        let session = RavenSession::with_config(SessionConfig::for_tests());
        let data = flights::generate(1000, &flights::FlightParams::default());
        data.register(session.catalog()).unwrap();
        let model = train::flight_logistic(&data, 0.01, 60).unwrap();
        session.store_model("delay", model).unwrap();
        let dest = data.airports[0].clone();
        let result = session
            .query(&format!(
                "SELECT f.id, p.prob FROM PREDICT(MODEL = 'delay', \
                 DATA = flights AS f) WITH (prob FLOAT) AS p \
                 WHERE f.dest = '{dest}'"
            ))
            .unwrap();
        assert!(result.table.num_rows() > 0);
        assert!(result
            .report
            .rule_applications
            .iter()
            .any(|(n, _)| n == "predicate_model_pruning"));
    }

    #[test]
    fn model_update_invalidates_sessions() {
        let (session, data) = hospital_session();
        let _ = session.query(RUNNING_EXAMPLE_SQL).unwrap();
        // Update the model; next query must rebuild sessions, not reuse.
        let model2 = train::hospital_tree(&data, 3).unwrap();
        session.store_model("duration_of_stay", model2).unwrap();
        assert_eq!(session.store().latest_version("duration_of_stay"), 2);
        let _ = session.query(RUNNING_EXAMPLE_SQL).unwrap();
    }

    #[test]
    fn store_model_from_script_end_to_end() {
        let session = RavenSession::with_config(SessionConfig::for_tests());
        let data = hospital::generate(400, 7);
        data.register(session.catalog()).unwrap();
        let script = r#"
import pandas as pd
from sklearn.pipeline import Pipeline
from sklearn.preprocessing import StandardScaler
from sklearn.tree import DecisionTreeClassifier

pi = pd.read_sql("patient_info")
bt = pd.read_sql("blood_tests")
joined = pi.merge(bt, on="id")
features = joined[["age", "bp", "pregnant"]]
model_pipeline = Pipeline([
    ("scaler", StandardScaler()),
    ("clf", DecisionTreeClassifier(max_depth=6)),
])
predictions = model_pipeline.predict(features)
"#;
        let labels: Vec<f64> = data
            .length_of_stay
            .iter()
            .map(|&s| (s > 4.0) as i64 as f64)
            .collect();
        session
            .store_model_from_script("from_script", script, &labels)
            .unwrap();
        let result = session
            .query(
                "SELECT p.prob FROM PREDICT(MODEL = 'from_script', \
                 DATA = (SELECT * FROM patient_info AS pi JOIN blood_tests AS bt \
                 ON pi.id = bt.id) AS d) WITH (prob FLOAT) AS p",
            )
            .unwrap();
        assert_eq!(result.table.num_rows(), 400);
    }

    #[test]
    fn errors_are_informative() {
        let session = RavenSession::with_config(SessionConfig::for_tests());
        assert!(matches!(
            session.query("SELECT * FROM nope"),
            Err(SessionError::Sql(_))
        ));
        assert!(matches!(
            session.query("THIS IS NOT SQL"),
            Err(SessionError::Sql(_))
        ));
    }

    #[test]
    fn cancelled_plan_execution_is_typed() {
        let (session, _) = hospital_session();
        let plan = session.plan("SELECT * FROM patient_info").unwrap();
        let (optimized, _) = session.optimize(plan).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            session.execute_plan_with_cancel(&optimized, &cancel),
            Err(SessionError::Cancelled)
        );
        // A fresh token executes normally.
        let table = session
            .execute_plan_with_cancel(&optimized, &CancelToken::new())
            .unwrap();
        assert_eq!(table.num_rows(), 500);
    }

    #[test]
    fn relational_only_queries_work() {
        let (session, _) = hospital_session();
        let result = session
            .query(
                "SELECT pregnant, COUNT(*) AS n, AVG(age) AS mean_age \
                 FROM patient_info GROUP BY pregnant ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(result.table.num_rows(), 2);
    }
}
