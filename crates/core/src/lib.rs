//! # raven-core
//!
//! The public facade of **raven-rs**, a from-scratch Rust reproduction of
//! *"Extending Relational Query Processing with ML Inference"* (Karanasos
//! et al., CIDR 2020) — the **Raven** system: in-database ML inference
//! with a unified relational+ML IR and cross optimizations.
//!
//! ## Quickstart
//!
//! ```
//! use raven_core::RavenSession;
//! use raven_data::{Column, DataType, Schema, Table};
//! use raven_ml::featurize::Transform;
//! use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
//!
//! let mut session = RavenSession::new();
//!
//! // 1. Register data (the DBMS side).
//! let table = Table::try_new(
//!     Schema::from_pairs(&[("age", DataType::Float64)]).into_shared(),
//!     vec![Column::from(vec![30.0, 60.0])],
//! ).unwrap();
//! session.register_table("patients", table).unwrap();
//!
//! // 2. Store a model pipeline (the data-scientist side).
//! let pipeline = Pipeline::new(
//!     vec![FeatureStep::new("age", Transform::Identity)],
//!     Estimator::Linear(LinearModel::new(vec![0.1], 0.0, LinearKind::Regression).unwrap()),
//! ).unwrap();
//! session.store_model("risk", pipeline).unwrap();
//!
//! // 3. Run an inference query (the analyst side).
//! let result = session.query(
//!     "SELECT p.score FROM PREDICT(MODEL = 'risk', DATA = patients AS d) \
//!      WITH (score FLOAT) AS p WHERE p.score > 4",
//! ).unwrap();
//! assert_eq!(result.table.num_rows(), 1);
//! ```
//!
//! The session wires together every subsystem of the reproduction:
//! [`raven_sql`] parses inference queries (including SQL Server's
//! `PREDICT`), [`raven_pyanalysis`] statically analyzes Python pipeline
//! scripts, [`raven_opt`] runs the cross optimizer over the unified
//! [`raven_ir`] plan, and [`raven_runtime`] executes with the integrated
//! [`raven_tensor`] runtime (or external/containerized runtimes).

pub mod session;
pub mod store;

pub use session::{ExplainOutput, QueryResult, RavenSession, SessionConfig};
pub use store::{AuditEntry, ModelStore, StoreError};

// Re-export the subsystem crates so downstream users need one dependency.
pub use raven_data as data;
pub use raven_ir as ir;
pub use raven_ml as ml;
pub use raven_opt as opt;
pub use raven_pyanalysis as pyanalysis;
pub use raven_relational as relational;
pub use raven_runtime as runtime;
pub use raven_sql as sql;
pub use raven_tensor as tensor;
