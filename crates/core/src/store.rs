//! The in-database model store.
//!
//! The paper's pitch: models stored in the RDBMS inherit the guarantees of
//! operational data — transactional updates, versioning, auditability
//! (§1–§2). This store provides exactly those:
//!
//! * models are stored **serialized** (the bytes a `varbinary(max)` column
//!   would hold) and deserialized on load, so storage is honest;
//! * every store/update appends a new **version** atomically; readers
//!   always see a consistent latest version;
//! * every mutation is recorded in an **audit log**.

use parking_lot::RwLock;
use raven_ml::{serialize, Pipeline};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Store errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    NotFound(String),
    VersionNotFound { model: String, version: u32 },
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(m) => write!(f, "model not found: {m}"),
            StoreError::VersionNotFound { model, version } => {
                write!(f, "model {model} has no version {version}")
            }
            StoreError::Corrupt(m) => write!(f, "stored model is corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One audit-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Monotone sequence number.
    pub seq: u64,
    /// `store` / `update` / `delete`.
    pub action: String,
    pub model: String,
    pub version: u32,
}

#[derive(Clone)]
struct StoredVersion {
    bytes: Arc<Vec<u8>>,
    /// Deserialized cache (what a warm model cache holds).
    pipeline: Arc<Pipeline>,
}

#[derive(Default)]
struct Inner {
    models: HashMap<String, Vec<StoredVersion>>,
    audit: Vec<AuditEntry>,
    seq: u64,
}

/// Thread-safe, versioned, audited model storage.
#[derive(Default)]
pub struct ModelStore {
    inner: RwLock<Inner>,
}

impl ModelStore {
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// Store a pipeline under `name`; returns the new version number
    /// (1-based). Storing an existing name appends a version — the
    /// transactional model update of the paper's §2.
    pub fn store(&self, name: &str, pipeline: Pipeline) -> u32 {
        let bytes = serialize::to_bytes(&pipeline);
        let mut inner = self.inner.write();
        let versions = inner.models.entry(name.to_string()).or_default();
        versions.push(StoredVersion {
            bytes: Arc::new(bytes),
            pipeline: Arc::new(pipeline),
        });
        let version = versions.len() as u32;
        let action = if version == 1 { "store" } else { "update" };
        inner.seq += 1;
        let seq = inner.seq;
        inner.audit.push(AuditEntry {
            seq,
            action: action.to_string(),
            model: name.to_string(),
            version,
        });
        version
    }

    /// Latest version of a model.
    pub fn get(&self, name: &str) -> Result<Arc<Pipeline>, StoreError> {
        let inner = self.inner.read();
        inner
            .models
            .get(name)
            .and_then(|v| v.last())
            .map(|v| v.pipeline.clone())
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    /// A specific version (1-based).
    pub fn get_version(&self, name: &str, version: u32) -> Result<Arc<Pipeline>, StoreError> {
        let inner = self.inner.read();
        let versions = inner
            .models
            .get(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        versions
            .get(version.checked_sub(1).ok_or(StoreError::VersionNotFound {
                model: name.to_string(),
                version,
            })? as usize)
            .map(|v| v.pipeline.clone())
            .ok_or(StoreError::VersionNotFound {
                model: name.to_string(),
                version,
            })
    }

    /// The stored bytes of the latest version (what `SELECT model FROM
    /// scoring_models` would return).
    pub fn get_bytes(&self, name: &str) -> Result<Arc<Vec<u8>>, StoreError> {
        let inner = self.inner.read();
        inner
            .models
            .get(name)
            .and_then(|v| v.last())
            .map(|v| v.bytes.clone())
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    /// Reload the latest version from its stored bytes (exercises the
    /// serialization path — used to model cold model loads).
    pub fn load_from_bytes(&self, name: &str) -> Result<Pipeline, StoreError> {
        let bytes = self.get_bytes(name)?;
        serialize::from_bytes(&bytes).map_err(|e| StoreError::Corrupt(e.to_string()))
    }

    /// Delete a model entirely.
    pub fn delete(&self, name: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        let versions = inner
            .models
            .remove(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        inner.seq += 1;
        let seq = inner.seq;
        inner.audit.push(AuditEntry {
            seq,
            action: "delete".to_string(),
            model: name.to_string(),
            version: versions.len() as u32,
        });
        Ok(())
    }

    /// Latest version number of a model (0 if absent).
    pub fn latest_version(&self, name: &str) -> u32 {
        self.inner
            .read()
            .models
            .get(name)
            .map(|v| v.len() as u32)
            .unwrap_or(0)
    }

    /// All model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().models.keys().cloned().collect();
        names.sort();
        names
    }

    /// The audit log (clone).
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.inner.read().audit.clone()
    }
}

impl raven_sql::ModelResolver for ModelStore {
    fn resolve(&self, name: &str) -> Option<Arc<Pipeline>> {
        self.get(name).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel};

    fn pipeline(w: f64) -> Pipeline {
        Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![w], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn store_get_roundtrip() {
        let store = ModelStore::new();
        assert_eq!(store.store("m", pipeline(1.0)), 1);
        let p = store.get("m").unwrap();
        assert_eq!(p.predict_raw(&[2.0], 1).unwrap(), vec![2.0]);
        assert!(store.get("ghost").is_err());
    }

    #[test]
    fn versioning_and_transactional_update() {
        let store = ModelStore::new();
        store.store("m", pipeline(1.0));
        assert_eq!(store.store("m", pipeline(2.0)), 2);
        // Latest is v2; v1 still retrievable.
        assert_eq!(
            store.get("m").unwrap().predict_raw(&[1.0], 1).unwrap(),
            vec![2.0]
        );
        assert_eq!(
            store
                .get_version("m", 1)
                .unwrap()
                .predict_raw(&[1.0], 1)
                .unwrap(),
            vec![1.0]
        );
        assert!(store.get_version("m", 3).is_err());
        assert!(store.get_version("m", 0).is_err());
        assert_eq!(store.latest_version("m"), 2);
    }

    #[test]
    fn bytes_are_real_serialization() {
        let store = ModelStore::new();
        store.store("m", pipeline(3.0));
        let loaded = store.load_from_bytes("m").unwrap();
        assert_eq!(loaded.predict_raw(&[2.0], 1).unwrap(), vec![6.0]);
        assert!(!store.get_bytes("m").unwrap().is_empty());
    }

    #[test]
    fn audit_log_records_mutations() {
        let store = ModelStore::new();
        store.store("a", pipeline(1.0));
        store.store("a", pipeline(2.0));
        store.store("b", pipeline(3.0));
        store.delete("a").unwrap();
        let log = store.audit_log();
        let actions: Vec<&str> = log.iter().map(|e| e.action.as_str()).collect();
        assert_eq!(actions, vec!["store", "update", "store", "delete"]);
        // Sequence numbers are monotone.
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(store.model_names(), vec!["b"]);
        assert!(store.delete("a").is_err());
    }

    #[test]
    fn resolver_interface() {
        use raven_sql::ModelResolver;
        let store = ModelStore::new();
        store.store("m", pipeline(1.0));
        assert!(store.resolve("m").is_some());
        assert!(store.resolve("nope").is_none());
    }

    #[test]
    fn concurrent_access() {
        let store = Arc::new(ModelStore::new());
        store.store("m", pipeline(1.0));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = store.clone();
                std::thread::spawn(move || {
                    s.store("m", pipeline(i as f64));
                    s.get("m").unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.latest_version("m"), 5);
    }
}
