//! The cost model for the cost-based driver.
//!
//! The paper sketches a Cascades-style optimizer where "each operator will
//! be associated with a cost" and the engine placement (relational vs ML
//! runtime) is part of the search space. This module provides that cost
//! function: cardinality estimates flow bottom-up from table statistics,
//! each operator charges per-row work, model operators charge
//! model-complexity-dependent work plus an engine-switch penalty, and the
//! external execution modes carry their fixed startup overheads.

use raven_ir::{ExecutionMode, Expr, Plan};
use raven_ml::{Estimator, FlatForest};

/// Tunable cost constants (abstract units ≈ ns-ish; only ratios matter).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    pub scan_per_value: f64,
    pub filter_per_row: f64,
    pub project_per_expr_row: f64,
    pub join_per_row: f64,
    pub agg_per_row: f64,
    pub sort_per_row_log: f64,
    /// Per tree-node visited per row (classical tree walking).
    pub tree_node_visit: f64,
    /// Per non-zero weight per row (linear models).
    pub linear_nnz: f64,
    /// Per MLP parameter per row.
    pub mlp_param: f64,
    /// Tensor-runtime efficiency factor (GEMM batching beats per-row
    /// interpretation).
    pub tensor_discount: f64,
    /// Per tree-*level* advanced per row in the columnar kernel. Much
    /// cheaper than `tree_node_visit`: the flat layout is contiguous,
    /// branchless and enum-free.
    pub kernel_node_visit: f64,
    /// Per gathered feature value per row (the fused featurization scan).
    pub kernel_gather_per_value: f64,
    /// Fixed per-node charge reflecting flat-layout compilation and
    /// cache warming — keeps tiny point lookups on the classical path.
    pub kernel_setup_per_node: f64,
    /// Crossing between relational engine and ML runtime.
    pub engine_switch: f64,
    /// Fixed startup of `sp_execute_external_script` (paper: ~0.5 s).
    pub out_of_process_startup: f64,
    /// Fixed startup of containerized REST scoring.
    pub container_startup: f64,
    /// Default filter selectivity when nothing is known.
    pub default_selectivity: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            scan_per_value: 1.0,
            filter_per_row: 2.0,
            project_per_expr_row: 1.0,
            join_per_row: 8.0,
            agg_per_row: 6.0,
            sort_per_row_log: 2.0,
            tree_node_visit: 4.0,
            linear_nnz: 1.0,
            mlp_param: 1.0,
            tensor_discount: 0.25,
            kernel_node_visit: 0.5,
            kernel_gather_per_value: 0.25,
            kernel_setup_per_node: 2.0,
            engine_switch: 1_000.0,
            out_of_process_startup: 500_000_000.0,
            container_startup: 2_000_000_000.0,
            default_selectivity: 0.25,
        }
    }
}

/// Estimated (cost, output rows) for a plan.
pub fn estimate(plan: &Plan, catalog: &raven_data::Catalog, params: &CostParams) -> (f64, f64) {
    match plan {
        Plan::Scan { table, schema } => {
            let rows = catalog
                .stats(table)
                .map(|s| s.row_count as f64)
                .unwrap_or(1_000.0);
            (rows * schema.len() as f64 * params.scan_per_value, rows)
        }
        Plan::Filter { input, predicate } => {
            let (c, rows) = estimate(input, catalog, params);
            let sel = selectivity(predicate, params);
            (
                c + rows * params.filter_per_row * expr_weight(predicate),
                (rows * sel).max(1.0),
            )
        }
        Plan::Project { input, exprs } => {
            let (c, rows) = estimate(input, catalog, params);
            let weight: f64 = exprs.iter().map(|(e, _)| expr_weight(e)).sum();
            (c + rows * weight * params.project_per_expr_row, rows)
        }
        Plan::Join { left, right, .. } => {
            let (lc, lr) = estimate(left, catalog, params);
            let (rc, rr) = estimate(right, catalog, params);
            // FK join: output ≈ probe side.
            (lc + rc + (lr + rr) * params.join_per_row, lr.max(1.0))
        }
        Plan::Aggregate { input, .. } => {
            let (c, rows) = estimate(input, catalog, params);
            (c + rows * params.agg_per_row, (rows / 10.0).max(1.0))
        }
        Plan::Union { inputs } => {
            let mut cost = 0.0;
            let mut rows = 0.0;
            for p in inputs {
                let (c, r) = estimate(p, catalog, params);
                cost += c;
                rows += r;
            }
            (cost, rows)
        }
        Plan::Sort { input, .. } => {
            let (c, rows) = estimate(input, catalog, params);
            (
                c + rows * rows.max(2.0).log2() * params.sort_per_row_log,
                rows,
            )
        }
        Plan::Limit { input, fetch } => {
            let (c, rows) = estimate(input, catalog, params);
            (c, rows.min(*fetch as f64))
        }
        Plan::Predict {
            input, model, mode, ..
        } => {
            let (c, rows) = estimate(input, catalog, params);
            let per_row = model_row_cost(model.pipeline.estimator(), params)
                + model.pipeline.n_features() as f64 * 0.5;
            let fixed = match mode {
                ExecutionMode::InProcess => params.engine_switch,
                ExecutionMode::OutOfProcess => params.out_of_process_startup,
                ExecutionMode::Container => params.container_startup,
            };
            // External modes also pay per-row transfer.
            let transfer = match mode {
                ExecutionMode::InProcess => 0.0,
                _ => rows * model.pipeline.steps().len() as f64 * 4.0,
            };
            (c + fixed + transfer + rows * per_row, rows)
        }
        Plan::TensorPredict { input, model, .. } => {
            let (c, rows) = estimate(input, catalog, params);
            let per_row = model_row_cost(model.pipeline.estimator(), params)
                * params.tensor_discount
                + model.pipeline.n_features() as f64 * 0.25;
            (c + params.engine_switch + rows * per_row, rows)
        }
        Plan::KernelPredict { input, flat, .. } => {
            let (c, rows) = estimate(input, catalog, params);
            let fixed = params.engine_switch + flat.n_nodes() as f64 * params.kernel_setup_per_node;
            (c + fixed + rows * kernel_row_cost(flat, params), rows)
        }
        Plan::ClusteredPredict {
            input,
            cluster_models,
            ..
        } => {
            let (c, rows) = estimate(input, catalog, params);
            // Average specialized-model cost + routing.
            let avg: f64 = cluster_models
                .iter()
                .map(|m| model_row_cost(m.estimator(), params) + m.n_features() as f64 * 0.5)
                .sum::<f64>()
                / cluster_models.len().max(1) as f64;
            (
                c + params.engine_switch + rows * (avg + cluster_models.len() as f64 * 0.5),
                rows,
            )
        }
        Plan::Udf { input, .. } => {
            let (c, rows) = estimate(input, catalog, params);
            // Opaque code: assume expensive.
            (c + rows * 100.0, rows)
        }
    }
}

/// Per-row scoring cost of an estimator under classical execution.
pub fn model_row_cost(estimator: &Estimator, params: &CostParams) -> f64 {
    match estimator {
        Estimator::Tree(t) => t.depth().max(1) as f64 * params.tree_node_visit,
        Estimator::Forest(f) => f
            .trees()
            .iter()
            .map(|t| t.depth().max(1) as f64 * params.tree_node_visit)
            .sum(),
        Estimator::Linear(m) => m.nonzero_features().len().max(1) as f64 * params.linear_nnz,
        Estimator::Mlp(m) => {
            m.layers()
                .iter()
                .map(|l| (l.w.len() + l.b.len()) as f64)
                .sum::<f64>()
                * params.mlp_param
        }
    }
}

/// Per-row scoring cost of a flattened ensemble under the columnar
/// kernel: one branchless step per tree level plus the fused gather of
/// only the features some split reads.
pub fn kernel_row_cost(flat: &FlatForest, params: &CostParams) -> f64 {
    flat.total_depth().max(1) as f64 * params.kernel_node_visit
        + flat.n_gathered() as f64 * params.kernel_gather_per_value
}

/// Runtime-observed per-row costs fed back into planning (the serving
/// layer reads the micro-batcher's `batcher_ewma_*` gauges and passes
/// them here). When present, the observed classical per-row cost replaces
/// the static estimate in the placement rule — a feedback loop from
/// execution telemetry to plan choice.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObservedCosts {
    /// EWMA of observed classical scoring cost per row, in the cost
    /// model's abstract (≈ ns) units.
    pub classical_row_ns: Option<f64>,
}

/// Rough predicate selectivity: equality is selective, ranges moderate.
fn selectivity(predicate: &Expr, params: &CostParams) -> f64 {
    use raven_ir::analyze::conjuncts;
    let mut sel = 1.0;
    for c in conjuncts(predicate) {
        let s = match c {
            Expr::Binary { op, .. } if *op == raven_ir::BinOp::Eq => 0.1,
            Expr::Binary { op, .. } if op.is_comparison() => 0.4,
            _ => params.default_selectivity,
        };
        sel *= s;
    }
    sel.max(0.001)
}

/// Expression weight ≈ node count (CASE trees from inlining are heavy).
fn expr_weight(expr: &Expr) -> f64 {
    let mut n = 0usize;
    expr.visit(&mut |_| n += 1);
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{Expr, ModelRef};
    use raven_ml::featurize::Transform;
    use raven_ml::{FeatureStep, LinearKind, LinearModel, Pipeline};
    use std::sync::Arc;

    fn catalog(rows: usize) -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "t",
            Table::try_new(
                Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                vec![Column::Float64(vec![1.0; rows])],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> Plan {
        Plan::Scan {
            table: "t".into(),
            schema: cat.table("t").unwrap().schema().clone(),
        }
    }

    fn predict(cat: &Catalog, mode: ExecutionMode) -> Plan {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        Plan::Predict {
            input: Box::new(scan(cat)),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "s".into(),
            mode,
        }
    }

    #[test]
    fn cardinality_flows_from_stats() {
        let cat = catalog(1000);
        let params = CostParams::default();
        let (_, rows) = estimate(&scan(&cat), &cat, &params);
        assert_eq!(rows, 1000.0);
        let filtered = Plan::Filter {
            input: Box::new(scan(&cat)),
            predicate: Expr::col("x").eq(Expr::lit(1i64)),
        };
        let (_, rows) = estimate(&filtered, &cat, &params);
        assert_eq!(rows, 100.0);
    }

    #[test]
    fn external_modes_cost_more() {
        let cat = catalog(1000);
        let params = CostParams::default();
        let (inproc, _) = estimate(&predict(&cat, ExecutionMode::InProcess), &cat, &params);
        let (ext, _) = estimate(&predict(&cat, ExecutionMode::OutOfProcess), &cat, &params);
        let (cont, _) = estimate(&predict(&cat, ExecutionMode::Container), &cat, &params);
        assert!(inproc < ext && ext < cont);
    }

    #[test]
    fn tensor_cheaper_than_classical_at_scale() {
        let cat = catalog(1_000_000);
        let params = CostParams::default();
        let classical = predict(&cat, ExecutionMode::InProcess);
        let (cc, _) = estimate(&classical, &cat, &params);
        let Plan::Predict {
            input,
            model,
            output,
            ..
        } = classical
        else {
            unreachable!()
        };
        let graph = raven_ml::translate::translate_pipeline(&model.pipeline).unwrap();
        let tensor = Plan::TensorPredict {
            input,
            model,
            graph: Arc::new(graph),
            output,
            device: raven_ir::Device::CpuParallel,
        };
        let (tc, _) = estimate(&tensor, &cat, &params);
        assert!(tc < cc);
    }

    #[test]
    fn pruned_tree_costs_less() {
        use raven_ml::tree::TreeNode;
        let deep = raven_ml::DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Split {
                    feature: 0,
                    threshold: 0.7,
                    left: 3,
                    right: 4,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 2.0 },
            ],
            1,
        )
        .unwrap();
        let shallow =
            raven_ml::DecisionTree::from_nodes(vec![TreeNode::Leaf { value: 1.0 }], 1).unwrap();
        let params = CostParams::default();
        assert!(
            model_row_cost(&Estimator::Tree(deep), &params)
                > model_row_cost(&Estimator::Tree(shallow), &params)
        );
    }
}
