//! Constraint collection below a plan node.
//!
//! The data→model rules need to know, at a model operator, which
//! constraints hold on its input columns. Constraints come from two
//! sources the paper names explicitly (§4.1):
//!
//! * **relational predicates** — `Filter` nodes below the model
//!   (`WHERE pregnant = 1`);
//! * **data statistics** — per-column stats of the scanned tables ("we
//!   might observe ... that all patients are above 35"); derived
//!   constraints are valid for the data currently in the table, exactly
//!   the paper's model-clustering/derived-predicate regime.
//!
//! Constraint keys are rewritten through `Project` renames so they are
//! expressed in the column names visible at the model's input.

use crate::context::OptimizerContext;
use raven_ir::analyze::{extract_constraints, ColumnConstraints};
use raven_ir::{Expr, Plan};
use raven_ml::tree::Interval;

/// Collect constraints that hold for every row entering `plan`'s output.
pub fn constraints_below(plan: &Plan, ctx: &OptimizerContext<'_>) -> ColumnConstraints {
    match plan {
        Plan::Scan { table, .. } => {
            let mut out = ColumnConstraints::default();
            if !ctx.rules.stats_derived_predicates {
                return out;
            }
            let Ok(stats) = ctx.catalog.stats(table) else {
                return out;
            };
            for col in &stats.columns {
                // Constant columns become equality constraints; otherwise
                // min/max become a derived range predicate.
                if let Some(v) = col.constant_value() {
                    match v {
                        raven_data::Value::Utf8(s) => {
                            out.equal_strings.insert(col.name.clone(), s);
                        }
                        other => {
                            if let Ok(x) = other.as_f64() {
                                out.intervals.insert(col.name.clone(), Interval::point(x));
                            }
                        }
                    }
                } else if let (Some(lo), Some(hi)) = (col.min, col.max) {
                    out.intervals.insert(col.name.clone(), Interval { lo, hi });
                }
            }
            out
        }
        Plan::Filter { input, predicate } => {
            let mut out = constraints_below(input, ctx);
            out.merge(&extract_constraints(predicate));
            out
        }
        Plan::Project { input, exprs } => {
            let inner = constraints_below(input, ctx);
            let mut out = ColumnConstraints::default();
            for (expr, name) in exprs {
                if let Expr::Column(old) = expr {
                    if let Some(iv) = inner.intervals.get(old) {
                        out.intervals.insert(name.clone(), *iv);
                    }
                    if let Some(s) = inner.equal_strings.get(old) {
                        out.equal_strings.insert(name.clone(), s.clone());
                    }
                }
            }
            out
        }
        Plan::Join { left, right, .. } => {
            let mut out = constraints_below(left, ctx);
            out.merge(&constraints_below(right, ctx));
            out
        }
        Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Predict { input, .. }
        | Plan::TensorPredict { input, .. }
        | Plan::KernelPredict { input, .. }
        | Plan::ClusteredPredict { input, .. }
        | Plan::Udf { input, .. } => constraints_below(input, ctx),
        // Conservative: no constraints survive aggregation or union.
        Plan::Aggregate { .. } | Plan::Union { .. } => ColumnConstraints::default(),
    }
}

/// Turn column constraints into per-feature [`Interval`]s for a pipeline,
/// translating categorical string equalities through the one-hot encoder.
pub fn feature_bounds_for(
    pipeline: &raven_ml::Pipeline,
    constraints: &ColumnConstraints,
) -> Vec<(String, Interval)> {
    let mut column_bounds: Vec<(String, Interval)> = Vec::new();
    for (col, iv) in &constraints.intervals {
        column_bounds.push((col.clone(), *iv));
    }
    for (col, value) in &constraints.equal_strings {
        // Find the one-hot step for this column (allowing a qualified
        // plan-side name like `f.dest` to match the bare step `dest`) and
        // map the category to its raw index (unknown → -1, which one-hots
        // to all zeros).
        let suffix = col.rsplit_once('.').map(|(_, s)| s).unwrap_or(col);
        for step in pipeline.steps() {
            if step.column == *col || step.column == suffix {
                if let raven_ml::Transform::OneHot(encoder) = &step.transform {
                    let idx = encoder.encode_index(value);
                    column_bounds.push((step.column.clone(), Interval::point(idx)));
                }
            }
        }
    }
    // Suffix matching: plan columns may be qualified (`d.pregnant`) while
    // pipeline steps use bare names (`pregnant`). Add unqualified aliases.
    let mut extra = Vec::new();
    for (name, iv) in &column_bounds {
        if let Some((_, suffix)) = name.rsplit_once('.') {
            if pipeline.input_columns().contains(&suffix) {
                extra.push((suffix.to_string(), *iv));
            }
        }
    }
    column_bounds.extend(extra);
    column_bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ml::featurize::{OneHotEncoder, Transform};
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "patients",
            Table::try_new(
                Schema::from_pairs(&[("age", DataType::Float64), ("gender", DataType::Utf8)])
                    .into_shared(),
                vec![
                    Column::from(vec![36.0, 50.0, 41.0]),
                    Column::from(vec!["F", "F", "F"]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> Plan {
        Plan::Scan {
            table: "patients".into(),
            schema: cat.table("patients").unwrap().schema().clone(),
        }
    }

    #[test]
    fn stats_derive_constraints() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let c = constraints_below(&scan(&cat), &ctx);
        // gender is constant 'F'; age has a [36, 50] range.
        assert_eq!(c.equal_strings["gender"], "F");
        assert_eq!(c.intervals["age"], Interval { lo: 36.0, hi: 50.0 });
    }

    #[test]
    fn stats_respect_rule_toggle() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        assert!(constraints_below(&scan(&cat), &ctx).is_empty());
    }

    #[test]
    fn filter_constraints_merge_with_stats() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(scan(&cat)),
            predicate: Expr::col("age").gt(Expr::lit(40i64)),
        };
        let c = constraints_below(&plan, &ctx);
        // Stats say [36,50]; predicate says [40,inf) → merged [40,50].
        assert_eq!(c.intervals["age"], Interval { lo: 40.0, hi: 50.0 });
    }

    #[test]
    fn project_renames_constraint_keys() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(&cat)),
                predicate: Expr::col("age").eq(Expr::lit(42i64)),
            }),
            exprs: vec![(Expr::col("age"), "pi.age".into())],
        };
        let c = constraints_below(&plan, &ctx);
        assert_eq!(c.intervals["pi.age"], Interval::point(42.0));
        assert!(!c.intervals.contains_key("age"));
    }

    #[test]
    fn aggregates_drop_constraints() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Aggregate {
            input: Box::new(scan(&cat)),
            group_by: vec!["gender".into()],
            aggregates: vec![],
        };
        assert!(constraints_below(&plan, &ctx).is_empty());
    }

    #[test]
    fn feature_bounds_map_categorical_equality() {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new(
                "gender",
                Transform::OneHot(OneHotEncoder::new(vec!["F".into(), "M".into()]).unwrap()),
            )],
            Estimator::Linear(
                LinearModel::new(vec![1.0, -1.0], 0.0, LinearKind::Regression).unwrap(),
            ),
        )
        .unwrap();
        let mut c = ColumnConstraints::default();
        c.equal_strings.insert("gender".into(), "F".into());
        let bounds = feature_bounds_for(&pipeline, &c);
        assert!(bounds.contains(&("gender".to_string(), Interval::point(0.0))));
        let _ = Arc::new(pipeline);
    }

    #[test]
    fn qualified_names_alias_to_bare_steps() {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("age", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let mut c = ColumnConstraints::default();
        c.intervals.insert("d.age".into(), Interval::point(40.0));
        let bounds = feature_bounds_for(&pipeline, &c);
        assert!(bounds.contains(&("age".to_string(), Interval::point(40.0))));
    }
}
