//! Shared model-rewriting helpers used by several rules.

use crate::error::OptError;
use crate::Result;
use raven_ml::tree::{DecisionTree, Interval, TreeNode};
use raven_ml::{Estimator, LinearModel, Pipeline, RandomForest};
use std::collections::HashMap;

/// Remap the feature indices referenced by a tree's splits.
///
/// `map[old] = new`. Every feature used by the tree must be present in the
/// map; `new_width` is the feature count of the remapped space.
pub fn remap_tree_features(
    tree: &DecisionTree,
    map: &HashMap<usize, usize>,
    new_width: usize,
) -> Result<DecisionTree> {
    let nodes = tree
        .nodes()
        .iter()
        .map(|n| match n {
            TreeNode::Leaf { value } => Ok(TreeNode::Leaf { value: *value }),
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let new_feature = *map.get(feature).ok_or_else(|| {
                    OptError::Internal(format!("feature {feature} missing from remap"))
                })?;
                Ok(TreeNode::Split {
                    feature: new_feature,
                    threshold: *threshold,
                    left: *left,
                    right: *right,
                })
            }
        })
        .collect::<Result<Vec<_>>>()?;
    DecisionTree::from_nodes(nodes, new_width).map_err(OptError::from)
}

/// Fold per-feature point constants into a linear model without changing
/// its shape: pinned features get weight 0 and their contribution moves
/// into the bias. Returns the folded model and how many weights were
/// zeroed (0 = nothing to do).
pub fn fold_linear_constants(
    model: &LinearModel,
    bounds: &[Interval],
) -> Result<(LinearModel, usize)> {
    if bounds.len() != model.n_features() {
        return Err(OptError::Internal(format!(
            "bounds width {} vs model width {}",
            bounds.len(),
            model.n_features()
        )));
    }
    let mut weights = model.weights().to_vec();
    let mut bias = model.bias();
    let mut folded = 0usize;
    for (w, b) in weights.iter_mut().zip(bounds) {
        if b.is_point() && *w != 0.0 {
            bias += *w * b.lo;
            *w = 0.0;
            folded += 1;
        }
    }
    let out = LinearModel::new(weights, bias, model.kind()).map_err(OptError::from)?;
    Ok((out, folded))
}

/// Drop the features the estimator never uses, remapping the estimator
/// onto the surviving feature space.
///
/// Granularity matches the paper's model-projection pushdown:
/// * a whole step disappears when none of its features are used;
/// * a **one-hot step shrinks to the used categories** — zero-weight
///   indicator columns are exactly the "features multiplied with
///   zero-weights" the paper projects out (unused categories encode to
///   the all-zero vector, which is what their folded weights expect).
///
/// Returns `None` when nothing can be dropped (everything used, or the
/// estimator is an MLP which conservatively uses everything).
pub fn shrink_pipeline(pipeline: &Pipeline) -> Result<Option<Pipeline>> {
    use raven_ml::featurize::{OneHotEncoder, Transform};
    if matches!(pipeline.estimator(), Estimator::Mlp(_)) {
        return Ok(None);
    }
    let used_features = pipeline.estimator().used_features();
    // Rebuild steps, possibly narrowing one-hot encoders; collect the kept
    // old-feature indices in order.
    let mut kept_steps: Vec<raven_ml::FeatureStep> = Vec::new();
    let mut kept_old_features: Vec<usize> = Vec::new();
    let mut changed = false;
    for (si, step) in pipeline.steps().iter().enumerate() {
        let (start, end) = pipeline.step_feature_range(si).map_err(OptError::from)?;
        let used_in_step: Vec<usize> = (start..end).filter(|f| used_features.contains(f)).collect();
        if used_in_step.is_empty() {
            changed = true;
            continue; // whole step dropped
        }
        match &step.transform {
            Transform::OneHot(encoder) if used_in_step.len() < end - start => {
                // Narrow to the used categories.
                let cats: Vec<String> = used_in_step
                    .iter()
                    .map(|&f| encoder.categories()[f - start].clone())
                    .collect();
                let narrowed = OneHotEncoder::new(cats).map_err(OptError::from)?;
                kept_steps.push(raven_ml::FeatureStep::new(
                    step.column.clone(),
                    Transform::OneHot(narrowed),
                ));
                kept_old_features.extend(used_in_step);
                changed = true;
            }
            _ => {
                kept_steps.push(step.clone());
                kept_old_features.extend(start..end);
            }
        }
    }
    // A fully constant-folded model uses nothing; keep a minimal first
    // step so the pipeline stays well-formed (its weights are all zero).
    if kept_steps.is_empty() {
        kept_steps.push(pipeline.steps()[0].clone());
        let (start, end) = pipeline.step_feature_range(0).map_err(OptError::from)?;
        kept_old_features.extend(start..end);
    }
    if !changed {
        return Ok(None);
    }
    let feature_map: HashMap<usize, usize> = kept_old_features
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let new_width = kept_old_features.len();

    let estimator = match pipeline.estimator() {
        Estimator::Tree(t) => Estimator::Tree(remap_tree_features(t, &feature_map, new_width)?),
        Estimator::Forest(f) => {
            let trees = f
                .trees()
                .iter()
                .map(|t| remap_tree_features(t, &feature_map, new_width))
                .collect::<Result<Vec<_>>>()?;
            Estimator::Forest(RandomForest::from_trees(trees).map_err(OptError::from)?)
        }
        Estimator::Linear(m) => {
            Estimator::Linear(m.project(&kept_old_features).map_err(OptError::from)?)
        }
        Estimator::Mlp(_) => unreachable!("handled above"),
    };
    Ok(Some(
        Pipeline::new(kept_steps, estimator).map_err(OptError::from)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::featurize::Transform;
    use raven_ml::{FeatureStep, LinearKind};

    fn tree() -> DecisionTree {
        DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 2,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn remap_tree() {
        let map = HashMap::from([(2usize, 0usize)]);
        let t = remap_tree_features(&tree(), &map, 1).unwrap();
        assert_eq!(t.n_features(), 1);
        assert_eq!(t.predict_row(&[2.0]), 1.0);
        assert_eq!(t.predict_row(&[0.5]), 0.0);
        // Missing mapping errors.
        assert!(remap_tree_features(&tree(), &HashMap::new(), 1).is_err());
    }

    #[test]
    fn fold_constants_into_bias() {
        let m = LinearModel::new(vec![2.0, 3.0], 1.0, LinearKind::Regression).unwrap();
        let bounds = vec![Interval::point(10.0), Interval::all()];
        let (folded, n) = fold_linear_constants(&m, &bounds).unwrap();
        assert_eq!(n, 1);
        assert_eq!(folded.bias(), 21.0);
        assert_eq!(folded.weights(), &[0.0, 3.0]);
        // Semantics preserved on satisfying rows.
        assert_eq!(
            folded.predict_row(&[10.0, 5.0]),
            m.predict_row(&[10.0, 5.0])
        );
        assert!(fold_linear_constants(&m, &[Interval::all()]).is_err());
    }

    #[test]
    fn shrink_drops_unused_steps() {
        // 3 identity steps; model only uses feature 1.
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new("a", Transform::Identity),
                FeatureStep::new("b", Transform::Identity),
                FeatureStep::new("c", Transform::Identity),
            ],
            Estimator::Linear(
                LinearModel::new(vec![0.0, 5.0, 0.0], 1.0, LinearKind::Regression).unwrap(),
            ),
        )
        .unwrap();
        let shrunk = shrink_pipeline(&pipeline).unwrap().unwrap();
        assert_eq!(shrunk.input_columns(), vec!["b"]);
        assert_eq!(
            shrunk.predict_raw(&[7.0], 1).unwrap(),
            pipeline.predict_raw(&[9.0, 7.0, 9.0], 1).unwrap()
        );
    }

    #[test]
    fn shrink_tree_pipeline() {
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new("a", Transform::Identity),
                FeatureStep::new("b", Transform::Identity),
                FeatureStep::new("c", Transform::Identity),
            ],
            Estimator::Tree(tree()),
        )
        .unwrap();
        let shrunk = shrink_pipeline(&pipeline).unwrap().unwrap();
        assert_eq!(shrunk.input_columns(), vec!["c"]);
        assert_eq!(
            shrunk.predict_raw(&[3.0], 1).unwrap(),
            pipeline.predict_raw(&[0.0, 0.0, 3.0], 1).unwrap()
        );
    }

    #[test]
    fn shrink_narrows_onehot_to_used_categories() {
        use raven_ml::featurize::OneHotEncoder;
        // one-hot(dest, 4 categories); only 'B' and 'D' have weight.
        let pipeline = Pipeline::new(
            vec![FeatureStep::new(
                "dest",
                Transform::OneHot(
                    OneHotEncoder::new(vec!["A".into(), "B".into(), "C".into(), "D".into()])
                        .unwrap(),
                ),
            )],
            Estimator::Linear(
                LinearModel::new(vec![0.0, 2.0, 0.0, -1.0], 0.5, LinearKind::Regression).unwrap(),
            ),
        )
        .unwrap();
        let shrunk = shrink_pipeline(&pipeline).unwrap().unwrap();
        assert_eq!(shrunk.n_features(), 2);
        let Transform::OneHot(e) = &shrunk.steps()[0].transform else {
            panic!()
        };
        assert_eq!(e.categories(), &["B".to_string(), "D".to_string()]);
        // Predictions preserved for every category, including dropped ones.
        use raven_data::{Column, DataType, RecordBatch, Schema};
        let schema = Schema::from_pairs(&[("dest", DataType::Utf8)]).into_shared();
        let batch = RecordBatch::try_new(schema, vec![Column::from(vec!["A", "B", "C", "D", "Z"])])
            .unwrap();
        assert_eq!(
            shrunk.predict(&batch).unwrap(),
            pipeline.predict(&batch).unwrap()
        );
    }

    #[test]
    fn shrink_noop_when_all_used() {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("a", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        assert!(shrink_pipeline(&pipeline).unwrap().is_none());
    }
}
