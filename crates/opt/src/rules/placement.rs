//! Cost-based kernel placement: choose, per model operator, between
//! classical row-at-a-time scoring, the columnar tree/forest kernel, and
//! the tensor-graph translation.
//!
//! Runs after inlining and NN translation, so by the time it fires the
//! plan carries exactly the model operators that survived those rules:
//! big ensembles the inliner refused (too many nodes) either stayed
//! classical `Predict` or became `TensorPredict`. For each such operator
//! whose estimator is a tree or forest, this rule prices the current
//! strategy against the flattened columnar kernel using the cost model —
//! and, when the serving layer has observed real per-row latencies
//! (`batcher_ewma_*` gauges surfaced as [`ObservedCosts`]), the observed
//! classical cost replaces the static estimate, closing the feedback loop
//! from execution telemetry back into planning.

use crate::context::OptimizerContext;
use crate::cost::{estimate, kernel_row_cost, model_row_cost};
use raven_ir::{ExecutionMode, Plan};
use raven_ml::{Estimator, FlatForest};
use std::sync::Arc;

/// Rewrite tree/forest model operators to `KernelPredict` wherever the
/// cost model says the columnar kernel is the cheapest strategy.
pub fn apply(plan: Plan, ctx: &OptimizerContext<'_>) -> crate::Result<Plan> {
    let params = &ctx.cost_params;
    let out = plan.transform_up(&|node| {
        // Only in-process tree/forest operators are candidates; external
        // modes score in their own runtime and everything else (linear,
        // MLP) has no columnar tree kernel.
        let (input, model, output, current_per_row, current_fixed) = match &node {
            Plan::Predict {
                input,
                model,
                output,
                mode: ExecutionMode::InProcess,
            } => {
                let estimator = model.pipeline.estimator();
                if !matches!(estimator, Estimator::Tree(_) | Estimator::Forest(_)) {
                    return node;
                }
                // Feedback: prefer the observed per-row cost of the
                // classical path over the static estimate when available.
                let static_row =
                    model_row_cost(estimator, params) + model.pipeline.n_features() as f64 * 0.5;
                let per_row = ctx.observed.classical_row_ns.unwrap_or(static_row);
                (input, model, output, per_row, params.engine_switch)
            }
            Plan::TensorPredict {
                input,
                model,
                output,
                ..
            } => {
                let estimator = model.pipeline.estimator();
                if !matches!(estimator, Estimator::Tree(_) | Estimator::Forest(_)) {
                    return node;
                }
                let per_row = model_row_cost(estimator, params) * params.tensor_discount
                    + model.pipeline.n_features() as f64 * 0.25;
                (input, model, output, per_row, params.engine_switch)
            }
            _ => return node,
        };
        // Flattening can fail only for estimators we already filtered
        // out; treat any residual failure as "keep the current plan".
        let Ok(flat) = FlatForest::from_pipeline(&model.pipeline) else {
            return node;
        };
        let (_, rows) = estimate(input, ctx.catalog, params);
        let current = current_fixed + rows * current_per_row;
        let kernel_fixed =
            params.engine_switch + flat.n_nodes() as f64 * params.kernel_setup_per_node;
        let kernel = kernel_fixed + rows * kernel_row_cost(&flat, params);
        if kernel < current {
            Plan::KernelPredict {
                input: input.clone(),
                model: model.clone(),
                flat: Arc::new(flat),
                output: output.clone(),
            }
        } else {
            node
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ObservedCosts;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::ModelRef;
    use raven_ml::featurize::Transform;
    use raven_ml::tree::TreeNode;
    use raven_ml::{DecisionTree, FeatureStep, Pipeline, RandomForest};

    fn catalog(rows: usize) -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "t",
            Table::try_new(
                Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                vec![Column::Float64((0..rows).map(|i| i as f64).collect())],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn deep_tree(depth: usize) -> DecisionTree {
        // A right-leaning chain of `depth` splits over one feature:
        // split at 2d, leaf at 2d+1, next split (or final leaf) at 2d+2.
        let mut chain = Vec::new();
        for d in 0..depth {
            chain.push(TreeNode::Split {
                feature: 0,
                threshold: d as f64,
                left: 2 * d + 1,
                right: 2 * d + 2,
            });
            chain.push(TreeNode::Leaf { value: d as f64 });
        }
        chain.push(TreeNode::Leaf {
            value: depth as f64,
        });
        DecisionTree::from_nodes(chain, 1).unwrap()
    }

    fn forest_predict(cat: &Catalog, trees: usize, depth: usize) -> Plan {
        let forest =
            RandomForest::from_trees((0..trees).map(|_| deep_tree(depth)).collect()).unwrap();
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Forest(forest),
        )
        .unwrap();
        Plan::Predict {
            input: Box::new(Plan::Scan {
                table: "t".into(),
                schema: cat.table("t").unwrap().schema().clone(),
            }),
            model: ModelRef {
                name: "f".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        }
    }

    #[test]
    fn big_forest_on_big_table_gets_kernel() {
        let cat = catalog(10_000);
        let ctx = OptimizerContext::new(&cat);
        let out = apply(forest_predict(&cat, 20, 6), &ctx).unwrap();
        assert!(
            matches!(out, Plan::KernelPredict { .. }),
            "expected kernel placement:\n{out}"
        );
    }

    #[test]
    fn tiny_batch_stays_classical() {
        // One row: the kernel's per-node setup dwarfs any per-row win.
        let cat = catalog(1);
        let ctx = OptimizerContext::new(&cat);
        let plan = forest_predict(&cat, 20, 6);
        let out = apply(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan);
    }

    #[test]
    fn observed_costs_flip_the_decision() {
        // Static estimate says classical is fine on a tiny batch, but the
        // runtime has observed the classical path to be catastrophically
        // slow — the feedback flips placement to the kernel.
        let cat = catalog(1);
        let ctx = OptimizerContext::new(&cat).with_observed(ObservedCosts {
            classical_row_ns: Some(1e9),
        });
        let out = apply(forest_predict(&cat, 20, 6), &ctx).unwrap();
        assert!(
            matches!(out, Plan::KernelPredict { .. }),
            "observed feedback should force kernel:\n{out}"
        );
    }

    #[test]
    fn external_modes_untouched() {
        let cat = catalog(10_000);
        let ctx = OptimizerContext::new(&cat);
        let Plan::Predict {
            input,
            model,
            output,
            ..
        } = forest_predict(&cat, 20, 6)
        else {
            unreachable!()
        };
        let plan = Plan::Predict {
            input,
            model,
            output,
            mode: ExecutionMode::OutOfProcess,
        };
        assert_eq!(apply(plan.clone(), &ctx).unwrap(), plan);
    }

    #[test]
    fn linear_models_have_no_kernel() {
        use raven_ml::{LinearKind, LinearModel};
        let cat = catalog(10_000);
        let ctx = OptimizerContext::new(&cat);
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 0.5, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let plan = Plan::Predict {
            input: Box::new(Plan::Scan {
                table: "t".into(),
                schema: cat.table("t").unwrap().schema().clone(),
            }),
            model: ModelRef {
                name: "lin".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        };
        assert_eq!(apply(plan.clone(), &ctx).unwrap(), plan);
    }
}
