//! Predicate-based model pruning (paper §4.1, data → model).
//!
//! Predicates below a model operator (plus statistics-derived predicates)
//! constrain the model's input domain. Within that domain:
//!
//! * decision-tree branches proven unreachable are removed — the paper's
//!   running example prunes the `pregnant = 0` subtree, improving
//!   prediction time 29%;
//! * one-hot indicator features pinned by a categorical equality
//!   (`dest = 'JFK'`) become constants, folded into a linear model's bias
//!   — the paper reports ~2.1× on the flight-delay logistic regression,
//!   independent of selectivity.
//!
//! Pruning also *enables* model-projection pushdown: features the pruned
//! model no longer touches can be projected out (see
//! [`crate::rules::projection`]).

use crate::constraints::{constraints_below, feature_bounds_for};
use crate::context::OptimizerContext;
use crate::rules::model_utils::fold_linear_constants;
use crate::Result;
use raven_ir::{ModelRef, Plan};
use raven_ml::{Estimator, Pipeline};
use std::cell::RefCell;
use std::sync::Arc;

/// Apply the rule everywhere in the plan.
pub fn apply(plan: Plan, ctx: &OptimizerContext<'_>) -> Result<Plan> {
    let failure: RefCell<Option<crate::OptError>> = RefCell::new(None);
    let out = plan.transform_up(&|node| {
        if failure.borrow().is_some() {
            return node;
        }
        match prune_node(node, ctx) {
            Ok(rewritten) => rewritten,
            Err((orig, e)) => {
                *failure.borrow_mut() = Some(e);
                orig
            }
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Attempt to prune one node; on failure return the original node and the
/// error (so `transform_up` can unwind cleanly).
// The `Err` variant intentionally carries the plan back so the caller can
// restore the un-pruned node on failure; boxing would just move the cost.
#[allow(clippy::result_large_err)]
fn prune_node(
    node: Plan,
    ctx: &OptimizerContext<'_>,
) -> std::result::Result<Plan, (Plan, crate::OptError)> {
    let Plan::Predict {
        input,
        model,
        output,
        mode,
    } = node
    else {
        return Ok(node);
    };
    let rebuild = |model: ModelRef| Plan::Predict {
        input: input.clone(),
        model,
        output: output.clone(),
        mode,
    };

    let constraints = constraints_below(&input, ctx);
    if constraints.is_empty() {
        return Ok(rebuild(model));
    }
    let column_bounds = feature_bounds_for(&model.pipeline, &constraints);
    if column_bounds.is_empty() {
        return Ok(rebuild(model));
    }
    let bounds = match model.pipeline.feature_bounds(&column_bounds) {
        Ok(b) => b,
        Err(e) => return Err((rebuild(model), e.into())),
    };

    let pruned: Option<Pipeline> = match model.pipeline.estimator() {
        Estimator::Tree(t) => match t.prune(&bounds) {
            Ok(p) if p.n_nodes() < t.n_nodes() => {
                match model.pipeline.with_estimator(Estimator::Tree(p)) {
                    Ok(pl) => Some(pl),
                    Err(e) => return Err((rebuild(model), e.into())),
                }
            }
            Ok(_) => None,
            Err(e) => return Err((rebuild(model), e.into())),
        },
        Estimator::Forest(f) => match f.prune(&bounds) {
            Ok(p) if p.n_nodes() < f.n_nodes() => {
                match model.pipeline.with_estimator(Estimator::Forest(p)) {
                    Ok(pl) => Some(pl),
                    Err(e) => return Err((rebuild(model), e.into())),
                }
            }
            Ok(_) => None,
            Err(e) => return Err((rebuild(model), e.into())),
        },
        Estimator::Linear(m) => match fold_linear_constants(m, &bounds) {
            Ok((folded, n)) if n > 0 => {
                match model.pipeline.with_estimator(Estimator::Linear(folded)) {
                    Ok(pl) => Some(pl),
                    Err(e) => return Err((rebuild(model), e.into())),
                }
            }
            Ok(_) => None,
            Err(e) => return Err((rebuild(model), e)),
        },
        Estimator::Mlp(_) => None,
    };

    Ok(match pruned {
        Some(pipeline) => rebuild(ModelRef {
            name: model.name.clone(),
            pipeline: Arc::new(pipeline),
        }),
        None => rebuild(model),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{ExecutionMode, Expr};
    use raven_ml::featurize::{OneHotEncoder, Transform};
    use raven_ml::tree::TreeNode;
    use raven_ml::{DecisionTree, FeatureStep, LinearKind, LinearModel};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "patients",
            Table::try_new(
                Schema::from_pairs(&[
                    ("pregnant", DataType::Float64),
                    ("bp", DataType::Float64),
                    ("age", DataType::Float64),
                ])
                .into_shared(),
                vec![
                    Column::from(vec![1.0, 0.0]),
                    Column::from(vec![120.0, 150.0]),
                    Column::from(vec![30.0, 40.0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "flights",
            Table::try_new(
                Schema::from_pairs(&[("dest", DataType::Utf8)]).into_shared(),
                vec![Column::from(vec!["JFK", "LAX"])],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    /// The Fig.-1 tree as a 3-feature pipeline.
    fn fig1_pipeline() -> Pipeline {
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 4,
                },
                TreeNode::Split {
                    feature: 2,
                    threshold: 35.0,
                    left: 2,
                    right: 3,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 3.0 },
                TreeNode::Split {
                    feature: 1,
                    threshold: 140.0,
                    left: 5,
                    right: 6,
                },
                TreeNode::Leaf { value: 4.0 },
                TreeNode::Leaf { value: 7.0 },
            ],
            3,
        )
        .unwrap();
        Pipeline::new(
            vec![
                FeatureStep::new("pregnant", Transform::Identity),
                FeatureStep::new("bp", Transform::Identity),
                FeatureStep::new("age", Transform::Identity),
            ],
            Estimator::Tree(tree),
        )
        .unwrap()
    }

    fn predict_over(input: Plan, pipeline: Pipeline) -> Plan {
        Plan::Predict {
            input: Box::new(input),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        }
    }

    fn scan(cat: &Catalog, t: &str) -> Plan {
        Plan::Scan {
            table: t.into(),
            schema: cat.table(t).unwrap().schema().clone(),
        }
    }

    fn tree_nodes_of(plan: &Plan) -> usize {
        let mut n = 0;
        plan.visit(&mut |p| {
            if let Plan::Predict { model, .. } = p {
                if let Estimator::Tree(t) = model.pipeline.estimator() {
                    n = t.n_nodes();
                }
            }
        });
        n
    }

    #[test]
    fn filter_prunes_tree_branch() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false; // isolate the filter effect
        let plan = predict_over(
            Plan::Filter {
                input: Box::new(scan(&cat, "patients")),
                predicate: Expr::col("pregnant").eq(Expr::lit(1i64)),
            },
            fig1_pipeline(),
        );
        assert_eq!(tree_nodes_of(&plan), 7);
        let out = apply(plan, &ctx).unwrap();
        assert_eq!(tree_nodes_of(&out), 3, "right subtree only");
    }

    #[test]
    fn stats_prune_without_explicit_filter() {
        // The table only contains bp in [120, 150]; deriving bp <= 150
        // doesn't prune, but a narrower table does.
        let cat = Catalog::new();
        cat.register(
            "patients",
            Table::try_new(
                Schema::from_pairs(&[
                    ("pregnant", DataType::Float64),
                    ("bp", DataType::Float64),
                    ("age", DataType::Float64),
                ])
                .into_shared(),
                vec![
                    Column::from(vec![1.0, 1.0]), // all pregnant
                    Column::from(vec![120.0, 130.0]),
                    Column::from(vec![30.0, 40.0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let ctx = OptimizerContext::new(&cat);
        let plan = predict_over(scan(&cat, "patients"), fig1_pipeline());
        let out = apply(plan, &ctx).unwrap();
        // pregnant=1 constant + bp<=130 → only the bp<=140 leaf remains.
        assert_eq!(tree_nodes_of(&out), 1);
    }

    #[test]
    fn parameterized_predicates_never_prune() {
        // `pregnant = ?` would prune the `pregnant = 0` subtree if the
        // optimizer treated the placeholder as a constant — and the
        // cached template plan would then be wrong for `? = 0`. The
        // constraint extractor must see no constant here.
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        let plan = predict_over(
            Plan::Filter {
                input: Box::new(scan(&cat, "patients")),
                predicate: Expr::col("pregnant")
                    .eq(Expr::typed_param(0, raven_data::DataType::Int64)),
            },
            fig1_pipeline(),
        );
        let out = apply(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan, "no pruning from a parameter");
        assert_eq!(tree_nodes_of(&out), 7, "full tree retained");
    }

    #[test]
    fn no_constraints_no_change() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        let plan = predict_over(scan(&cat, "patients"), fig1_pipeline());
        let out = apply(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan);
    }

    #[test]
    fn categorical_equality_folds_linear_model() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        let pipeline = Pipeline::new(
            vec![FeatureStep::new(
                "dest",
                Transform::OneHot(OneHotEncoder::new(vec!["JFK".into(), "LAX".into()]).unwrap()),
            )],
            Estimator::Linear(
                LinearModel::new(vec![0.5, -0.5], 0.0, LinearKind::Logistic).unwrap(),
            ),
        )
        .unwrap();
        let plan = predict_over(
            Plan::Filter {
                input: Box::new(scan(&cat, "flights")),
                predicate: Expr::col("dest").eq(Expr::lit("JFK")),
            },
            pipeline,
        );
        let out = apply(plan, &ctx).unwrap();
        let mut sparsity = 0.0;
        out.visit(&mut |p| {
            if let Plan::Predict { model, .. } = p {
                if let Estimator::Linear(m) = model.pipeline.estimator() {
                    sparsity = m.sparsity();
                    // Both indicators pinned (JFK=1, LAX=0) → folded.
                    assert_eq!(m.bias(), 0.5);
                }
            }
        });
        assert_eq!(sparsity, 1.0);
    }

    #[test]
    fn pruned_model_agrees_on_satisfying_rows() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        let original = fig1_pipeline();
        let plan = predict_over(
            Plan::Filter {
                input: Box::new(scan(&cat, "patients")),
                predicate: Expr::col("pregnant").eq(Expr::lit(1i64)),
            },
            original.clone(),
        );
        let out = apply(plan, &ctx).unwrap();
        let mut pruned = None;
        out.visit(&mut |p| {
            if let Plan::Predict { model, .. } = p {
                pruned = Some(model.pipeline.clone());
            }
        });
        let pruned = pruned.unwrap();
        for bp in [100.0, 139.9, 140.0, 180.0] {
            for age in [20.0, 50.0] {
                let raw = [1.0, bp, age];
                assert_eq!(
                    pruned.predict_raw(&raw, 1).unwrap(),
                    original.predict_raw(&raw, 1).unwrap()
                );
            }
        }
    }
}
