//! Expression constant folding (the relational half of the paper's
//! "compiler optimizations"; the tensor-graph half lives in
//! `raven_tensor::optimize`).

use crate::context::OptimizerContext;
use crate::Result;
use raven_data::Value;
use raven_ir::{Expr, Plan};

/// Fold constants in all predicates and projections; drop always-true
/// filters.
pub fn apply(plan: Plan, _ctx: &OptimizerContext<'_>) -> Result<Plan> {
    Ok(plan.transform_up(&|node| match node {
        Plan::Filter { input, predicate } => {
            let folded = predicate.fold_constants();
            if folded == Expr::Literal(Value::Bool(true)) {
                *input
            } else {
                Plan::Filter {
                    input,
                    predicate: folded,
                }
            }
        }
        Plan::Project { input, exprs } => Plan::Project {
            input,
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (e.fold_constants(), n))
                .collect(),
        },
        other => other,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::BinOp;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "t",
            Table::try_new(
                Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                vec![Column::from(vec![1.0])],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> Plan {
        Plan::Scan {
            table: "t".into(),
            schema: cat.table("t").unwrap().schema().clone(),
        }
    }

    #[test]
    fn always_true_filter_removed() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(scan(&cat)),
            predicate: Expr::lit(1i64).lt(Expr::lit(2i64)),
        };
        let out = apply(plan, &ctx).unwrap();
        assert!(matches!(out, Plan::Scan { .. }));
    }

    #[test]
    fn arithmetic_folded_in_projection() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Project {
            input: Box::new(scan(&cat)),
            exprs: vec![(
                Expr::binary(
                    BinOp::Multiply,
                    Expr::col("x"),
                    Expr::binary(BinOp::Plus, Expr::lit(2i64), Expr::lit(3i64)),
                ),
                "y".into(),
            )],
        };
        let out = apply(plan, &ctx).unwrap();
        let Plan::Project { exprs, .. } = &out else {
            panic!()
        };
        assert_eq!(exprs[0].0.to_string(), "(x * 5)");
    }

    #[test]
    fn parameters_never_fold() {
        use raven_data::DataType;
        // A parameterized predicate must survive folding untouched: the
        // cached template plan serves every future argument, so nothing
        // about the (unknown) constant may be baked in.
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(scan(&cat)),
            predicate: Expr::typed_param(0, DataType::Float64)
                .gt(Expr::lit(1i64))
                .and(Expr::col("x").lt_eq(Expr::typed_param(1, DataType::Float64))),
        };
        let out = apply(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan, "parameterized predicate must not change");
        assert_eq!(out.parameter_count(), 2);
    }

    #[test]
    fn partial_boolean_simplification() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(scan(&cat)),
            predicate: Expr::lit(true).and(Expr::col("x").gt(Expr::lit(0i64))),
        };
        let out = apply(plan, &ctx).unwrap();
        let Plan::Filter { predicate, .. } = &out else {
            panic!()
        };
        assert_eq!(predicate.to_string(), "(x > 0)");
    }
}
