//! Model inlining (paper §4.2): translate small ML models into relational
//! scalar expressions.
//!
//! A decision tree becomes a nested `CASE WHEN` expression; a linear
//! regression becomes arithmetic. The `Predict` node disappears and the
//! relational engine evaluates the model natively — SQL Server's Froid-
//! style UDF inlining, which the paper measures at ~17× over external
//! scoring for a 300K-row hospital query (Fig. 2(c)).
//!
//! Featurizers inline too: a scaler becomes `(col - mean) / std`; a
//! one-hot indicator becomes `CASE WHEN col = 'cat' THEN 1 ELSE 0 END`.
//! Logistic outputs and MLPs are not inlinable (no `exp` in the relational
//! expression language) and stay model operators.

use crate::context::OptimizerContext;
use crate::error::OptError;
use crate::Result;
use raven_ir::{BinOp, Expr, Plan};
use raven_ml::featurize::Transform;
use raven_ml::tree::TreeNode;
use raven_ml::{DecisionTree, Estimator, LinearKind, Pipeline};
use std::cell::RefCell;

/// Apply model inlining to every eligible `Predict` node.
pub fn apply(plan: Plan, ctx: &OptimizerContext<'_>) -> Result<Plan> {
    let failure: RefCell<Option<OptError>> = RefCell::new(None);
    let out = plan.transform_up(&|node| {
        if failure.borrow().is_some() {
            return node;
        }
        let Plan::Predict {
            input,
            model,
            output,
            mode,
        } = node
        else {
            return node;
        };
        if mode != raven_ir::ExecutionMode::InProcess {
            return Plan::Predict {
                input,
                model,
                output,
                mode,
            };
        }
        let eligible = match model.pipeline.estimator() {
            Estimator::Tree(t) => t.n_nodes() <= ctx.inline_max_tree_nodes,
            Estimator::Linear(m) => m.kind() == LinearKind::Regression,
            _ => false,
        };
        if !eligible {
            return Plan::Predict {
                input,
                model,
                output,
                mode,
            };
        }
        match inline_expr(&model.pipeline, &input) {
            Ok(Some(expr)) => {
                // Project: passthrough of every input column + the score.
                let schema = match input.schema() {
                    Ok(s) => s,
                    Err(e) => {
                        *failure.borrow_mut() = Some(e.into());
                        return Plan::Predict {
                            input,
                            model,
                            output,
                            mode,
                        };
                    }
                };
                let mut exprs: Vec<(Expr, String)> = schema
                    .fields()
                    .iter()
                    .map(|f| (Expr::col(f.name.clone()), f.name.clone()))
                    .collect();
                exprs.push((expr, output));
                Plan::Project { input, exprs }
            }
            Ok(None) => Plan::Predict {
                input,
                model,
                output,
                mode,
            },
            Err(e) => {
                *failure.borrow_mut() = Some(e);
                Plan::Predict {
                    input,
                    model,
                    output,
                    mode,
                }
            }
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Build the scalar expression for a pipeline, or `None` if not inlinable.
pub fn inline_expr(pipeline: &Pipeline, input: &Plan) -> Result<Option<Expr>> {
    let schema = input.schema()?;
    // Per-feature scalar expressions (featurizer inlining).
    let mut feature_exprs: Vec<Expr> = Vec::with_capacity(pipeline.n_features());
    for step in pipeline.steps() {
        // Resolve to the qualified field name visible in the schema.
        let Ok(idx) = schema.index_of(&step.column) else {
            return Ok(None);
        };
        let field = schema.field(idx)?.name.clone();
        match &step.transform {
            Transform::Identity => feature_exprs.push(Expr::col(field)),
            Transform::Scale(s) => feature_exprs.push(Expr::binary(
                BinOp::Divide,
                Expr::binary(BinOp::Minus, Expr::col(field), Expr::lit(s.mean)),
                Expr::lit(s.std),
            )),
            Transform::OneHot(encoder) => {
                for cat in encoder.categories() {
                    feature_exprs.push(Expr::Case {
                        branches: vec![(
                            Expr::col(field.clone()).eq(Expr::lit(cat.as_str())),
                            Expr::lit(1.0f64),
                        )],
                        else_expr: Box::new(Expr::lit(0.0f64)),
                    });
                }
            }
        }
    }

    match pipeline.estimator() {
        Estimator::Tree(tree) => Ok(Some(tree_to_expr(tree, &feature_exprs))),
        Estimator::Linear(m) if m.kind() == LinearKind::Regression => {
            let mut acc = Expr::lit(m.bias());
            for (w, fe) in m.weights().iter().zip(&feature_exprs) {
                if *w == 0.0 {
                    continue; // projection pushdown's arithmetic twin
                }
                acc = Expr::binary(
                    BinOp::Plus,
                    acc,
                    Expr::binary(BinOp::Multiply, Expr::lit(*w), fe.clone()),
                );
            }
            Ok(Some(acc))
        }
        _ => Ok(None),
    }
}

/// Recursive tree → CASE construction.
fn tree_to_expr(tree: &DecisionTree, feature_exprs: &[Expr]) -> Expr {
    fn go(nodes: &[TreeNode], i: usize, feats: &[Expr]) -> Expr {
        match &nodes[i] {
            TreeNode::Leaf { value } => Expr::lit(*value),
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } => Expr::Case {
                branches: vec![(
                    feats[*feature].clone().lt_eq(Expr::lit(*threshold)),
                    go(nodes, *left, feats),
                )],
                else_expr: Box::new(go(nodes, *right, feats)),
            },
        }
    }
    go(tree.nodes(), 0, feature_exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{ExecutionMode, ModelRef};
    use raven_ml::featurize::{OneHotEncoder, StandardScaler};
    use raven_ml::{FeatureStep, LinearModel, Mlp};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "t",
            Table::try_new(
                Schema::from_pairs(&[("bp", DataType::Float64), ("dest", DataType::Utf8)])
                    .into_shared(),
                vec![
                    Column::from(vec![120.0, 150.0]),
                    Column::from(vec!["JFK", "LAX"]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog) -> Plan {
        Plan::Scan {
            table: "t".into(),
            schema: cat.table("t").unwrap().schema().clone(),
        }
    }

    fn stump() -> DecisionTree {
        DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 140.0,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 2.0 },
                TreeNode::Leaf { value: 7.0 },
            ],
            1,
        )
        .unwrap()
    }

    fn predict(cat: &Catalog, pipeline: Pipeline) -> Plan {
        Plan::Predict {
            input: Box::new(scan(cat)),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "stay".into(),
            mode: ExecutionMode::InProcess,
        }
    }

    #[test]
    fn small_tree_inlines_to_case() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("bp", Transform::Identity)],
            Estimator::Tree(stump()),
        )
        .unwrap();
        let out = apply(predict(&cat, pipeline), &ctx).unwrap();
        let Plan::Project { exprs, .. } = &out else {
            panic!("expected inlined projection:\n{out}");
        };
        let (case, name) = exprs.last().unwrap();
        assert_eq!(name, "stay");
        assert_eq!(case.to_string(), "CASE WHEN (bp <= 140) THEN 2 ELSE 7 END");
        // Schema unchanged except the appended output.
        assert_eq!(out.schema().unwrap().names(), vec!["bp", "dest", "stay"]);
    }

    #[test]
    fn large_tree_not_inlined() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.inline_max_tree_nodes = 1;
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("bp", Transform::Identity)],
            Estimator::Tree(stump()),
        )
        .unwrap();
        let plan = predict(&cat, pipeline);
        let out = apply(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan);
    }

    #[test]
    fn scaled_feature_inlines_arithmetic() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let pipeline = Pipeline::new(
            vec![FeatureStep::new(
                "bp",
                Transform::Scale(StandardScaler {
                    mean: 130.0,
                    std: 10.0,
                }),
            )],
            Estimator::Linear(LinearModel::new(vec![2.0], 1.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let out = apply(predict(&cat, pipeline), &ctx).unwrap();
        let Plan::Project { exprs, .. } = &out else {
            panic!()
        };
        assert_eq!(
            exprs.last().unwrap().0.to_string(),
            "(1 + (2 * ((bp - 130) / 10)))"
        );
    }

    #[test]
    fn onehot_tree_inlines_with_equality_cases() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        // Tree over one-hot(dest): splits on indicator feature 1 (LAX).
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 1,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                TreeNode::Leaf { value: 0.0 },
                TreeNode::Leaf { value: 1.0 },
            ],
            2,
        )
        .unwrap();
        let pipeline = Pipeline::new(
            vec![FeatureStep::new(
                "dest",
                Transform::OneHot(OneHotEncoder::new(vec!["JFK".into(), "LAX".into()]).unwrap()),
            )],
            Estimator::Tree(tree),
        )
        .unwrap();
        let out = apply(predict(&cat, pipeline), &ctx).unwrap();
        let Plan::Project { exprs, .. } = &out else {
            panic!()
        };
        let case = exprs.last().unwrap().0.to_string();
        assert!(case.contains("dest = 'LAX'"), "{case}");
    }

    #[test]
    fn logistic_and_mlp_not_inlined() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let logistic = Pipeline::new(
            vec![FeatureStep::new("bp", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Logistic).unwrap()),
        )
        .unwrap();
        let plan = predict(&cat, logistic);
        assert_eq!(apply(plan.clone(), &ctx).unwrap(), plan);

        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| (v > &10.0) as i64 as f64).collect();
        let mlp = Mlp::fit(
            &x,
            1,
            &y,
            &raven_ml::mlp::MlpParams {
                epochs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let plan = predict(
            &cat,
            Pipeline::new(
                vec![FeatureStep::new("bp", Transform::Identity)],
                Estimator::Mlp(mlp),
            )
            .unwrap(),
        );
        assert_eq!(apply(plan.clone(), &ctx).unwrap(), plan);
    }

    #[test]
    fn inlined_expr_matches_reference_predictions() {
        use raven_relational::{ExecOptions, Executor, NoopScorer};
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("bp", Transform::Identity)],
            Estimator::Tree(stump()),
        )
        .unwrap();
        let reference = {
            let batch = cat.table("t").unwrap().batch().clone();
            pipeline.predict(&batch).unwrap()
        };
        let out = apply(predict(&cat, pipeline), &ctx).unwrap();
        let table = Executor::new(&cat, &NoopScorer, ExecOptions::serial())
            .execute(&out)
            .unwrap();
        assert_eq!(
            table.column_by_name("stay").unwrap().f64_values().unwrap(),
            reference.as_slice()
        );
    }
}
