//! Predicate pushdown (classical RA rewrite, paper's "standard DB
//! optimizations").
//!
//! Filters move toward scans: through projections (rewriting column
//! references through the rename map), through joins (conjuncts that
//! touch only one side), and below model operators (conjuncts that do not
//! reference the prediction output) — the last one is what puts the
//! predicate *underneath* the model so predicate-based pruning can see it.

use crate::context::OptimizerContext;
use crate::Result;
use raven_ir::analyze::{conjoin, conjuncts};
use raven_ir::{Expr, Plan};

/// Apply predicate pushdown everywhere (single pass; the driver iterates
/// to fixpoint).
pub fn apply(plan: Plan, _ctx: &OptimizerContext<'_>) -> Result<Plan> {
    Ok(plan.transform_up(&push_filter))
}

fn push_filter(node: Plan) -> Plan {
    let Plan::Filter { input, predicate } = node else {
        return node;
    };
    match *input {
        // Merge adjacent filters into one conjunction.
        Plan::Filter {
            input: inner,
            predicate: inner_pred,
        } => Plan::Filter {
            input: inner,
            predicate: inner_pred.and(predicate),
        },
        // Swap with projections when every referenced column maps to a
        // pure column rename underneath.
        Plan::Project {
            input: inner,
            exprs,
        } => {
            let rewritten = rewrite_through_project(&predicate, &exprs);
            match rewritten {
                Some(pred) => Plan::Project {
                    input: Box::new(push_filter(Plan::Filter {
                        input: inner,
                        predicate: pred,
                    })),
                    exprs,
                },
                None => Plan::Filter {
                    input: Box::new(Plan::Project {
                        input: inner,
                        exprs,
                    }),
                    predicate,
                },
            }
        }
        // Split conjuncts across join sides.
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => {
            let left_schema = left.schema().ok();
            let right_schema = right.schema().ok();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for c in conjuncts(&predicate) {
                let cols = c.referenced_columns();
                let all_in = |schema: &Option<std::sync::Arc<raven_data::Schema>>| {
                    schema
                        .as_ref()
                        .map(|s| cols.iter().all(|c| s.index_of(c).is_ok()))
                        .unwrap_or(false)
                };
                if all_in(&left_schema) {
                    to_left.push(c.clone());
                } else if all_in(&right_schema) {
                    to_right.push(c.clone());
                } else {
                    stay.push(c.clone());
                }
            }
            let mut new_left = *left;
            if !to_left.is_empty() {
                new_left = push_filter(Plan::Filter {
                    input: Box::new(new_left),
                    predicate: conjoin(to_left),
                });
            }
            let mut new_right = *right;
            if !to_right.is_empty() {
                new_right = push_filter(Plan::Filter {
                    input: Box::new(new_right),
                    predicate: conjoin(to_right),
                });
            }
            let joined = Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                left_key,
                right_key,
                kind,
            };
            if stay.is_empty() {
                joined
            } else {
                Plan::Filter {
                    input: Box::new(joined),
                    predicate: conjoin(stay),
                }
            }
        }
        // Below model operators: conjuncts not referencing the output.
        Plan::Predict {
            input: inner,
            model,
            output,
            mode,
        } => {
            let (below, above) = split_on_output(&predicate, &output);
            let mut new_inner = *inner;
            if let Some(below) = below {
                new_inner = push_filter(Plan::Filter {
                    input: Box::new(new_inner),
                    predicate: below,
                });
            }
            let predicted = Plan::Predict {
                input: Box::new(new_inner),
                model,
                output,
                mode,
            };
            match above {
                Some(above) => Plan::Filter {
                    input: Box::new(predicted),
                    predicate: above,
                },
                None => predicted,
            }
        }
        Plan::TensorPredict {
            input: inner,
            model,
            graph,
            output,
            device,
        } => {
            let (below, above) = split_on_output(&predicate, &output);
            let mut new_inner = *inner;
            if let Some(below) = below {
                new_inner = push_filter(Plan::Filter {
                    input: Box::new(new_inner),
                    predicate: below,
                });
            }
            let predicted = Plan::TensorPredict {
                input: Box::new(new_inner),
                model,
                graph,
                output,
                device,
            };
            match above {
                Some(above) => Plan::Filter {
                    input: Box::new(predicted),
                    predicate: above,
                },
                None => predicted,
            }
        }
        // Filters commute with sorts.
        Plan::Sort {
            input: inner,
            column,
            descending,
        } => Plan::Sort {
            input: Box::new(push_filter(Plan::Filter {
                input: inner,
                predicate,
            })),
            column,
            descending,
        },
        other => Plan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Split a predicate into (conjuncts not referencing `output`, conjuncts
/// referencing it). `None` = empty side.
fn split_on_output(predicate: &Expr, output: &str) -> (Option<Expr>, Option<Expr>) {
    let mut below = Vec::new();
    let mut above = Vec::new();
    let out_suffix = output.rsplit_once('.').map(|(_, s)| s).unwrap_or(output);
    for c in conjuncts(predicate) {
        let refs_output = c.referenced_columns().iter().any(|col| {
            let col_suffix = col.rsplit_once('.').map(|(_, s)| s).unwrap_or(col);
            col == output || col_suffix == out_suffix
        });
        if refs_output {
            above.push(c.clone());
        } else {
            below.push(c.clone());
        }
    }
    let wrap = |v: Vec<Expr>| if v.is_empty() { None } else { Some(conjoin(v)) };
    (wrap(below), wrap(above))
}

/// Rewrite a predicate's column references through a projection's rename
/// map; `None` if any referenced column is not a pure rename.
fn rewrite_through_project(predicate: &Expr, exprs: &[(Expr, String)]) -> Option<Expr> {
    // name → underlying column
    let mut map = std::collections::HashMap::new();
    for (e, name) in exprs {
        if let Expr::Column(c) = e {
            map.insert(name.clone(), c.clone());
        }
    }
    let ok = predicate
        .referenced_columns()
        .iter()
        .all(|c| map.contains_key(c));
    if !ok {
        return None;
    }
    Some(predicate.clone().transform(&|e| match e {
        Expr::Column(c) => Expr::Column(map[&c].clone()),
        other => other,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{ExecutionMode, JoinKind, ModelRef};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "a",
            Table::try_new(
                Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)])
                    .into_shared(),
                vec![Column::from(vec![1i64]), Column::from(vec![1.0])],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "b",
            Table::try_new(
                Schema::from_pairs(&[("bid", DataType::Int64), ("z", DataType::Float64)])
                    .into_shared(),
                vec![Column::from(vec![1i64]), Column::from(vec![3.0])],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog, t: &str) -> Plan {
        Plan::Scan {
            table: t.into(),
            schema: cat.table(t).unwrap().schema().clone(),
        }
    }

    #[test]
    fn filter_splits_across_join() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(Plan::Join {
                left: Box::new(scan(&cat, "a")),
                right: Box::new(scan(&cat, "b")),
                left_key: "id".into(),
                right_key: "bid".into(),
                kind: JoinKind::Inner,
            }),
            predicate: Expr::col("x")
                .gt(Expr::lit(1i64))
                .and(Expr::col("z").lt(Expr::lit(5i64))),
        };
        let out = apply(plan, &ctx).unwrap();
        // Both conjuncts pushed to their sides; no filter above the join.
        let Plan::Join { left, right, .. } = &out else {
            panic!("expected join on top, got\n{out}");
        };
        assert!(matches!(**left, Plan::Filter { .. }));
        assert!(matches!(**right, Plan::Filter { .. }));
    }

    #[test]
    fn filter_pushes_through_rename_project() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(Plan::Project {
                input: Box::new(scan(&cat, "a")),
                exprs: vec![(Expr::col("x"), "pi.x".into())],
            }),
            predicate: Expr::col("pi.x").gt(Expr::lit(0i64)),
        };
        let out = apply(plan, &ctx).unwrap();
        let Plan::Project { input, .. } = &out else {
            panic!("project should be on top:\n{out}");
        };
        let Plan::Filter { predicate, .. } = &**input else {
            panic!("filter should be below project");
        };
        assert_eq!(predicate.to_string(), "(x > 0)");
    }

    #[test]
    fn filter_blocked_by_computed_project() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(Plan::Project {
                input: Box::new(scan(&cat, "a")),
                exprs: vec![(
                    Expr::binary(raven_ir::BinOp::Multiply, Expr::col("x"), Expr::lit(2i64)),
                    "x2".into(),
                )],
            }),
            predicate: Expr::col("x2").gt(Expr::lit(0i64)),
        };
        let out = apply(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan, "computed projections block pushdown");
    }

    #[test]
    fn predicate_splits_around_predict() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        // The paper's shape: WHERE d.pregnant = 1 AND p.score > 7.
        let plan = Plan::Filter {
            input: Box::new(Plan::Predict {
                input: Box::new(scan(&cat, "a")),
                model: ModelRef {
                    name: "m".into(),
                    pipeline: Arc::new(pipeline),
                },
                output: "p.score".into(),
                mode: ExecutionMode::InProcess,
            }),
            predicate: Expr::col("x")
                .gt(Expr::lit(0i64))
                .and(Expr::col("p.score").gt(Expr::lit(7i64))),
        };
        let out = apply(plan, &ctx).unwrap();
        // Expect Filter(score) over Predict over Filter(x).
        let Plan::Filter { input, predicate } = &out else {
            panic!("expected filter on top:\n{out}");
        };
        assert!(predicate.to_string().contains("p.score"));
        let Plan::Predict { input: inner, .. } = &**input else {
            panic!("expected predict below");
        };
        assert!(matches!(&**inner, Plan::Filter { predicate, .. }
            if predicate.to_string() == "(x > 0)"));
    }

    #[test]
    fn parameterized_conjuncts_push_like_literals() {
        use raven_data::DataType;
        // `d.x > ?` references only input columns, so it pushes below
        // the model exactly as the literal form does — that placement is
        // what lets one cached template plan skip scoring filtered rows
        // for every future argument.
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        let plan = Plan::Filter {
            input: Box::new(Plan::Predict {
                input: Box::new(scan(&cat, "a")),
                model: ModelRef {
                    name: "m".into(),
                    pipeline: Arc::new(pipeline),
                },
                output: "p.score".into(),
                mode: ExecutionMode::InProcess,
            }),
            predicate: Expr::col("x")
                .gt(Expr::typed_param(0, DataType::Float64))
                .and(Expr::col("p.score").gt(Expr::typed_param(1, DataType::Float64))),
        };
        let out = apply(plan, &ctx).unwrap();
        let Plan::Filter { input, predicate } = &out else {
            panic!("expected output filter on top:\n{out}");
        };
        assert!(predicate.to_string().contains("p.score"));
        let Plan::Predict { input: inner, .. } = &**input else {
            panic!("expected predict below");
        };
        assert!(
            matches!(&**inner, Plan::Filter { predicate, .. }
                if predicate.to_string() == "(x > ?)"),
            "data-side parameterized conjunct pushed below the model:\n{out}"
        );
        assert_eq!(out.parameter_count(), 2);
    }

    #[test]
    fn adjacent_filters_merge() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(Plan::Filter {
                input: Box::new(scan(&cat, "a")),
                predicate: Expr::col("x").gt(Expr::lit(0i64)),
            }),
            predicate: Expr::col("x").lt(Expr::lit(10i64)),
        };
        let out = apply(plan, &ctx).unwrap();
        let Plan::Filter { input, predicate } = &out else {
            panic!()
        };
        assert!(matches!(**input, Plan::Scan { .. }));
        assert!(predicate.to_string().contains("AND"));
    }

    #[test]
    fn filter_commutes_with_sort() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Filter {
            input: Box::new(Plan::Sort {
                input: Box::new(scan(&cat, "a")),
                column: "x".into(),
                descending: false,
            }),
            predicate: Expr::col("x").gt(Expr::lit(0i64)),
        };
        let out = apply(plan, &ctx).unwrap();
        assert!(matches!(out, Plan::Sort { .. }));
    }
}
