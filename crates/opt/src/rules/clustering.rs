//! Model clustering (paper §4.1): offline per-cluster model
//! specialization.
//!
//! k-means clusters a sample of historical data; within a cluster, some
//! features are constant (e.g. all rows share a destination airport).
//! A specialized model per cluster folds those constants (predicate-based
//! pruning on a derived equality), then drops the now-unused features
//! (model-projection pushdown). At inference each row routes to its
//! cluster's compiled model; rows with no precompiled model fall back to
//! the original. The paper measures up to 54% lower inference time on
//! flight-delay (Fig. 2(b)), and correctly predicts *no* benefit on the
//! hospital dataset whose categoricals are already binary.

use crate::rules::model_utils::{fold_linear_constants, shrink_pipeline};
use crate::Result;
use raven_data::RecordBatch;
use raven_ir::{ModelRef, Plan};
use raven_ml::kmeans::{KMeans, KMeansParams};
use raven_ml::tree::Interval;
use raven_ml::{Estimator, Pipeline};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The output of offline clustering: the router plus one specialized
/// pipeline per cluster.
#[derive(Debug, Clone)]
pub struct ClusteredModel {
    /// The router, fitted on the raw encoding of [`Self::route_columns`]
    /// (cheap to evaluate per row: one distance per cluster over a few
    /// dimensions).
    pub kmeans: Arc<KMeans>,
    /// Input columns used for routing.
    pub route_columns: Vec<String>,
    pub models: Vec<Arc<Pipeline>>,
    /// Input columns dropped per cluster (reporting).
    pub dropped_per_cluster: Vec<usize>,
    /// Features folded to constants per cluster (reporting; for one-hot
    /// blocks this counts indicators pinned to 0/1).
    pub folded_per_cluster: Vec<usize>,
    /// Model compile time (the paper reports it as negligible).
    pub compile_time: Duration,
}

/// Encode the routing matrix: one raw value per (row, route column),
/// using the pipeline's own transforms (categorical → index).
pub fn routing_matrix(
    pipeline: &Pipeline,
    batch: &RecordBatch,
    route_columns: &[String],
) -> Result<Vec<f64>> {
    let rows = batch.num_rows();
    let mut cols = Vec::with_capacity(route_columns.len());
    for name in route_columns {
        let step = pipeline
            .steps()
            .iter()
            .find(|s| &s.column == name)
            .ok_or_else(|| {
                crate::OptError::Internal(format!("route column {name} not in pipeline"))
            })?;
        let col = batch
            .column_by_name(name)
            .map_err(|e| crate::OptError::Internal(e.to_string()))?;
        cols.push(
            step.transform
                .encode_raw(col)
                .map_err(crate::OptError::from)?,
        );
    }
    let dim = cols.len();
    let mut out = vec![0.0f64; rows * dim];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out[i * dim + j] = v;
        }
    }
    Ok(out)
}

/// Cluster a sample and compile per-cluster specialized models.
///
/// The router clusters on `route_columns` (typically the high-cardinality
/// categoricals — the paper clusters "in a way that each cluster has
/// specific values for some features"). Within a cluster, one-hot
/// indicators of absent categories are constant zero: their weights fold
/// into the bias / their tree branches prune, and the narrowed encoders
/// featurize far fewer columns — the Fig. 2(b) mechanism.
pub fn specialize_per_cluster(
    pipeline: &Pipeline,
    sample: &RecordBatch,
    k: usize,
    seed: u64,
    route_columns: &[String],
) -> Result<ClusteredModel> {
    let route_columns: Vec<String> = if route_columns.is_empty() {
        pipeline.steps().iter().map(|s| s.column.clone()).collect()
    } else {
        route_columns.to_vec()
    };
    let routing = routing_matrix(pipeline, sample, &route_columns)?;
    let dim = route_columns.len();
    let rows = sample.num_rows();
    let kmeans = KMeans::fit(
        &routing,
        dim,
        &KMeansParams {
            k,
            max_iters: 20,
            seed,
        },
    )
    .map_err(crate::OptError::from)?;

    let start = Instant::now();
    let groups = kmeans
        .partition(&routing, rows)
        .map_err(crate::OptError::from)?;
    let feats = pipeline.featurize(sample).map_err(crate::OptError::from)?;
    let fdim = pipeline.n_features();
    let mut models = Vec::with_capacity(k);
    let mut dropped_per_cluster = Vec::with_capacity(k);
    let mut folded_per_cluster = Vec::with_capacity(k);
    for group in &groups {
        if group.is_empty() {
            models.push(Arc::new(pipeline.clone()));
            dropped_per_cluster.push(0);
            folded_per_cluster.push(0);
            continue;
        }
        // Per-feature constants inside the cluster.
        let mut bounds = vec![Interval::all(); fdim];
        let mut folded = 0usize;
        for (f, b) in bounds.iter_mut().enumerate() {
            let first = feats[group[0] * fdim + f];
            if group.iter().all(|&r| feats[r * fdim + f] == first) {
                *b = Interval::point(first);
                folded += 1;
            }
        }
        let (specialized, dropped) = specialize_with_feature_bounds(pipeline, &bounds)?;
        dropped_per_cluster.push(dropped);
        folded_per_cluster.push(folded);
        models.push(Arc::new(specialized));
    }
    Ok(ClusteredModel {
        kmeans: Arc::new(kmeans),
        route_columns,
        models,
        dropped_per_cluster,
        folded_per_cluster,
        compile_time: start.elapsed(),
    })
}

/// Fold per-*feature* point constants into the estimator and drop unused
/// steps. Returns the specialized pipeline and dropped input columns.
pub fn specialize_with_feature_bounds(
    pipeline: &Pipeline,
    bounds: &[Interval],
) -> Result<(Pipeline, usize)> {
    let folded = match pipeline.estimator() {
        Estimator::Tree(t) => {
            let pruned = t.prune(bounds).map_err(crate::OptError::from)?;
            pipeline
                .with_estimator(Estimator::Tree(pruned))
                .map_err(crate::OptError::from)?
        }
        Estimator::Forest(f) => {
            let pruned = f.prune(bounds).map_err(crate::OptError::from)?;
            pipeline
                .with_estimator(Estimator::Forest(pruned))
                .map_err(crate::OptError::from)?
        }
        Estimator::Linear(m) => {
            let (folded, _) = fold_linear_constants(m, bounds)?;
            pipeline
                .with_estimator(Estimator::Linear(folded))
                .map_err(crate::OptError::from)?
        }
        Estimator::Mlp(_) => pipeline.clone(),
    };
    let before = folded.steps().len();
    match shrink_pipeline(&folded)? {
        Some(shrunk) => {
            let dropped = before - shrunk.steps().len();
            Ok((shrunk, dropped))
        }
        None => Ok((folded, 0)),
    }
}

/// Fold per-column point constants into the pipeline's estimator and drop
/// unused steps. Returns the specialized pipeline and the number of input
/// columns dropped.
pub fn specialize_with_bounds(
    pipeline: &Pipeline,
    column_bounds: &[(String, Interval)],
) -> Result<(Pipeline, usize)> {
    if column_bounds.is_empty() {
        return Ok((pipeline.clone(), 0));
    }
    let bounds = pipeline
        .feature_bounds(column_bounds)
        .map_err(crate::OptError::from)?;
    let folded = match pipeline.estimator() {
        Estimator::Tree(t) => {
            let pruned = t.prune(&bounds).map_err(crate::OptError::from)?;
            pipeline
                .with_estimator(Estimator::Tree(pruned))
                .map_err(crate::OptError::from)?
        }
        Estimator::Forest(f) => {
            let pruned = f.prune(&bounds).map_err(crate::OptError::from)?;
            pipeline
                .with_estimator(Estimator::Forest(pruned))
                .map_err(crate::OptError::from)?
        }
        Estimator::Linear(m) => {
            let (folded, _) = fold_linear_constants(m, &bounds)?;
            pipeline
                .with_estimator(Estimator::Linear(folded))
                .map_err(crate::OptError::from)?
        }
        Estimator::Mlp(_) => pipeline.clone(),
    };
    let before = folded.steps().len();
    match shrink_pipeline(&folded)? {
        Some(shrunk) => {
            let dropped = before - shrunk.steps().len();
            Ok((shrunk, dropped))
        }
        None => Ok((folded, 0)),
    }
}

/// Rewrite a `Predict` node into a `ClusteredPredict` using a prebuilt
/// clustered model.
pub fn to_clustered_plan(plan: Plan, clustered: &ClusteredModel) -> Plan {
    plan.transform_up(&|node| {
        let Plan::Predict {
            input,
            model,
            output,
            ..
        } = node
        else {
            return node;
        };
        Plan::ClusteredPredict {
            input,
            model: ModelRef {
                name: model.name,
                pipeline: model.pipeline,
            },
            kmeans: clustered.kmeans.clone(),
            route_columns: clustered.route_columns.clone(),
            cluster_models: clustered.models.clone(),
            output,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use raven_ml::featurize::{OneHotEncoder, Transform};
    use raven_ml::{FeatureStep, LinearKind, LinearModel};

    /// Flight-like data: two clusters perfectly separated by destination.
    fn sample() -> RecordBatch {
        let n = 60;
        let schema = Schema::from_pairs(&[("dist", DataType::Float64), ("dest", DataType::Utf8)])
            .into_shared();
        let dist: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 100.0 } else { 2000.0 })
            .collect();
        let dest: Vec<&str> = (0..n)
            .map(|i| if i % 2 == 0 { "JFK" } else { "LAX" })
            .collect();
        RecordBatch::try_new(schema, vec![Column::from(dist), Column::from(dest)]).unwrap()
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![
                FeatureStep::new("dist", Transform::Identity),
                FeatureStep::new(
                    "dest",
                    Transform::OneHot(
                        OneHotEncoder::new(vec!["JFK".into(), "LAX".into()]).unwrap(),
                    ),
                ),
            ],
            Estimator::Linear(
                LinearModel::new(vec![0.001, 0.5, -0.5], 0.0, LinearKind::Logistic).unwrap(),
            ),
        )
        .unwrap()
    }

    #[test]
    fn clusters_fold_constant_categoricals() {
        let clustered = specialize_per_cluster(&pipeline(), &sample(), 2, 42, &[]).unwrap();
        assert_eq!(clustered.models.len(), 2);
        // Each cluster has a constant destination → the one-hot step is
        // folded away, leaving only `dist`.
        for (m, dropped) in clustered.models.iter().zip(&clustered.dropped_per_cluster) {
            assert_eq!(
                m.input_columns(),
                vec!["dist"],
                "model kept: {:?}",
                m.input_columns()
            );
            assert_eq!(*dropped, 1);
        }
    }

    #[test]
    fn specialized_models_agree_with_original() {
        let p = pipeline();
        let batch = sample();
        let clustered = specialize_per_cluster(&p, &batch, 2, 42, &[]).unwrap();
        let routing = routing_matrix(&p, &batch, &clustered.route_columns).unwrap();
        let reference = p.predict(&batch).unwrap();
        let assignments = clustered
            .kmeans
            .assign_batch(&routing, batch.num_rows())
            .unwrap();
        for (r, &c) in assignments.iter().enumerate() {
            let spec = &clustered.models[c];
            // Route the row to its specialized model (by named columns).
            let row_batch = batch.slice(r, r + 1).unwrap();
            let pred = spec.predict(&row_batch).unwrap()[0];
            assert!(
                (pred - reference[r]).abs() < 1e-9,
                "row {r}: {pred} vs {}",
                reference[r]
            );
        }
    }

    #[test]
    fn single_cluster_no_specialization_when_varied() {
        // k=1 over varied data: nothing constant, nothing dropped.
        let clustered = specialize_per_cluster(&pipeline(), &sample(), 1, 42, &[]).unwrap();
        assert_eq!(clustered.dropped_per_cluster, vec![0]);
    }

    #[test]
    fn plan_rewrite_to_clustered() {
        use raven_ir::ExecutionMode;
        let p = pipeline();
        let clustered = specialize_per_cluster(&p, &sample(), 2, 42, &[]).unwrap();
        let plan = Plan::Predict {
            input: Box::new(Plan::Scan {
                table: "flights".into(),
                schema: sample().schema().clone(),
            }),
            model: ModelRef {
                name: "delay".into(),
                pipeline: Arc::new(p),
            },
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        };
        let out = to_clustered_plan(plan, &clustered);
        assert!(
            matches!(out, Plan::ClusteredPredict { ref cluster_models, .. }
            if cluster_models.len() == 2)
        );
    }

    #[test]
    fn specialize_with_explicit_bounds() {
        let p = pipeline();
        let (spec, dropped) =
            specialize_with_bounds(&p, &[("dest".to_string(), Interval::point(0.0))]).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(spec.input_columns(), vec!["dist"]);
        // Nothing to do with empty bounds.
        let (same, dropped) = specialize_with_bounds(&p, &[]).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(same, p);
    }
}
