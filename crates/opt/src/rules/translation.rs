//! NN translation as an optimizer rule (paper §4.2): remaining classical
//! `Predict` operators become `TensorPredict` operators executing the
//! pipeline's GEMM translation on the integrated tensor runtime.

use crate::context::OptimizerContext;
use crate::error::OptError;
use crate::Result;
use raven_ir::{ExecutionMode, Plan};
use raven_ml::translate::translate_pipeline;
use std::cell::RefCell;
use std::sync::Arc;

/// Translate every in-process `Predict` into a `TensorPredict`.
pub fn apply(plan: Plan, ctx: &OptimizerContext<'_>) -> Result<Plan> {
    let failure: RefCell<Option<OptError>> = RefCell::new(None);
    let out = plan.transform_up(&|node| {
        if failure.borrow().is_some() {
            return node;
        }
        let Plan::Predict {
            input,
            model,
            output,
            mode,
        } = node
        else {
            return node;
        };
        // Out-of-process / containerized operators stay classical — the
        // external runtime scores the original pipeline.
        if mode != ExecutionMode::InProcess {
            return Plan::Predict {
                input,
                model,
                output,
                mode,
            };
        }
        match translate_pipeline(&model.pipeline) {
            Ok(graph) => Plan::TensorPredict {
                input,
                model,
                graph: Arc::new(graph),
                output,
                device: ctx.device,
            },
            Err(e) => {
                *failure.borrow_mut() = Some(e.into());
                Plan::Predict {
                    input,
                    model,
                    output,
                    mode,
                }
            }
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{Device, ModelRef};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "t",
            Table::try_new(
                Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                vec![Column::from(vec![1.0])],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn predict(cat: &Catalog, mode: ExecutionMode) -> Plan {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 0.5, LinearKind::Logistic).unwrap()),
        )
        .unwrap();
        Plan::Predict {
            input: Box::new(Plan::Scan {
                table: "t".into(),
                schema: cat.table("t").unwrap().schema().clone(),
            }),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode,
        }
    }

    #[test]
    fn inprocess_predict_becomes_tensor() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat).with_device(Device::CpuSingle);
        let out = apply(predict(&cat, ExecutionMode::InProcess), &ctx).unwrap();
        let Plan::TensorPredict { graph, device, .. } = &out else {
            panic!("expected TensorPredict:\n{out}");
        };
        assert!(!graph.nodes.is_empty());
        assert_eq!(*device, Device::CpuSingle);
    }

    #[test]
    fn external_modes_untouched() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        for mode in [ExecutionMode::OutOfProcess, ExecutionMode::Container] {
            let plan = predict(&cat, mode);
            assert_eq!(apply(plan.clone(), &ctx).unwrap(), plan);
        }
    }
}
