//! The transformation rules.

pub mod clustering;
pub mod folding;
pub mod inlining;
pub mod model_utils;
pub mod placement;
pub mod projection;
pub mod pruning;
pub mod pushdown;
pub mod translation;
