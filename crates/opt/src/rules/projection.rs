//! Model-projection pushdown and generic projection pushdown with join
//! elimination (paper §4.1, model → data).
//!
//! Three cooperating rewrites:
//!
//! 1. [`model_projection_pushdown`] — features with zero weight (or
//!    features a pruned tree no longer tests) are dropped *from the
//!    model*: unused feature steps disappear and the estimator is remapped
//!    onto the narrower feature space. Fig. 2(a): ~1.7×/~5.3× on the
//!    41.75%/80.96%-sparse flight-delay models.
//! 2. [`projection_pushdown`] — a classical required-columns pass narrows
//!    scans to what the query and (shrunken) models actually consume.
//! 3. Join elimination (inside the same pass) — when a join's build side
//!    no longer contributes any required column, the join is dropped
//!    (sound under the FK assumption `ctx.assume_fk_joins`; the paper's
//!    example drops the `prenatal_tests` join once pruning removes its
//!    features).

use crate::context::OptimizerContext;
use crate::rules::model_utils::shrink_pipeline;
use crate::Result;
use raven_ir::{Expr, ModelRef, Plan};
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

/// Shrink every model in the plan to its used input columns.
pub fn model_projection_pushdown(plan: Plan, _ctx: &OptimizerContext<'_>) -> Result<Plan> {
    let failure: RefCell<Option<crate::OptError>> = RefCell::new(None);
    let out = plan.transform_up(&|node| {
        if failure.borrow().is_some() {
            return node;
        }
        let Plan::Predict {
            input,
            model,
            output,
            mode,
        } = node
        else {
            return node;
        };
        match shrink_pipeline(&model.pipeline) {
            Ok(Some(shrunk)) => Plan::Predict {
                input,
                model: ModelRef {
                    name: model.name,
                    pipeline: Arc::new(shrunk),
                },
                output,
                mode,
            },
            Ok(None) => Plan::Predict {
                input,
                model,
                output,
                mode,
            },
            Err(e) => {
                *failure.borrow_mut() = Some(e);
                Plan::Predict {
                    input,
                    model,
                    output,
                    mode,
                }
            }
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Required-columns pass: narrows scans, drops dead join sides.
pub fn projection_pushdown(plan: Plan, ctx: &OptimizerContext<'_>) -> Result<Plan> {
    let out = push(plan, None, ctx)?;
    Ok(simplify_projects(out))
}

/// `required = None` means "everything" (at the root).
fn push(
    plan: Plan,
    required: Option<&HashSet<String>>,
    ctx: &OptimizerContext<'_>,
) -> Result<Plan> {
    match plan {
        Plan::Scan { table, schema } => {
            let scan = Plan::Scan {
                table,
                schema: schema.clone(),
            };
            let Some(required) = required else {
                return Ok(scan);
            };
            let keep: Vec<&str> = schema
                .names()
                .into_iter()
                .filter(|n| name_required(n, required))
                .collect();
            if keep.len() == schema.len() || keep.is_empty() {
                return Ok(scan);
            }
            Ok(Plan::Project {
                exprs: keep
                    .iter()
                    .map(|n| (Expr::col(*n), n.to_string()))
                    .collect(),
                input: Box::new(scan),
            })
        }
        Plan::Project { input, exprs } => {
            // Keep only the projections whose output is required.
            let kept: Vec<(Expr, String)> = match required {
                None => exprs,
                Some(req) => {
                    let narrowed: Vec<(Expr, String)> = exprs
                        .iter()
                        .filter(|(_, name)| name_required(name, req))
                        .cloned()
                        .collect();
                    if narrowed.is_empty() {
                        exprs // keep at least the original projection
                    } else {
                        narrowed
                    }
                }
            };
            let mut child_req = HashSet::new();
            for (e, _) in &kept {
                child_req.extend(e.referenced_columns());
            }
            Ok(Plan::Project {
                input: Box::new(push(*input, Some(&child_req), ctx)?),
                exprs: kept,
            })
        }
        Plan::Filter { input, predicate } => {
            let child_req = required.map(|req| {
                let mut r = req.clone();
                r.extend(predicate.referenced_columns());
                r
            });
            Ok(Plan::Filter {
                input: Box::new(push(*input, child_req.as_ref(), ctx)?),
                predicate,
            })
        }
        Plan::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
        } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            // Join elimination: the right side contributes nothing needed.
            if ctx.rules.join_elimination && ctx.assume_fk_joins {
                if let Some(req) = required {
                    let right_contributes = right_schema
                        .names()
                        .iter()
                        .any(|n| *n != right_key && name_required(n, req));
                    if !right_contributes {
                        return push(*left, required, ctx);
                    }
                }
            }
            let split = |schema: &raven_data::Schema, key: &str| -> HashSet<String> {
                let mut r: HashSet<String> = match required {
                    None => schema.names().iter().map(|s| s.to_string()).collect(),
                    Some(req) => schema
                        .names()
                        .iter()
                        .filter(|n| name_required(n, req))
                        .map(|s| s.to_string())
                        .collect(),
                };
                r.insert(key.to_string());
                r
            };
            let lreq = split(&left_schema, &left_key);
            let rreq = split(&right_schema, &right_key);
            Ok(Plan::Join {
                left: Box::new(push(*left, Some(&lreq), ctx)?),
                right: Box::new(push(*right, Some(&rreq), ctx)?),
                left_key,
                right_key,
                kind,
            })
        }
        Plan::Predict {
            input,
            model,
            output,
            mode,
        } => {
            let schema = input.schema()?;
            let mut child_req: HashSet<String> = match required {
                None => schema.names().iter().map(|s| s.to_string()).collect(),
                Some(req) => schema
                    .names()
                    .iter()
                    .filter(|n| name_required(n, req))
                    .map(|s| s.to_string())
                    .collect(),
            };
            // The model's inputs are always required (resolve to the
            // schema's qualified spelling).
            for col in model.pipeline.input_columns() {
                if let Ok(idx) = schema.index_of(col) {
                    child_req.insert(schema.field(idx)?.name.clone());
                }
            }
            Ok(Plan::Predict {
                input: Box::new(push(*input, Some(&child_req), ctx)?),
                model,
                output,
                mode,
            })
        }
        Plan::TensorPredict {
            input,
            model,
            graph,
            output,
            device,
        } => {
            let schema = input.schema()?;
            let mut child_req: HashSet<String> = match required {
                None => schema.names().iter().map(|s| s.to_string()).collect(),
                Some(req) => schema
                    .names()
                    .iter()
                    .filter(|n| name_required(n, req))
                    .map(|s| s.to_string())
                    .collect(),
            };
            for col in model.pipeline.input_columns() {
                if let Ok(idx) = schema.index_of(col) {
                    child_req.insert(schema.field(idx)?.name.clone());
                }
            }
            Ok(Plan::TensorPredict {
                input: Box::new(push(*input, Some(&child_req), ctx)?),
                model,
                graph,
                output,
                device,
            })
        }
        Plan::KernelPredict {
            input,
            model,
            flat,
            output,
        } => {
            let schema = input.schema()?;
            let mut child_req: HashSet<String> = match required {
                None => schema.names().iter().map(|s| s.to_string()).collect(),
                Some(req) => schema
                    .names()
                    .iter()
                    .filter(|n| name_required(n, req))
                    .map(|s| s.to_string())
                    .collect(),
            };
            for col in model.pipeline.input_columns() {
                if let Ok(idx) = schema.index_of(col) {
                    child_req.insert(schema.field(idx)?.name.clone());
                }
            }
            Ok(Plan::KernelPredict {
                input: Box::new(push(*input, Some(&child_req), ctx)?),
                model,
                flat,
                output,
            })
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut child_req: HashSet<String> = group_by.iter().cloned().collect();
            for (_, col, _) in &aggregates {
                child_req.insert(col.clone());
            }
            Ok(Plan::Aggregate {
                input: Box::new(push(*input, Some(&child_req), ctx)?),
                group_by,
                aggregates,
            })
        }
        Plan::Sort {
            input,
            column,
            descending,
        } => {
            let child_req = required.map(|req| {
                let mut r = req.clone();
                r.insert(column.clone());
                r
            });
            Ok(Plan::Sort {
                input: Box::new(push(*input, child_req.as_ref(), ctx)?),
                column,
                descending,
            })
        }
        Plan::Limit { input, fetch } => Ok(Plan::Limit {
            input: Box::new(push(*input, required, ctx)?),
            fetch,
        }),
        Plan::Union { inputs } => Ok(Plan::Union {
            // Union columns are positional; narrowing one side would
            // misalign the other. Pass everything through.
            inputs: inputs
                .into_iter()
                .map(|p| push(p, None, ctx))
                .collect::<Result<Vec<_>>>()?,
        }),
        Plan::ClusteredPredict {
            input,
            model,
            kmeans,
            route_columns,
            cluster_models,
            output,
        } => Ok(Plan::ClusteredPredict {
            input: Box::new(push(*input, None, ctx)?),
            model,
            kmeans,
            route_columns,
            cluster_models,
            output,
        }),
        Plan::Udf {
            input,
            name,
            inputs,
            output,
        } => Ok(Plan::Udf {
            // UDFs are black boxes: conservatively require everything.
            input: Box::new(push(*input, None, ctx)?),
            name,
            inputs,
            output,
        }),
    }
}

/// A schema name satisfies a requirement either exactly or by unqualified
/// suffix in either direction (`pi.age` ↔ `age`).
fn name_required(name: &str, required: &HashSet<String>) -> bool {
    if required.contains(name) {
        return true;
    }
    let suffix = name.rsplit_once('.').map(|(_, s)| s).unwrap_or(name);
    required.iter().any(|r| {
        let rs = r.rsplit_once('.').map(|(_, s)| s).unwrap_or(r);
        rs == suffix
    })
}

/// Remove identity projections and merge stacked column-only projections.
pub fn simplify_projects(plan: Plan) -> Plan {
    plan.transform_up(&|node| {
        let Plan::Project { input, exprs } = node else {
            return node;
        };
        // Identity projection over its input schema?
        if let Ok(schema) = input.schema() {
            let identity = exprs.len() == schema.len()
                && exprs.iter().zip(schema.fields()).all(|((e, name), f)| {
                    matches!(e, Expr::Column(c) if c == &f.name) && name == &f.name
                });
            if identity {
                return *input;
            }
        }
        // Merge Project(Project) when the outer references only columns.
        if let Plan::Project {
            input: inner_input,
            exprs: inner_exprs,
        } = &*input
        {
            let all_cols = exprs.iter().all(|(e, _)| matches!(e, Expr::Column(_)));
            if all_cols {
                let mut merged = Vec::with_capacity(exprs.len());
                let mut ok = true;
                for (e, name) in &exprs {
                    let Expr::Column(c) = e else { unreachable!() };
                    match inner_exprs.iter().find(|(_, n)| n == c) {
                        Some((inner_e, _)) => merged.push((inner_e.clone(), name.clone())),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    return Plan::Project {
                        input: inner_input.clone(),
                        exprs: merged,
                    };
                }
            }
        }
        Plan::Project { input, exprs }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{ExecutionMode, JoinKind};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.register(
            "a",
            Table::try_new(
                Schema::from_pairs(&[
                    ("id", DataType::Int64),
                    ("x", DataType::Float64),
                    ("y", DataType::Float64),
                ])
                .into_shared(),
                vec![
                    Column::from(vec![1i64]),
                    Column::from(vec![1.0]),
                    Column::from(vec![2.0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "b",
            Table::try_new(
                Schema::from_pairs(&[("bid", DataType::Int64), ("z", DataType::Float64)])
                    .into_shared(),
                vec![Column::from(vec![1i64]), Column::from(vec![3.0])],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog, t: &str) -> Plan {
        Plan::Scan {
            table: t.into(),
            schema: cat.table(t).unwrap().schema().clone(),
        }
    }

    fn sparse_pipeline() -> Pipeline {
        // Uses x only; y and z have zero weight.
        Pipeline::new(
            vec![
                FeatureStep::new("x", Transform::Identity),
                FeatureStep::new("y", Transform::Identity),
                FeatureStep::new("z", Transform::Identity),
            ],
            Estimator::Linear(
                LinearModel::new(vec![2.0, 0.0, 0.0], 0.0, LinearKind::Regression).unwrap(),
            ),
        )
        .unwrap()
    }

    fn predict(input: Plan, pipeline: Pipeline) -> Plan {
        Plan::Predict {
            input: Box::new(input),
            model: ModelRef {
                name: "m".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        }
    }

    #[test]
    fn model_shrinks_to_used_columns() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let joined = Plan::Join {
            left: Box::new(scan(&cat, "a")),
            right: Box::new(scan(&cat, "b")),
            left_key: "id".into(),
            right_key: "bid".into(),
            kind: JoinKind::Inner,
        };
        let plan = predict(joined, sparse_pipeline());
        let out = model_projection_pushdown(plan, &ctx).unwrap();
        let mut cols = Vec::new();
        out.visit(&mut |p| {
            if let Plan::Predict { model, .. } = p {
                cols = model
                    .pipeline
                    .input_columns()
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            }
        });
        assert_eq!(cols, vec!["x"]);
    }

    #[test]
    fn scan_narrowed_to_required() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        // SELECT x FROM a → scan should be narrowed to x.
        let plan = Plan::Project {
            input: Box::new(scan(&cat, "a")),
            exprs: vec![(Expr::col("x"), "x".into())],
        };
        let out = projection_pushdown(plan, &ctx).unwrap();
        // After simplification: Project(x) over Scan stays, but the inner
        // pushed project is merged — final schema has just x.
        assert_eq!(out.schema().unwrap().names(), vec!["x"]);
        // And the scan feeds through a narrow projection, not full width.
        let mut narrow = false;
        out.visit(&mut |p| {
            if let Plan::Project { input, exprs } = p {
                if matches!(**input, Plan::Scan { .. }) && exprs.len() == 1 {
                    narrow = true;
                }
            }
        });
        assert!(narrow);
    }

    #[test]
    fn join_eliminated_when_right_unused() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let joined = Plan::Join {
            left: Box::new(scan(&cat, "a")),
            right: Box::new(scan(&cat, "b")),
            left_key: "id".into(),
            right_key: "bid".into(),
            kind: JoinKind::Inner,
        };
        // Only x is required above the join.
        let plan = Plan::Project {
            input: Box::new(joined),
            exprs: vec![(Expr::col("x"), "x".into())],
        };
        let out = projection_pushdown(plan, &ctx).unwrap();
        let mut joins = 0;
        out.visit(&mut |p| {
            if matches!(p, Plan::Join { .. }) {
                joins += 1;
            }
        });
        assert_eq!(joins, 0, "join should be eliminated:\n{out}");
        assert_eq!(out.scanned_tables(), vec!["a"]);
    }

    #[test]
    fn join_kept_without_fk_assumption() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.assume_fk_joins = false;
        let joined = Plan::Join {
            left: Box::new(scan(&cat, "a")),
            right: Box::new(scan(&cat, "b")),
            left_key: "id".into(),
            right_key: "bid".into(),
            kind: JoinKind::Inner,
        };
        let plan = Plan::Project {
            input: Box::new(joined),
            exprs: vec![(Expr::col("x"), "x".into())],
        };
        let out = projection_pushdown(plan, &ctx).unwrap();
        let mut joins = 0;
        out.visit(&mut |p| {
            if matches!(p, Plan::Join { .. }) {
                joins += 1;
            }
        });
        assert_eq!(joins, 1);
    }

    #[test]
    fn shrunk_model_plus_pushdown_drops_join() {
        // End-to-end: model uses only x → model shrink → join elimination.
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let joined = Plan::Join {
            left: Box::new(scan(&cat, "a")),
            right: Box::new(scan(&cat, "b")),
            left_key: "id".into(),
            right_key: "bid".into(),
            kind: JoinKind::Inner,
        };
        let plan = Plan::Project {
            input: Box::new(predict(joined, sparse_pipeline())),
            exprs: vec![(Expr::col("score"), "score".into())],
        };
        let out = model_projection_pushdown(plan, &ctx).unwrap();
        let out = projection_pushdown(out, &ctx).unwrap();
        assert_eq!(out.scanned_tables(), vec!["a"]);
    }

    #[test]
    fn simplify_removes_identity_and_merges() {
        let cat = catalog();
        let inner = Plan::Project {
            input: Box::new(scan(&cat, "a")),
            exprs: vec![
                (Expr::col("id"), "id".into()),
                (Expr::col("x"), "x".into()),
                (Expr::col("y"), "y".into()),
            ],
        };
        // Identity project removed entirely.
        let out = simplify_projects(inner.clone());
        assert!(matches!(out, Plan::Scan { .. }));

        // Stacked projections merged.
        let stacked = Plan::Project {
            input: Box::new(Plan::Project {
                input: Box::new(scan(&cat, "a")),
                exprs: vec![(Expr::col("x"), "alias.x".into())],
            }),
            exprs: vec![(Expr::col("alias.x"), "out".into())],
        };
        let out = simplify_projects(stacked);
        let Plan::Project { input, exprs } = &out else {
            panic!("expected project, got {out}")
        };
        assert!(matches!(**input, Plan::Scan { .. }));
        assert_eq!(exprs[0].1, "out");
    }

    #[test]
    fn aggregate_narrows_child() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat);
        let plan = Plan::Aggregate {
            input: Box::new(scan(&cat, "a")),
            group_by: vec!["id".into()],
            aggregates: vec![(raven_ir::AggFunc::Sum, "x".into(), "sx".into())],
        };
        let out = projection_pushdown(plan, &ctx).unwrap();
        let mut narrowed = false;
        out.visit(&mut |p| {
            if let Plan::Project { exprs, .. } = p {
                if exprs.len() == 2 {
                    narrowed = true; // y dropped
                }
            }
        });
        assert!(narrowed);
    }
}
