//! Optimizer drivers: heuristic (rule order, fixpoint) and cost-based
//! (alternative schedules priced by the cost model).

use crate::context::{OptimizerContext, RuleSet};
use crate::cost::{estimate, CostParams};
use crate::rules;
use crate::Result;
use raven_ir::Plan;

/// Which driver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptimizerMode {
    /// Apply all enabled rules in the paper's order, to a fixpoint.
    #[default]
    Heuristic,
    /// Price a set of alternative schedules and keep the cheapest.
    CostBased,
}

/// What the optimizer did.
#[derive(Debug, Clone, Default)]
pub struct OptimizationReport {
    /// `(rule name, number of fixpoint rounds in which it changed the plan)`.
    pub rule_applications: Vec<(String, usize)>,
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Cost-model estimate before optimization.
    pub cost_before: f64,
    /// Cost-model estimate after optimization.
    pub cost_after: f64,
    /// Alternatives priced (cost-based mode; 1 for heuristic).
    pub alternatives_considered: usize,
}

impl OptimizationReport {
    fn bump(&mut self, rule: &str) {
        if let Some(entry) = self
            .rule_applications
            .iter_mut()
            .find(|(name, _)| name == rule)
        {
            entry.1 += 1;
        } else {
            self.rule_applications.push((rule.to_string(), 1));
        }
    }

    /// Human-readable summary (EXPLAIN output).
    pub fn summary(&self) -> String {
        let rules: Vec<String> = self
            .rule_applications
            .iter()
            .map(|(n, c)| format!("{n}×{c}"))
            .collect();
        format!(
            "cost {:.0} → {:.0} ({} iterations, {} alternatives): [{}]",
            self.cost_before,
            self.cost_after,
            self.iterations,
            self.alternatives_considered,
            rules.join(", ")
        )
    }
}

/// The cross optimizer.
#[derive(Debug, Default)]
pub struct Optimizer {
    pub mode: OptimizerMode,
    pub cost_params: Option<CostParams>,
}

impl Optimizer {
    pub fn heuristic() -> Self {
        Optimizer {
            mode: OptimizerMode::Heuristic,
            cost_params: None,
        }
    }

    pub fn cost_based() -> Self {
        Optimizer {
            mode: OptimizerMode::CostBased,
            cost_params: None,
        }
    }

    /// Optimize a plan.
    pub fn run(
        &self,
        plan: Plan,
        ctx: &OptimizerContext<'_>,
    ) -> Result<(Plan, OptimizationReport)> {
        let params = self.cost_params.unwrap_or_default();
        let cost_before = estimate(&plan, ctx.catalog, &params).0;
        match self.mode {
            OptimizerMode::Heuristic => {
                let mut report = OptimizationReport {
                    cost_before,
                    alternatives_considered: 1,
                    ..Default::default()
                };
                let out = heuristic_fixpoint(plan, ctx, &mut report)?;
                report.cost_after = estimate(&out, ctx.catalog, &params).0;
                Ok((out, report))
            }
            OptimizerMode::CostBased => {
                // Alternative schedules: full, no-inlining (prefer tensor),
                // no-translation (prefer inline/classical), relational-only,
                // nothing.
                let alternatives: Vec<RuleSet> = vec![
                    ctx.rules,
                    RuleSet {
                        model_inlining: false,
                        ..ctx.rules
                    },
                    RuleSet {
                        nn_translation: false,
                        ..ctx.rules
                    },
                    RuleSet::relational_only(),
                    RuleSet::none(),
                ];
                let mut best: Option<(f64, Plan, OptimizationReport)> = None;
                let n = alternatives.len();
                for rules in alternatives {
                    let alt_ctx = OptimizerContext {
                        catalog: ctx.catalog,
                        rules,
                        inline_max_tree_nodes: ctx.inline_max_tree_nodes,
                        device: ctx.device,
                        assume_fk_joins: ctx.assume_fk_joins,
                        cost_params: ctx.cost_params,
                        observed: ctx.observed,
                    };
                    let mut report = OptimizationReport {
                        cost_before,
                        alternatives_considered: n,
                        ..Default::default()
                    };
                    let candidate = heuristic_fixpoint(plan.clone(), &alt_ctx, &mut report)?;
                    let cost = estimate(&candidate, ctx.catalog, &params).0;
                    report.cost_after = cost;
                    if best.as_ref().map(|(c, _, _)| cost < *c).unwrap_or(true) {
                        best = Some((cost, candidate, report));
                    }
                }
                let (_, plan, report) = best.expect("at least one alternative evaluated");
                Ok((plan, report))
            }
        }
    }
}

/// One-call convenience: heuristic optimization.
pub fn optimize(plan: Plan, ctx: &OptimizerContext<'_>) -> Result<(Plan, OptimizationReport)> {
    Optimizer::heuristic().run(plan, ctx)
}

/// The paper's rule order, iterated to a fixpoint:
/// standard folding/pushdown first (so predicates sit right above scans
/// and below models), then data→model pruning, then model→data projection
/// pushdown + join elimination, then the operator transformations
/// (inlining before translation — small trees prefer the relational
/// engine; what remains goes to the tensor runtime).
fn heuristic_fixpoint(
    mut plan: Plan,
    ctx: &OptimizerContext<'_>,
    report: &mut OptimizationReport,
) -> Result<Plan> {
    const MAX_ITERS: usize = 5;
    for _ in 0..MAX_ITERS {
        report.iterations += 1;
        let before = plan.clone();

        if ctx.rules.expr_constant_folding {
            let next = rules::folding::apply(plan.clone(), ctx)?;
            if next != plan {
                report.bump("expr_constant_folding");
                plan = next;
            }
        }
        if ctx.rules.predicate_pushdown {
            let next = rules::pushdown::apply(plan.clone(), ctx)?;
            if next != plan {
                report.bump("predicate_pushdown");
                plan = next;
            }
        }
        if ctx.rules.predicate_model_pruning {
            let next = rules::pruning::apply(plan.clone(), ctx)?;
            if next != plan {
                report.bump("predicate_model_pruning");
                plan = next;
            }
        }
        if ctx.rules.model_projection_pushdown {
            let next = rules::projection::model_projection_pushdown(plan.clone(), ctx)?;
            if next != plan {
                report.bump("model_projection_pushdown");
                plan = next;
            }
        }
        if ctx.rules.projection_pushdown {
            let next = rules::projection::projection_pushdown(plan.clone(), ctx)?;
            if next != plan {
                report.bump("projection_pushdown");
                plan = next;
            }
        }
        if plan == before {
            break;
        }
    }
    // Operator transformations run once, after the logical fixpoint.
    if ctx.rules.model_inlining {
        let next = rules::inlining::apply(plan.clone(), ctx)?;
        if next != plan {
            report.bump("model_inlining");
            plan = next;
        }
    }
    if ctx.rules.nn_translation {
        let next = rules::translation::apply(plan.clone(), ctx)?;
        if next != plan {
            report.bump("nn_translation");
            plan = next;
        }
    }
    // Placement last: it prices whatever model operators survived the
    // transformations above (classical vs columnar kernel vs tensor).
    if ctx.rules.kernel_placement {
        let next = rules::placement::apply(plan.clone(), ctx)?;
        if next != plan {
            report.bump("kernel_placement");
            plan = next;
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Catalog, Column, DataType, Schema, Table};
    use raven_ir::{ExecutionMode, Expr, JoinKind, ModelRef};
    use raven_ml::featurize::Transform;
    use raven_ml::tree::TreeNode;
    use raven_ml::{DecisionTree, Estimator, FeatureStep, Pipeline};
    use std::sync::Arc;

    /// Hospital-like catalog for the running example.
    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let n = 100usize;
        cat.register(
            "patient_info",
            Table::try_new(
                Schema::from_pairs(&[
                    ("id", DataType::Int64),
                    ("pregnant", DataType::Float64),
                    ("age", DataType::Float64),
                ])
                .into_shared(),
                vec![
                    Column::Int64((0..n as i64).collect()),
                    Column::Float64((0..n).map(|i| (i % 2) as f64).collect()),
                    Column::Float64((0..n).map(|i| 20.0 + (i % 50) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "blood_tests",
            Table::try_new(
                Schema::from_pairs(&[("bid", DataType::Int64), ("bp", DataType::Float64)])
                    .into_shared(),
                vec![
                    Column::Int64((0..n as i64).collect()),
                    Column::Float64((0..n).map(|i| 100.0 + (i % 80) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.register(
            "prenatal_tests",
            Table::try_new(
                Schema::from_pairs(&[("pid", DataType::Int64), ("marker", DataType::Float64)])
                    .into_shared(),
                vec![
                    Column::Int64((0..n as i64).collect()),
                    Column::Float64((0..n).map(|i| (i % 7) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    /// Fig.-1 style tree over [pregnant, bp, marker].
    fn fig1_pipeline() -> Pipeline {
        let tree = DecisionTree::from_nodes(
            vec![
                TreeNode::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 4,
                },
                // Not-pregnant branch uses prenatal marker.
                TreeNode::Split {
                    feature: 2,
                    threshold: 3.0,
                    left: 2,
                    right: 3,
                },
                TreeNode::Leaf { value: 1.0 },
                TreeNode::Leaf { value: 3.0 },
                // Pregnant branch uses bp only.
                TreeNode::Split {
                    feature: 1,
                    threshold: 140.0,
                    left: 5,
                    right: 6,
                },
                TreeNode::Leaf { value: 4.0 },
                TreeNode::Leaf { value: 7.0 },
            ],
            3,
        )
        .unwrap();
        Pipeline::new(
            vec![
                FeatureStep::new("pregnant", Transform::Identity),
                FeatureStep::new("bp", Transform::Identity),
                FeatureStep::new("marker", Transform::Identity),
            ],
            Estimator::Tree(tree),
        )
        .unwrap()
    }

    /// The running-example plan: filter(pregnant=1 AND score>6) over
    /// predict over a 3-way join.
    fn running_example(cat: &Catalog) -> Plan {
        let scan = |t: &str| Plan::Scan {
            table: t.into(),
            schema: cat.table(t).unwrap().schema().clone(),
        };
        let joined = Plan::Join {
            left: Box::new(Plan::Join {
                left: Box::new(scan("patient_info")),
                right: Box::new(scan("blood_tests")),
                left_key: "id".into(),
                right_key: "bid".into(),
                kind: JoinKind::Inner,
            }),
            right: Box::new(scan("prenatal_tests")),
            left_key: "id".into(),
            right_key: "pid".into(),
            kind: JoinKind::Inner,
        };
        let predicted = Plan::Predict {
            input: Box::new(joined),
            model: ModelRef {
                name: "duration_of_stay".into(),
                pipeline: Arc::new(fig1_pipeline()),
            },
            output: "length_of_stay".into(),
            mode: ExecutionMode::InProcess,
        };
        Plan::Project {
            input: Box::new(Plan::Filter {
                input: Box::new(predicted),
                predicate: Expr::col("pregnant")
                    .eq(Expr::lit(1i64))
                    .and(Expr::col("length_of_stay").gt(Expr::lit(6i64))),
            }),
            exprs: vec![
                (Expr::col("id"), "id".into()),
                (Expr::col("length_of_stay"), "length_of_stay".into()),
            ],
        }
    }

    #[test]
    fn running_example_end_to_end() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        // Keep trees inlinable.
        let (out, report) = optimize(running_example(&cat), &ctx).unwrap();

        // The pregnant=1 predicate must have pruned the tree, which drops
        // the marker feature, which eliminates the prenatal_tests join.
        assert!(
            !out.scanned_tables().contains(&"prenatal_tests".to_string()),
            "prenatal join should be eliminated:\n{out}"
        );
        // The small pruned tree was inlined: no Predict nodes remain.
        let mut predicts = 0;
        out.visit(&mut |p| {
            if matches!(p, Plan::Predict { .. } | Plan::TensorPredict { .. }) {
                predicts += 1;
            }
        });
        assert_eq!(predicts, 0, "tree should be inlined:\n{out}");
        assert!(report.cost_after < report.cost_before);
        assert!(report
            .rule_applications
            .iter()
            .any(|(n, _)| n == "predicate_model_pruning"));
        assert!(report.summary().contains("model_inlining"));
    }

    #[test]
    fn optimized_plan_preserves_results() {
        use raven_relational::{ExecOptions, Executor, Scorer};
        // Execute original vs optimized and compare.
        struct PipelineScorer;
        impl Scorer for PipelineScorer {
            fn score(
                &self,
                node: &Plan,
                batch: &raven_data::RecordBatch,
            ) -> raven_relational::Result<Vec<f64>> {
                match node {
                    Plan::Predict { model, .. } => model
                        .pipeline
                        .predict(batch)
                        .map_err(|e| raven_relational::ExecError::Scoring(e.to_string())),
                    Plan::TensorPredict { model, .. } => model
                        .pipeline
                        .predict(batch)
                        .map_err(|e| raven_relational::ExecError::Scoring(e.to_string())),
                    other => Err(raven_relational::ExecError::NoScorer(other.label())),
                }
            }
        }
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        let plan = running_example(&cat);
        let (optimized, _) = optimize(plan.clone(), &ctx).unwrap();

        let exec = |p: &Plan| {
            Executor::new(&cat, &PipelineScorer, ExecOptions::serial())
                .execute(p)
                .unwrap()
        };
        let a = exec(&plan);
        let b = exec(&optimized);
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(
            a.column_by_name("id").unwrap(),
            b.column_by_name("id").unwrap()
        );
        assert_eq!(
            a.column_by_name("length_of_stay").unwrap(),
            b.column_by_name("length_of_stay").unwrap()
        );
    }

    #[test]
    fn rules_disabled_means_no_change() {
        let cat = catalog();
        let ctx = OptimizerContext::new(&cat).with_rules(RuleSet::none());
        let plan = running_example(&cat);
        let (out, report) = optimize(plan.clone(), &ctx).unwrap();
        assert_eq!(out, plan);
        assert!(report.rule_applications.is_empty());
    }

    #[test]
    fn cost_based_never_worse_than_heuristic() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        let plan = running_example(&cat);
        let (_, heuristic) = Optimizer::heuristic().run(plan.clone(), &ctx).unwrap();
        let (_, cost_based) = Optimizer::cost_based().run(plan, &ctx).unwrap();
        assert!(cost_based.cost_after <= heuristic.cost_after);
        assert_eq!(cost_based.alternatives_considered, 5);
    }

    #[test]
    fn translation_applies_when_inlining_disabled() {
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        ctx.rules.model_inlining = false;
        // Placement may re-route the translated operator to the columnar
        // kernel; disable it so this test isolates translation.
        ctx.rules.kernel_placement = false;
        let (out, _) = optimize(running_example(&cat), &ctx).unwrap();
        let mut tensor = 0;
        out.visit(&mut |p| {
            if matches!(p, Plan::TensorPredict { .. }) {
                tensor += 1;
            }
        });
        assert_eq!(tensor, 1);
    }

    #[test]
    fn placement_picks_kernel_for_uninlinable_forest() {
        use raven_ml::RandomForest;
        let cat = catalog();
        let mut ctx = OptimizerContext::new(&cat);
        ctx.rules.stats_derived_predicates = false;
        // A forest of identical fig-1 trees is too big to inline…
        let trees: Vec<DecisionTree> = (0..200)
            .map(|_| {
                let Estimator::Tree(t) = fig1_pipeline().estimator().clone() else {
                    unreachable!()
                };
                t
            })
            .collect();
        let pipeline = Pipeline::new(
            vec![
                FeatureStep::new("pregnant", Transform::Identity),
                FeatureStep::new("bp", Transform::Identity),
                FeatureStep::new("marker", Transform::Identity),
            ],
            Estimator::Forest(RandomForest::from_trees(trees).unwrap()),
        )
        .unwrap();
        let plan = Plan::Predict {
            input: Box::new(Plan::Scan {
                table: "patient_info".into(),
                schema: cat.table("patient_info").unwrap().schema().clone(),
            }),
            model: ModelRef {
                name: "forest".into(),
                pipeline: Arc::new(pipeline),
            },
            output: "score".into(),
            mode: ExecutionMode::InProcess,
        };
        let (out, report) = optimize(plan, &ctx).unwrap();
        // …so placement must route it to the columnar kernel: cheaper
        // than both classical row-at-a-time and the tensor translation.
        let mut kernel = 0;
        out.visit(&mut |p| {
            if matches!(p, Plan::KernelPredict { .. }) {
                kernel += 1;
            }
        });
        assert_eq!(kernel, 1, "forest should score on the kernel:\n{out}");
        assert!(report.summary().contains("kernel_placement"));
    }
}
