//! # raven-opt
//!
//! Raven's **Cross Optimizer** (§4 of *"Extending Relational Query
//! Processing with ML Inference"*, CIDR 2020): transformation rules over
//! the unified IR that pass information between data and ML operators, and
//! operator transformations that move work to the most efficient engine.
//!
//! Implemented rules (paper §4.1/§4.2):
//!
//! | Rule | Direction | Module |
//! |---|---|---|
//! | Predicate-based model pruning | data → model | [`rules::pruning`] |
//! | Derived predicates from data statistics | data → model | [`constraints`] |
//! | Model-projection pushdown | model → data | [`rules::projection`] |
//! | Generic projection pushdown + join elimination | RA | [`rules::projection`] |
//! | Predicate pushdown | RA | [`rules::pushdown`] |
//! | Expression constant folding | RA | [`rules::folding`] |
//! | Model inlining (tree → CASE, linear → arithmetic) | MLD → RA | [`rules::inlining`] |
//! | NN translation (pipeline → tensor graph) | MLD → LA | [`rules::translation`] |
//! | Kernel placement (classical vs columnar kernel vs tensor) | cost-based | [`rules::placement`] |
//! | Model clustering (offline specialization) | data → model | [`rules::clustering`] |
//!
//! Two drivers ([`optimizer`]): the paper's *heuristic* optimizer (all
//! rules in a fixed order, to fixpoint) and an initial *cost-based* one
//! that prices a handful of alternative rule schedules with the cost
//! model in [`cost`] and picks the cheapest — including the choice of
//! engine (relational CASE vs tensor runtime vs classical scorer) per
//! model operator.

pub mod constraints;
pub mod context;
pub mod cost;
pub mod determinism;
pub mod error;
pub mod optimizer;
pub mod rules;

pub use context::{OptimizerContext, RuleSet};
pub use cost::{CostParams, ObservedCosts};
pub use determinism::DeterminismReport;
pub use error::OptError;
pub use optimizer::{optimize, OptimizationReport, Optimizer, OptimizerMode};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OptError>;
