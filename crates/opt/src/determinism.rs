//! Determinism analysis: is a plan's result a pure function of its
//! inputs — and therefore safe to memoize?
//!
//! The serving layer's result cache replays a stored table instead of
//! executing, so it may only engage when a *re*-execution of the same
//! optimized plan over the same table/model versions is guaranteed to
//! produce the same bytes. This pass walks the optimized plan and
//! reports every reason that guarantee does not hold:
//!
//! * **Opaque UDFs** ([`raven_ir::Plan::Udf`]). The static analyzer
//!   already failed to translate this code — by construction nothing is
//!   known about it, including whether it reads a clock, a random
//!   source, or external state. Never cacheable.
//! * **External-runtime scoring** ([`raven_ir::Plan::Predict`] with
//!   [`ExecutionMode::OutOfProcess`] or [`ExecutionMode::Container`]).
//!   The model evaluates outside the engine's transaction/version
//!   boundary: the external process or endpoint can be redeployed,
//!   retrained, or stateful without the model store's version counter
//!   moving, so the engine cannot vouch for repeatability.
//!
//! Everything else in the IR is pure: relational operators are
//! deterministic functions of their (versioned) inputs, the expression
//! language has no volatile functions (no `RAND()`, no `NOW()` — if one
//! is ever added, [`expr_volatility`] is the choke point that must learn
//! about it), and in-process scoring — classical, tensor-translated, or
//! clustered — is arithmetic over version-pinned model parameters.
//!
//! Row *order* is also covered: the executor reassembles morsels in
//! input order, the hash aggregate emits groups in first-seen order, and
//! the hash join probes in build order — so a pure plan's output is
//! byte-stable, not just set-stable.
//!
//! ```
//! use raven_opt::determinism::analyze;
//! use raven_ir::{Expr, Plan};
//! use raven_data::{DataType, Schema};
//!
//! let scan = Plan::Scan {
//!     table: "t".into(),
//!     schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
//! };
//! assert!(analyze(&scan).cacheable);
//!
//! let udf = Plan::Udf {
//!     input: Box::new(scan),
//!     name: "mystery".into(),
//!     inputs: vec![],
//!     output: "y".into(),
//! };
//! let report = analyze(&udf);
//! assert!(!report.cacheable);
//! assert!(report.reasons[0].contains("mystery"));
//! ```

use raven_ir::{ExecutionMode, Expr, Plan};

/// The verdict of [`analyze`]: cacheable, or the reasons it is not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeterminismReport {
    /// True when every operator and expression in the plan is pure.
    pub cacheable: bool,
    /// Human-readable reasons, one per offending operator (empty when
    /// cacheable). Surfaced through stats/EXPLAIN so an operator can see
    /// *why* a hot query never hits the result cache.
    pub reasons: Vec<String>,
}

impl DeterminismReport {
    fn deterministic() -> Self {
        DeterminismReport {
            cacheable: true,
            reasons: Vec::new(),
        }
    }
}

/// Volatility of a scalar expression. Every variant in today's IR is
/// pure by construction (no function calls at all, so no `RAND()` /
/// `NOW()`), which makes this a compile-time tripwire rather than a
/// runtime search: the match is exhaustive, so adding a new `Expr`
/// variant fails compilation here and forces a cacheability decision —
/// at which point the implementation must also recurse into operands.
pub fn expr_volatility(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Column(_)
        | Expr::Literal(_)
        | Expr::Parameter { .. }
        | Expr::Binary { .. }
        | Expr::Not(_)
        | Expr::Case { .. } => None,
    }
}

/// Walk `plan` and decide whether its result may be memoized keyed on a
/// [`raven_ir::PlanFingerprint`]. Run this on the *optimized* plan — the
/// one that executes: optimization can rewrite a volatile operator into
/// a pure one (model inlining turns an out-of-process `Predict` into
/// CASE arithmetic), and it is the executed form that matters.
pub fn analyze(plan: &Plan) -> DeterminismReport {
    let mut reasons = Vec::new();
    plan.visit(&mut |node| match node {
        Plan::Udf { name, .. } => {
            reasons.push(format!(
                "opaque UDF '{name}': untranslated code may read volatile state"
            ));
        }
        Plan::Predict { model, mode, .. }
            if matches!(mode, ExecutionMode::OutOfProcess | ExecutionMode::Container) =>
        {
            reasons.push(format!(
                "model '{}' scores in an external runtime ({mode:?}): \
                 results are outside the engine's version control",
                model.name
            ));
        }
        _ => {}
    });
    plan.visit_exprs(&mut |e| {
        if let Some(reason) = expr_volatility(e) {
            reasons.push(reason);
        }
    });
    if reasons.is_empty() {
        DeterminismReport::deterministic()
    } else {
        DeterminismReport {
            cacheable: false,
            reasons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{DataType, Schema};
    use raven_ir::ModelRef;
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    use std::sync::Arc;

    fn scan() -> Plan {
        Plan::Scan {
            table: "t".into(),
            schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
        }
    }

    fn model_ref() -> ModelRef {
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("x", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![1.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        ModelRef {
            name: "m".into(),
            pipeline: Arc::new(pipeline),
        }
    }

    fn predict(mode: ExecutionMode) -> Plan {
        Plan::Predict {
            input: Box::new(scan()),
            model: model_ref(),
            output: "s".into(),
            mode,
        }
    }

    #[test]
    fn relational_and_in_process_plans_are_cacheable() {
        let plan = Plan::Filter {
            input: Box::new(predict(ExecutionMode::InProcess)),
            predicate: Expr::col("s").gt(Expr::lit(1.0f64)),
        };
        let report = analyze(&plan);
        assert!(report.cacheable, "{:?}", report.reasons);
        assert!(report.reasons.is_empty());
    }

    #[test]
    fn external_runtime_scoring_is_not_cacheable() {
        for mode in [ExecutionMode::OutOfProcess, ExecutionMode::Container] {
            let report = analyze(&predict(mode));
            assert!(!report.cacheable, "{mode:?} must not be cacheable");
            assert_eq!(report.reasons.len(), 1);
            assert!(report.reasons[0].contains("external runtime"), "{report:?}");
        }
    }

    #[test]
    fn udf_is_not_cacheable_and_reasons_accumulate() {
        let plan = Plan::Udf {
            input: Box::new(predict(ExecutionMode::Container)),
            name: "mystery".into(),
            inputs: vec!["x".into()],
            output: "y".into(),
        };
        let report = analyze(&plan);
        assert!(!report.cacheable);
        assert_eq!(report.reasons.len(), 2, "{report:?}");
    }

    #[test]
    fn volatility_applies_to_the_executed_plan_not_the_bound_one() {
        // Inlining rewrites an external-runtime Predict into pure CASE
        // arithmetic: the *optimized* plan is what executes, and it is
        // cacheable even though the bound plan was not.
        let inlined = Plan::Project {
            input: Box::new(scan()),
            exprs: vec![(
                Expr::Case {
                    branches: vec![(Expr::col("x").gt(Expr::lit(1.0f64)), Expr::lit(2.0f64))],
                    else_expr: Box::new(Expr::lit(3.0f64)),
                },
                "s".into(),
            )],
        };
        assert!(analyze(&inlined).cacheable);
        assert!(!analyze(&predict(ExecutionMode::OutOfProcess)).cacheable);
    }
}
