//! Optimizer configuration.

use crate::cost::{CostParams, ObservedCosts};
use raven_data::Catalog;
use raven_ir::Device;

/// Per-rule toggles — the knobs the ablation benchmarks sweep.
///
/// `Hash` because the serving layer's prepared-plan cache keys on the
/// rule configuration: the same SQL optimized under different rules is a
/// different prepared plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleSet {
    pub predicate_model_pruning: bool,
    pub stats_derived_predicates: bool,
    pub model_projection_pushdown: bool,
    pub projection_pushdown: bool,
    pub join_elimination: bool,
    pub predicate_pushdown: bool,
    pub expr_constant_folding: bool,
    pub model_inlining: bool,
    pub nn_translation: bool,
    pub kernel_placement: bool,
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::all()
    }
}

impl RuleSet {
    /// Everything on (the paper's full Raven configuration).
    pub fn all() -> RuleSet {
        RuleSet {
            predicate_model_pruning: true,
            stats_derived_predicates: true,
            model_projection_pushdown: true,
            projection_pushdown: true,
            join_elimination: true,
            predicate_pushdown: true,
            expr_constant_folding: true,
            model_inlining: true,
            nn_translation: true,
            kernel_placement: true,
        }
    }

    /// Everything off (the unoptimized baseline).
    pub fn none() -> RuleSet {
        RuleSet {
            predicate_model_pruning: false,
            stats_derived_predicates: false,
            model_projection_pushdown: false,
            projection_pushdown: false,
            join_elimination: false,
            predicate_pushdown: false,
            expr_constant_folding: false,
            model_inlining: false,
            nn_translation: false,
            kernel_placement: false,
        }
    }

    /// Only the classical relational rewrites (what a plain DBMS does).
    pub fn relational_only() -> RuleSet {
        RuleSet {
            projection_pushdown: true,
            predicate_pushdown: true,
            expr_constant_folding: true,
            join_elimination: true,
            ..RuleSet::none()
        }
    }
}

/// Everything rules need to make decisions.
pub struct OptimizerContext<'a> {
    /// Catalog for table statistics (derived predicates, cost model).
    pub catalog: &'a Catalog,
    /// Rule toggles.
    pub rules: RuleSet,
    /// Trees with at most this many nodes are inlined as CASE expressions
    /// rather than NN-translated (the paper: "small decision trees can be
    /// inlined").
    pub inline_max_tree_nodes: usize,
    /// Device NN-translated models run on.
    pub device: Device,
    /// Assume inner equi-joins are key-preserving (FK → PK), enabling join
    /// elimination. Holds for the paper's hospital/flight schemas; the
    /// rule is disabled when false.
    pub assume_fk_joins: bool,
    /// Cost-model parameters the placement rule prices alternatives with.
    pub cost_params: CostParams,
    /// Runtime-observed costs (micro-batcher EWMA gauges) fed back into
    /// placement; defaults to "nothing observed yet".
    pub observed: ObservedCosts,
}

impl<'a> OptimizerContext<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        OptimizerContext {
            catalog,
            rules: RuleSet::all(),
            inline_max_tree_nodes: 512,
            device: Device::CpuParallel,
            assume_fk_joins: true,
            cost_params: CostParams::default(),
            observed: ObservedCosts::default(),
        }
    }

    /// Builder-style rule override.
    pub fn with_rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Builder-style device override.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Builder-style observed-cost feedback.
    pub fn with_observed(mut self, observed: ObservedCosts) -> Self {
        self.observed = observed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_sets() {
        assert!(RuleSet::all().model_inlining);
        assert!(!RuleSet::none().model_inlining);
        let rel = RuleSet::relational_only();
        assert!(rel.predicate_pushdown && !rel.nn_translation);
    }

    #[test]
    fn context_builders() {
        let cat = Catalog::new();
        let ctx = OptimizerContext::new(&cat)
            .with_rules(RuleSet::none())
            .with_device(Device::Gpu);
        assert_eq!(ctx.rules, RuleSet::none());
        assert_eq!(ctx.device, Device::Gpu);
        assert_eq!(ctx.inline_max_tree_nodes, 512);
    }
}
