//! Error type for the optimizer.

use std::fmt;

/// Errors produced during optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// An ML-layer operation (pruning, projection, translation) failed.
    Ml(String),
    /// IR-level failure.
    Ir(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Ml(msg) => write!(f, "ml error during optimization: {msg}"),
            OptError::Ir(msg) => write!(f, "ir error during optimization: {msg}"),
            OptError::Internal(msg) => write!(f, "internal optimizer error: {msg}"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<raven_ml::MlError> for OptError {
    fn from(e: raven_ml::MlError) -> Self {
        OptError::Ml(e.to_string())
    }
}

impl From<raven_ir::IrError> for OptError {
    fn from(e: raven_ir::IrError) -> Self {
        OptError::Ir(e.to_string())
    }
}

impl From<raven_data::DataError> for OptError {
    fn from(e: raven_data::DataError) -> Self {
        OptError::Ir(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: OptError = raven_ir::IrError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("unknown column"));
    }
}
