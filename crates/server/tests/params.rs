//! Integration tests for parameterized prepared statements: the
//! end-to-end acceptance scenario (a workload of queries differing only
//! in literal constants pays parse → bind → optimize exactly once), the
//! `QueryParams` wire path, and a property test that normalization is
//! result-preserving.

use proptest::prelude::*;
use raven_data::Value;
use raven_datagen::{hospital, train};
use raven_server::{NetConfig, RavenClient, RavenServer, ServerConfig, ServerError, ServerState};
use std::sync::Arc;
use std::time::Duration;

fn hospital_state(rows: usize, config: ServerConfig) -> Arc<ServerState> {
    let state = Arc::new(ServerState::new(config));
    let data = hospital::generate(rows, 42);
    data.register(state.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    state.store_model("duration_of_stay", model).unwrap();
    state
}

fn literal_sql(age: i64, stay: f64) -> String {
    format!(
        "WITH data AS (\
           SELECT * FROM patient_info AS pi \
           JOIN blood_tests AS bt ON pi.id = bt.id \
           JOIN prenatal_tests AS pt ON bt.id = pt.id)\
         SELECT d.id, p.length_of_stay \
         FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
         WITH (length_of_stay FLOAT) AS p \
         WHERE d.age > {age} AND p.length_of_stay > {stay}"
    )
}

const TEMPLATE: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.age > ? AND p.length_of_stay > ?";

fn sorted_ids(table: &raven_data::Table) -> Vec<i64> {
    let mut ids = table
        .column_by_name("d.id")
        .unwrap()
        .i64_values()
        .unwrap()
        .to_vec();
    ids.sort_unstable();
    ids
}

/// The acceptance criterion: N queries that differ ONLY in their literal
/// constants run through one parse → bind → optimize, asserted on the
/// plan-cache counters — and each still sees its own constants.
#[test]
fn constant_workload_optimizes_once() {
    const N: i64 = 40;
    let state = hospital_state(500, ServerConfig::for_tests());
    let mut rows_seen = Vec::new();
    for i in 0..N {
        let sql = literal_sql(20 + i, 4.0 + (i % 7) as f64);
        let result = state.execute(&sql).unwrap();
        rows_seen.push(result.table.num_rows());
    }
    let stats = state.plan_cache_stats();
    assert_eq!(
        stats.preparations, 1,
        "one optimization for {N} constant variants: {stats}"
    );
    assert_eq!(stats.hits, (N - 1) as u64);
    // The template counters tell the same story.
    let snap = state.stats();
    assert_eq!(snap.normalized, N as u64);
    assert_eq!(snap.template_hits, (N - 1) as u64);
    // The constants were not baked in: tighter predicates → fewer rows.
    let loose = state.execute(&literal_sql(20, 0.0)).unwrap();
    let tight = state.execute(&literal_sql(90, 50.0)).unwrap();
    assert!(loose.table.num_rows() > 0);
    assert_eq!(tight.table.num_rows(), 0);
    assert!(loose.table.num_rows() >= rows_seen.iter().copied().max().unwrap());
}

/// Normalization must be result-preserving: the same literal query on a
/// normalizing server and on an exact-text server returns identical
/// rows.
#[test]
fn normalized_results_match_exact_text_results() {
    let normalizing = hospital_state(300, ServerConfig::for_tests());
    let exact = hospital_state(
        300,
        ServerConfig {
            normalize_parameters: false,
            ..ServerConfig::for_tests()
        },
    );
    for (age, stay) in [(20, 4.0), (45, 6.5), (70, 2.0), (30, 7.25)] {
        let sql = literal_sql(age, stay);
        let a = normalizing.execute(&sql).unwrap();
        let b = exact.execute(&sql).unwrap();
        assert_eq!(sorted_ids(&a.table), sorted_ids(&b.table), "{sql}");
    }
    // The exact-text server prepared every distinct text; the
    // normalizing one prepared a single template.
    assert_eq!(normalizing.plan_cache_stats().preparations, 1);
    assert_eq!(exact.plan_cache_stats().preparations, 4);
}

/// A fractional literal compared against an Int64 column must survive
/// normalization: the binder types the placeholder Int64 (from the
/// column), the extracted constant is Float64, and substitution keeps
/// the Float64 — identical rows to the literal query.
#[test]
fn fractional_literal_against_int_column_normalizes() {
    let state = hospital_state(300, ServerConfig::for_tests());
    // `pregnant` is Int64; 0.5 and 1 must both work and agree with the
    // non-normalizing baseline.
    for predicate in ["pregnant > 0.5", "pregnant = 1", "pregnant < 0.5"] {
        let sql = format!("SELECT id FROM patient_info WHERE {predicate}");
        let served = state.execute(&sql).unwrap();
        let baseline = state.session().query(&sql).unwrap();
        assert_eq!(
            served.table.num_rows(),
            baseline.table.num_rows(),
            "{predicate}"
        );
        assert!(served.table.num_rows() > 0, "{predicate} matched no rows");
    }
}

/// SQL that already carries `?` placeholders is not re-normalized (the
/// positional indices would scramble against extracted constants), and
/// `prepare` on a hand-written template warms exactly the cache entry
/// `serve_with_params` hits — one preparation total.
#[test]
fn prepare_template_then_query_params_shares_one_entry() {
    let state = hospital_state(300, ServerConfig::for_tests());
    let (hit, _) = {
        let (prepared, hit) = state.prepare(TEMPLATE).unwrap();
        assert_eq!(prepared.param_count, 2);
        (hit, prepared)
    };
    assert!(!hit, "first prepare misses");
    assert_eq!(state.plan_cache_stats().preparations, 1);
    let reply = state
        .serve_with_params(TEMPLATE, &[Value::Int64(30), Value::Float64(5.0)], None)
        .unwrap();
    assert!(reply.cache_hit, "QueryParams hits the prepared entry");
    assert_eq!(
        state.plan_cache_stats().preparations,
        1,
        "no second optimization"
    );
}

/// `serve_with_params` (the `QueryParams` path, minus the socket):
/// template + typed values, with typed arity/type errors.
#[test]
fn serve_with_params_validates_arity_and_types() {
    let state = hospital_state(300, ServerConfig::for_tests());
    let ok = state
        .serve_with_params(TEMPLATE, &[Value::Int64(30), Value::Float64(5.0)], None)
        .unwrap();
    let literal = state.execute(&literal_sql(30, 5.0)).unwrap();
    assert_eq!(sorted_ids(&ok.table), sorted_ids(&literal.table));

    // Wrong arity: typed BadRequest, counted as an error.
    let err = state
        .serve_with_params(TEMPLATE, &[Value::Int64(30)], None)
        .unwrap_err();
    assert!(
        matches!(&err, ServerError::BadRequest(m) if m.contains("2 parameter")),
        "{err}"
    );
    // Wrong type: Utf8 into a Float64 slot.
    let err = state
        .serve_with_params(
            TEMPLATE,
            &[Value::Utf8("x".into()), Value::Float64(5.0)],
            None,
        )
        .unwrap_err();
    assert!(matches!(err, ServerError::Execution(_)), "{err}");
}

/// The full wire path: `QueryParams` over TCP returns results identical
/// to the equivalent literal query, sharing one prepared template.
#[test]
fn query_params_over_tcp_matches_literal_query() {
    let state = hospital_state(400, ServerConfig::for_tests());
    let server = RavenServer::bind(
        state,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            max_connections: 8,
            poll_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut client = RavenClient::connect(server.local_addr()).unwrap();

    for (age, stay) in [(25i64, 4.0f64), (40, 6.0), (65, 3.5)] {
        let literal = client.query(&literal_sql(age, stay)).unwrap();
        let parameterized = client
            .query_params(
                TEMPLATE,
                vec![Value::Int64(age), Value::Float64(stay)],
                Some(Duration::from_secs(30)),
            )
            .unwrap();
        assert_eq!(
            sorted_ids(&literal.table),
            sorted_ids(&parameterized.table),
            "age > {age}, stay > {stay}"
        );
    }
    // Everything after the very first request rode the same template.
    let stats = client.stats().unwrap();
    assert_eq!(stats.preparations, 1, "{stats:?}");
    assert_eq!(stats.normalized, 3, "one per literal query");
    // Arity errors arrive as typed BadRequest frames.
    let err = client
        .query_params(TEMPLATE, vec![Value::Int64(30)], None)
        .unwrap_err();
    assert!(matches!(err, ServerError::BadRequest(_)), "{err}");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for random constants, the normalized (template +
    /// params) execution returns exactly the rows of the original
    /// constant query executed without any normalization or caching.
    #[test]
    fn normalization_roundtrips_to_literal_results(
        age in 15i64..90,
        stay in 0.0f64..10.0,
    ) {
        let state = hospital_state(200, ServerConfig::for_tests());
        let sql = literal_sql(age, stay);
        // Baseline: the plain session path (no cache, no normalization).
        let baseline = state.session().query(&sql).unwrap();
        // Normalized serving path.
        let served = state.execute(&sql).unwrap();
        prop_assert_eq!(sorted_ids(&baseline.table), sorted_ids(&served.table));
        // Explicit template path.
        let explicit = state
            .serve_with_params(TEMPLATE, &[Value::Int64(age), Value::Float64(stay)], None)
            .unwrap();
        prop_assert_eq!(sorted_ids(&baseline.table), sorted_ids(&explicit.table));
    }
}
