//! SLO-aware micro-batching through the public serving surface:
//! per-request deadlines, admit-or-shed at enqueue, expired-while-queued
//! shedding, per-tenant batch policies, and the exact reconciliation of
//! every request into one outcome bucket
//! (`requests == scored + bad_arity + shed + expired`).

use proptest::prelude::*;
use raven_server::{
    adaptive_flush_window, BatchConfig, BatcherStats, ServerConfig, ServerError, ServerState,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn linear_model(weights: &[f64]) -> raven_ml::Pipeline {
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
    let steps = (0..weights.len())
        .map(|i| FeatureStep::new(format!("f{i}"), Transform::Identity))
        .collect();
    Pipeline::new(
        steps,
        Estimator::Linear(LinearModel::new(weights.to_vec(), 0.0, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

/// Poll a tenant's batcher stats until `predicate` holds — the worker
/// sheds expired requests at its next flush, shortly after the caller's
/// own wait already timed out — or fail after 5 s.
fn wait_for_stats(
    server: &ServerState,
    tenant: &str,
    predicate: impl Fn(&BatcherStats) -> bool,
) -> BatcherStats {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = server
            .tenant(tenant)
            .expect("tenant exists")
            .batcher_stats();
        if predicate(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "batcher stats never converged: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn deadline_outcomes_reconcile_exactly() {
    let server = Arc::new(ServerState::new(ServerConfig::for_tests()));
    // A deliberately long fixed window so a tight-deadline request
    // reliably expires *while queued* rather than being scored.
    let tenant = "slo";
    server
        .tenant_with_batch(tenant, BatchConfig::fixed(64, Duration::from_millis(100)))
        .unwrap();
    server
        .store_model_in(tenant, "m", linear_model(&[2.0]))
        .unwrap();

    // Scored: no deadline, waits out the window, succeeds.
    assert_eq!(
        server
            .score_row_with_deadline_in(tenant, "m", vec![3.0], None)
            .unwrap(),
        6.0
    );
    // Bad arity: individually rejected, typed.
    assert!(matches!(
        server.score_row_with_deadline_in(tenant, "m", vec![1.0, 2.0], None),
        Err(ServerError::BadRequest(_))
    ));
    // Expired while queued: 5 ms of slack against a 100 ms window. The
    // cold-start cost prediction is tiny (one warm flush), so the
    // request is admitted — then sheds typed at flush time, after the
    // caller's own recv_timeout already returned typed.
    let err = server
        .score_row_with_deadline_in(tenant, "m", vec![1.0], Some(Duration::from_millis(5)))
        .unwrap_err();
    assert!(
        matches!(err, ServerError::DeadlineExceeded(_)),
        "queued-past-deadline must reject typed, got {err:?}"
    );
    let stats = wait_for_stats(&server, tenant, |s| s.expired == 1);
    assert_eq!(
        stats.batched_rows, 1,
        "the expired row must never reach the scorer"
    );

    // Shed at enqueue: teach the cost model that an invocation takes
    // 50 ms, then offer 1 ms of slack — a predicted miss, rejected
    // before it can occupy a queue slot.
    let shard = server.tenant(tenant).unwrap();
    shard
        .metrics()
        .gauge("batcher_ewma_invocation_us")
        .set(50_000.0);
    let err = server
        .score_row_with_deadline_in(tenant, "m", vec![1.0], Some(Duration::from_millis(1)))
        .unwrap_err();
    assert!(
        matches!(err, ServerError::DeadlineExceeded(ref m) if m.contains("shed at enqueue")),
        "predicted miss must shed at enqueue, got {err:?}"
    );

    // Exact reconciliation: every request landed in exactly one bucket.
    let stats = wait_for_stats(&server, tenant, |s| {
        s.requests == s.batched_rows + s.bad_arity + s.shed + s.expired + s.failed
    });
    assert_eq!(stats.requests, 4);
    assert_eq!(
        (
            stats.batched_rows,
            stats.bad_arity,
            stats.shed,
            stats.expired,
            stats.failed
        ),
        (1, 1, 1, 1, 0)
    );

    // The outcomes are visible on the metrics surface, per tenant and in
    // the cross-tenant aggregate.
    let per_tenant = server.metrics_snapshot(tenant).unwrap();
    assert_eq!(per_tenant.counters["batcher_shed_total"], 1);
    assert_eq!(per_tenant.counters["batcher_expired_total"], 1);
    assert_eq!(per_tenant.counters["batcher_bad_arity_total"], 1);
    assert_eq!(per_tenant.gauges["batcher_max_batch"], 1.0);
    let aggregate = server.metrics_snapshot("").unwrap();
    assert_eq!(aggregate.counters["batcher_shed_total"], 1);
    assert_eq!(aggregate.counters["batcher_expired_total"], 1);
    let text = server.metrics_text(tenant).unwrap();
    assert!(
        text.contains("raven_batcher_shed_total{tenant=\"slo\"} 1"),
        "Prometheus rendering must carry the shed counter: {text}"
    );
    // The stats display carries the new outcome buckets too.
    let rendered = shard.snapshot().to_string();
    assert!(rendered.contains("1 shed, 1 expired"), "{rendered}");
}

#[test]
fn per_tenant_batch_policies_coexist() {
    let server = Arc::new(ServerState::new(ServerConfig::for_tests()));
    // One latency-critical tenant on a tight fixed window, one
    // throughput tenant on an adaptive window with a 100 µs floor.
    server
        .tenant_with_batch("rt", BatchConfig::fixed(8, Duration::from_micros(50)))
        .unwrap();
    server
        .tenant_with_batch(
            "bulk",
            BatchConfig::adaptive(64, Duration::from_micros(100), Duration::from_millis(2)),
        )
        .unwrap();
    for tenant in ["rt", "bulk"] {
        server
            .store_model_in(tenant, "m", linear_model(&[1.0]))
            .unwrap();
        for i in 0..4 {
            assert_eq!(
                server.score_row_in(tenant, "m", vec![i as f64]).unwrap(),
                i as f64
            );
        }
    }
    let rt = server.tenant("rt").unwrap().batcher_stats();
    let bulk = server.tenant("bulk").unwrap().batcher_stats();
    // Only the adaptive tenant makes window-sizing decisions; its chosen
    // window respects the configured floor.
    assert_eq!(rt.window_micros, 0.0);
    assert!(
        bulk.window_micros >= 100.0,
        "adaptive window must respect its floor: {bulk:?}"
    );
    // The live decision is a registry series (`batcher_window_us`).
    let snap = server.metrics_snapshot("bulk").unwrap();
    assert!(snap.gauges["batcher_window_us"] >= 100.0);
    // And both tenants reconcile: everything scored, nothing shed.
    for stats in [rt, bulk] {
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batched_rows, 4);
        assert_eq!(
            stats.shed + stats.expired + stats.bad_arity + stats.failed,
            0
        );
    }
}

#[test]
fn default_deadline_applies_to_point_scores() {
    // With admission.default_deadline configured, a plain score_row_in
    // call is deadline-bound even though the caller named none.
    let mut config = ServerConfig::for_tests();
    config.admission.default_deadline = Some(Duration::from_secs(30));
    config.batch = BatchConfig::default();
    let server = Arc::new(ServerState::new(config));
    server.store_model("m", linear_model(&[1.0])).unwrap();
    // A roomy default deadline scores normally...
    assert_eq!(
        server
            .score_row_with_deadline("m", vec![5.0], None)
            .unwrap(),
        5.0
    );
    // ...while an explicit zero-slack deadline sheds immediately.
    let err = server
        .score_row_with_deadline("m", vec![5.0], Some(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, ServerError::DeadlineExceeded(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The adaptive window never escapes its configured clamp, for any
    /// EWMA cost readings (including degenerate NaN/negative/huge ones),
    /// any queue depth, and any deadline slack.
    #[test]
    fn adaptive_window_stays_within_clamp(
        min_us in 0u64..5_000,
        span_us in 0u64..10_000,
        pending in 0usize..512,
        has_deadline in 0u8..2,
        slack_us in 0u64..1_000_000,
        ewma_invocation in prop_oneof![
            Just(0.0),
            Just(f64::NAN),
            Just(-7.0),
            Just(f64::INFINITY),
            0.0..1e9,
        ],
        ewma_row in prop_oneof![Just(0.0), Just(f64::NAN), Just(-1.0), 0.0..1e6],
    ) {
        let min = Duration::from_micros(min_us);
        let max = Duration::from_micros(min_us + span_us);
        let slack = (has_deadline == 1).then(|| Duration::from_micros(slack_us));
        let window = adaptive_flush_window(min, max, pending, slack, ewma_invocation, ewma_row);
        prop_assert!(window >= min, "window {window:?} below floor {min:?}");
        prop_assert!(window <= max, "window {window:?} above ceiling {max:?}");
    }
}
