//! Differential equivalence: the pipelined v6 protocol against the
//! serial pre-v6 protocol, over a live listener.
//!
//! The oracle is a serial client pinned to protocol v5 — one frame in
//! flight, monolithic `Rows` replies, the exact wire behavior every
//! peer got before pipelining existed. The candidate is the v6 path:
//! interleaved pipelined requests whose results stream back as bounded
//! `RowsChunk` frames. For every workload the reassembled tables must
//! be identical to the oracle's, request/reply counts must reconcile,
//! and the server's own counters must agree with what the clients saw.

use raven_data::Value;
use raven_datagen::{hospital, train};
use raven_server::{
    NetConfig, PipelinedClient, RavenClient, RavenServer, ServerConfig, ServerState,
};
use std::sync::Arc;
use std::time::Duration;

const HOSPITAL_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

const PARAM_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE p.length_of_stay > ?";

fn hospital_state(rows: usize) -> Arc<ServerState> {
    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let data = hospital::generate(rows, 42);
    data.register(state.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    state.store_model("duration_of_stay", model).unwrap();
    state
}

/// A listener with deliberately small chunks so streamed results span
/// several `RowsChunk` frames even on modest tables.
fn spawn(state: Arc<ServerState>, chunk_rows: usize) -> RavenServer {
    RavenServer::bind(
        state,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 32,
            poll_interval: Duration::from_millis(10),
            max_inflight_per_conn: 16,
            chunk_rows,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral listener")
}

/// The tentpole differential: K parameterized queries with distinct
/// results, run three ways — serial v5 oracle, serial v6 (streamed),
/// and pipelined v6 (interleaved, out-of-order completion). All three
/// must produce identical tables, and the reply-to-request matching
/// must hold even though the pipelined replies interleave.
#[test]
fn pipelined_results_match_the_serial_v5_oracle() {
    const K: usize = 12;

    let server = spawn(hospital_state(600), 7);
    let addr = server.local_addr();
    let thresholds: Vec<f64> = (0..K).map(|i| 3.0 + i as f64 * 0.5).collect();

    // Oracle: the pre-pipelining protocol, one frame in flight.
    let mut oracle_client = RavenClient::connect(addr).unwrap().at_version(5);
    let oracle: Vec<_> = thresholds
        .iter()
        .map(|&t| {
            let reply = oracle_client
                .query_params(PARAM_SQL, vec![Value::Float64(t)], None)
                .unwrap();
            assert_eq!(reply.chunks, 0, "a v5 reply is a monolithic Rows frame");
            reply.table
        })
        .collect();
    // The workload is non-trivial and the thresholds genuinely
    // differentiate results, or the differential proves nothing.
    assert!(oracle[0].num_rows() > 0);
    assert!(oracle.windows(2).any(|w| w[0] != w[1]));

    // Serial v6: same requests, streamed replies.
    let mut serial_v6 = RavenClient::connect(addr).unwrap();
    for (i, &t) in thresholds.iter().enumerate() {
        let reply = serial_v6
            .query_params(PARAM_SQL, vec![Value::Float64(t)], None)
            .unwrap();
        assert_eq!(
            reply.table, oracle[i],
            "streamed v6 result diverged from the v5 oracle at threshold {t}"
        );
        let rows = reply.table.num_rows();
        assert_eq!(
            reply.chunks,
            rows.div_ceil(7).max(1),
            "chunk count must cover {rows} rows at 7 rows per chunk"
        );
    }

    // Pipelined v6: all K in flight on one connection, replies in
    // whatever order the pool finishes them.
    let mut pipelined = PipelinedClient::connect(addr).unwrap();
    let ids: Vec<u32> = thresholds
        .iter()
        .map(|&t| {
            pipelined
                .submit_params(PARAM_SQL, vec![Value::Float64(t)], None)
                .unwrap()
        })
        .collect();
    assert_eq!(pipelined.in_flight(), K);
    let replies = pipelined.drain().unwrap();
    assert_eq!(pipelined.in_flight(), 0);
    assert_eq!(replies.len(), K, "every request must get exactly one reply");
    for (i, (id, reply)) in replies.into_iter().enumerate() {
        assert_eq!(id, ids[i], "drain returns replies keyed by request id");
        let reply = reply.unwrap();
        assert_eq!(
            reply.table, oracle[i],
            "pipelined result diverged from the v5 oracle"
        );
        assert!(reply.chunks >= 1, "v6 replies always stream");
    }

    // The server's counters reconcile with what the clients saw:
    // 3 × K queries, no errors, every admission accounted for.
    let stats = RavenClient::connect(addr).unwrap().stats().unwrap();
    assert_eq!(stats.queries, (3 * K) as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.admitted, stats.queries);
    server.shutdown();
}

/// The pre-v6 compat matrix over a live socket: v3, v4, and v5 peers on
/// the same listener all get the same rows the v6 peer gets — older
/// versions lose tenancy (v3) and streaming (all three), never
/// correctness.
#[test]
fn every_supported_version_sees_identical_results() {
    let server = spawn(hospital_state(400), 16);
    let addr = server.local_addr();

    let expected = RavenClient::connect(addr)
        .unwrap()
        .query(HOSPITAL_SQL)
        .unwrap()
        .table;
    assert!(expected.num_rows() > 0);
    for version in 3..=5u8 {
        let mut client = RavenClient::connect(addr).unwrap().at_version(version);
        let reply = client.query(HOSPITAL_SQL).unwrap();
        assert_eq!(reply.chunks, 0, "pre-v6 replies never stream");
        assert_eq!(
            reply.table, expected,
            "protocol v{version} diverged from v6"
        );
    }
    server.shutdown();
}

/// The PR-4 `Arc::try_unwrap` regression, streamed: a result-cache hit
/// serves a table shared between the cache and any concurrent readers,
/// so the server must encode chunks straight from the shared table (no
/// exclusive-ownership assumption) and the client must reassemble into
/// a fresh single-owner table. Several pipelined connections hitting
/// the same cached result concurrently make the sharing real.
#[test]
fn result_cache_hits_stream_shared_tables_correctly() {
    const CONNS: usize = 4;
    const REPEATS: usize = 6;

    let server = spawn(hospital_state(500), 5);
    let addr = server.local_addr();

    // Warm the result cache (first execution is the miss).
    let warm = RavenClient::connect(addr)
        .unwrap()
        .query(HOSPITAL_SQL)
        .unwrap();
    assert!(warm.chunks >= 1);
    let expected = warm.table;

    // Hammer the cached entry from several pipelined connections at
    // once: every streamed reply reassembles to the same table.
    let handles: Vec<_> = (0..CONNS)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = PipelinedClient::connect(addr).unwrap();
                for _ in 0..REPEATS {
                    client.submit(HOSPITAL_SQL, None).unwrap();
                }
                for (_, reply) in client.drain().unwrap() {
                    let reply = reply.unwrap();
                    assert_eq!(
                        reply.table, expected,
                        "shared cached table must stream chunk-exact"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("pipelined reader must not deadlock");
    }

    let stats = RavenClient::connect(addr).unwrap().stats().unwrap();
    assert_eq!(stats.queries, (1 + CONNS * REPEATS) as u64);
    assert!(
        stats.result_hits >= (CONNS * REPEATS) as u64,
        "repeats must be served from the shared result cache \
         (hits: {})",
        stats.result_hits
    );
    assert_eq!(stats.errors, 0);
    server.shutdown();
}

/// An empty result still streams — one schema-bearing empty chunk plus
/// the trailer — and reassembles into the same empty table the oracle
/// returns.
#[test]
fn empty_results_stream_a_schema_bearing_chunk() {
    let server = spawn(hospital_state(300), 8);
    let addr = server.local_addr();
    // A threshold beyond any prediction: zero rows pass.
    let none = vec![Value::Float64(1.0e9)];

    let mut oracle = RavenClient::connect(addr).unwrap().at_version(5);
    let expected = oracle
        .query_params(PARAM_SQL, none.clone(), None)
        .unwrap()
        .table;
    assert_eq!(expected.num_rows(), 0);

    let mut v6 = RavenClient::connect(addr).unwrap();
    let reply = v6.query_params(PARAM_SQL, none, None).unwrap();
    assert_eq!(reply.chunks, 1, "empty result = exactly one empty chunk");
    assert_eq!(reply.table, expected, "schema must survive the stream");
    server.shutdown();
}
