//! Property tests for [`raven_ir::PlanFingerprint`] as the serving layer
//! actually computes it: over normalized templates and extracted
//! parameters, across independently-built servers.
//!
//! The contracts under test:
//! * same template + same bound params ⇒ same fingerprint — even when
//!   the SQL spelling differs (whitespace, comments, literal forms like
//!   `4.0` vs `4.00`), and even across two separate server processes'
//!   worth of state (no per-process randomness);
//! * differing params ⇒ differing fingerprints (no false sharing);
//! * differing query shape ⇒ differing fingerprints;
//! * differing *tenant* ⇒ differing fingerprints, even for identical
//!   SQL, params, and dependency versions (two tenants may hold
//!   same-named objects with different contents).

use proptest::prelude::*;
use raven_datagen::{hospital, train};
use raven_ir::{FingerprintBuilder, PlanFingerprint};
use raven_server::normalize::normalize;
use raven_server::{ServerConfig, ServerState, DEFAULT_TENANT};

fn hospital_server() -> ServerState {
    let server = ServerState::new(ServerConfig::for_tests());
    let data = hospital::generate(120, 7);
    data.register(server.catalog()).unwrap();
    let model = train::hospital_tree(&data, 5).unwrap();
    server.store_model("duration_of_stay", model).unwrap();
    server
}

/// Fingerprint a literal SQL text the way the serving layer does:
/// normalize to (template, params), prepare the template, hash tenant +
/// plan + params + dependency versions.
fn fingerprint_in(server: &ServerState, tenant: &str, sql: &str) -> PlanFingerprint {
    let normalized = normalize(sql).expect("workload SQL must lex");
    let shard = server.tenant(tenant).expect("tenant");
    let (prepared, _) = shard.prepare(&normalized.template).expect("prepare");
    let mut builder = FingerprintBuilder::new()
        .tenant(tenant)
        .plan(&prepared.plan)
        .params(&normalized.params);
    for model in &prepared.model_deps {
        builder = builder.dependency("model", model, shard.store().latest_version(model) as u64);
    }
    for table in &prepared.table_deps {
        builder = builder.dependency(
            "table",
            table,
            shard.catalog().generation(table).unwrap_or(0),
        );
    }
    builder.finish()
}

fn fingerprint_of(server: &ServerState, sql: &str) -> PlanFingerprint {
    fingerprint_in(server, DEFAULT_TENANT, sql)
}

fn spelling_variants(age: i64, stay: f64) -> [String; 3] {
    let join = "SELECT * FROM patient_info AS pi \
                JOIN blood_tests AS bt ON pi.id = bt.id \
                JOIN prenatal_tests AS pt ON bt.id = pt.id";
    [
        // Canonical.
        format!(
            "WITH data AS ({join})\
             SELECT d.id, p.stay FROM PREDICT(MODEL = 'duration_of_stay', \
             DATA = data AS d) WITH (stay FLOAT) AS p \
             WHERE d.age > {age} AND p.stay > {stay:?}"
        ),
        // Whitespace-mangled.
        format!(
            "WITH data AS ({join})\n\
             SELECT   d.id ,\n\tp.stay FROM PREDICT( MODEL='duration_of_stay', \
             DATA = data AS d )\nWITH (stay FLOAT) AS p \
             WHERE  d.age>{age}   AND p.stay   > {stay:?}"
        ),
        // Different literal spelling of the same values (trailing zeros
        // extend the decimal form without changing the parsed value).
        format!(
            "WITH data AS ({join})\
             SELECT d.id, p.stay FROM PREDICT(MODEL = 'duration_of_stay', \
             DATA = data AS d) WITH (stay FLOAT) AS p \
             WHERE d.age > {age} AND p.stay > {stay:?}00"
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spelling-insensitivity and cross-server stability: every textual
    /// variant of one (template, params) pair lands on one fingerprint,
    /// and an independently constructed server computes the same one.
    #[test]
    fn same_template_same_params_same_fingerprint(
        age in 18i64..80,
        stay in 1.0f64..9.0,
    ) {
        let server = hospital_server();
        let variants = spelling_variants(age, stay);
        let fps: Vec<PlanFingerprint> =
            variants.iter().map(|sql| fingerprint_of(&server, sql)).collect();
        prop_assert_eq!(fps[0], fps[1], "whitespace changed the fingerprint");
        prop_assert_eq!(fps[0], fps[2], "literal spelling changed the fingerprint");

        // A second server, built from scratch the same way, agrees —
        // the fingerprint has no per-process or per-instance randomness.
        let other = hospital_server();
        prop_assert_eq!(
            fps[0],
            fingerprint_of(&other, &variants[0]),
            "fingerprint not stable across server instances"
        );
    }

    /// No false sharing: different parameter values (or a different
    /// query shape) always produce different fingerprints.
    #[test]
    fn differing_params_differ(
        age in 18i64..80,
        stay in 1.0f64..9.0,
        age_delta in 1i64..10,
    ) {
        let server = hospital_server();
        let base = fingerprint_of(&server, &spelling_variants(age, stay)[0]);
        let other_age = fingerprint_of(
            &server,
            &spelling_variants(age + age_delta, stay)[0],
        );
        prop_assert_ne!(base, other_age, "age {} vs {}", age, age + age_delta);
        let other_stay = fingerprint_of(
            &server,
            &spelling_variants(age, stay + 0.25)[0],
        );
        prop_assert_ne!(base, other_stay);
        // Same constants, different shape.
        let shape = fingerprint_of(
            &server,
            &format!("SELECT id FROM patient_info WHERE age > {age}"),
        );
        prop_assert_ne!(base, shape);
    }

    /// Tenant qualification: identical SQL, identical bound params,
    /// identical dependency versions — but different tenants — must
    /// never collide. Two tenants are built from the *same* generator
    /// seed so their plans, parameter vectors, and version numbers all
    /// match; only the tenant dimension separates the keys.
    #[test]
    fn identical_queries_in_different_tenants_never_collide(
        age in 18i64..80,
        stay in 1.0f64..9.0,
        tenant_index in 0usize..4,
    ) {
        let tenants = ["team-a", "team-b", "staging", "prod"];
        let tenant = tenants[tenant_index];
        let other = tenants[(tenant_index + 1) % tenants.len()];
        let server = ServerState::new(ServerConfig::for_tests());
        for t in [tenant, other] {
            let shard = server.tenant(t).unwrap();
            let data = hospital::generate(120, 7); // same seed ⇒ same versions
            data.register(shard.catalog()).unwrap();
            shard
                .store_model("duration_of_stay", train::hospital_tree(&data, 5).unwrap())
                .unwrap();
        }
        let sql = &spelling_variants(age, stay)[0];
        let a = fingerprint_in(&server, tenant, sql);
        let b = fingerprint_in(&server, other, sql);
        prop_assert_ne!(
            a, b,
            "tenants {} and {} collided on identical SQL/params/versions",
            tenant, other
        );
        // And the fingerprint stays deterministic per tenant.
        prop_assert_eq!(a, fingerprint_in(&server, tenant, sql));
    }
}

/// Version sensitivity end to end: the same SQL fingerprints differently
/// once a referenced model or table moves, and identically once it is
/// queried again without intervening mutations.
#[test]
fn versions_move_the_fingerprint() {
    let server = hospital_server();
    let sql = &spelling_variants(30, 4.0)[0];
    let before = fingerprint_of(&server, sql);
    assert_eq!(before, fingerprint_of(&server, sql), "idempotent re-read");

    let data = hospital::generate(120, 7);
    let retrained = train::hospital_tree(&data, 6).unwrap();
    server.store_model("duration_of_stay", retrained).unwrap();
    let after_model = fingerprint_of(&server, sql);
    assert_ne!(before, after_model, "model version must move the key");

    server.replace_table("patient_info", data.patient_info.clone());
    let after_table = fingerprint_of(&server, sql);
    assert_ne!(
        after_model, after_table,
        "table generation must move the key"
    );
}
