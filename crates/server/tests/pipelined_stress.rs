//! Release-mode pipelined stress: 32 connections, each keeping the
//! full 16-request in-flight budget occupied, against a warm cached
//! workload. Run ignored by default (CI runs it explicitly, in release,
//! under a generous timeout):
//!
//! ```text
//! cargo test --release -p raven-server --test pipelined_stress -- --ignored
//! ```

use raven_data::Value;
use raven_datagen::{hospital, train};
use raven_server::{
    NetConfig, PipelinedClient, RavenClient, RavenServer, ServerConfig, ServerState,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const PARAM_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE p.length_of_stay > ?";

/// 32 connections × 16 in-flight × 8 waves: every reply reassembles to
/// the table its parameter predicts, out-of-order completion
/// notwithstanding, and the server's counters reconcile exactly.
#[test]
#[ignore = "stress dimensions are sized for release mode; CI runs it explicitly"]
fn pipelined_fleet_stays_correct_at_full_budget() {
    const CONNS: usize = 32;
    const INFLIGHT: usize = 16;
    const WAVES: usize = 8;
    // A small parameter space on purpose: heavy result-cache sharing is
    // the hard case (many streams over the same shared tables).
    const THRESHOLDS: [f64; 4] = [3.0, 5.0, 6.0, 7.0];

    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let data = hospital::generate(2_000, 42);
    data.register(state.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    state.store_model("duration_of_stay", model).unwrap();
    let server = RavenServer::bind(
        state,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_connections: CONNS + 4,
            poll_interval: Duration::from_millis(10),
            max_inflight_per_conn: INFLIGHT,
            chunk_rows: 64,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral listener");
    let addr = server.local_addr();

    // Oracle tables, one per threshold, via the serial v5 protocol.
    let mut oracle_client = RavenClient::connect(addr).unwrap().at_version(5);
    let oracle: Vec<_> = THRESHOLDS
        .iter()
        .map(|&t| {
            oracle_client
                .query_params(PARAM_SQL, vec![Value::Float64(t)], None)
                .unwrap()
                .table
        })
        .collect();
    assert!(oracle.iter().any(|t| t.num_rows() > 0));

    let barrier = Arc::new(Barrier::new(CONNS));
    let handles: Vec<_> = (0..CONNS)
        .map(|conn_idx| {
            let barrier = barrier.clone();
            let oracle = oracle.clone();
            std::thread::spawn(move || {
                let mut client = PipelinedClient::connect(addr).unwrap();
                client
                    .set_reply_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                barrier.wait();
                let mut served = 0usize;
                for wave in 0..WAVES {
                    // Fill the budget, remembering which threshold each
                    // id asked for.
                    let mut asked = std::collections::HashMap::new();
                    for k in 0..INFLIGHT {
                        let which = (conn_idx + wave + k) % THRESHOLDS.len();
                        let id = client
                            .submit_params(PARAM_SQL, vec![Value::Float64(THRESHOLDS[which])], None)
                            .unwrap();
                        asked.insert(id, which);
                    }
                    for (id, reply) in client.drain().unwrap() {
                        let which = asked.remove(&id).expect("reply to an unknown id");
                        let reply = reply.unwrap();
                        assert_eq!(
                            reply.table, oracle[which],
                            "conn {conn_idx} wave {wave}: wrong result for its id"
                        );
                        served += 1;
                    }
                    assert!(asked.is_empty(), "every submitted id must be answered");
                }
                served
            })
        })
        .collect();
    let total: usize = handles
        .into_iter()
        .map(|h| h.join().expect("stress connection must not deadlock"))
        .sum();
    assert_eq!(total, CONNS * INFLIGHT * WAVES);

    let stats = RavenClient::connect(addr).unwrap().stats().unwrap();
    assert_eq!(stats.queries, (THRESHOLDS.len() + total) as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.admitted, stats.queries);
    assert!(
        stats.result_hits > 0,
        "a 4-template workload at this volume must share results"
    );
    server.shutdown();
}
