//! The reactor's cached-result fast path ([`ServerState::try_serve_cached_in`]):
//! when it declines, when it commits, and — the contract the wire-level
//! equivalence and stress suites lean on — that a committed fast-path
//! query is counter-for-counter identical to a pooled result-cache hit.

use raven_data::Value;
use raven_datagen::hospital;
use raven_server::{ServerConfig, ServerState};

const POINT_SQL: &str = "SELECT id, age FROM patient_info WHERE id < 16";

fn warm_state() -> ServerState {
    let state = ServerState::new(ServerConfig::default());
    let data = hospital::generate(1_000, 42);
    data.register(state.catalog()).unwrap();
    state
}

/// Cold caches decline; a warm result cache commits with the same table
/// the pooled path served, flagged as a double (plan + result) hit.
#[test]
fn fast_path_declines_cold_and_commits_warm() {
    let state = warm_state();
    assert!(
        state
            .try_serve_cached_in("default", POINT_SQL, None, usize::MAX)
            .is_none(),
        "cold caches must decline"
    );
    let warm = state.serve_in("default", POINT_SQL, None).unwrap();
    assert!(!warm.result_cache_hit);
    let fast = state
        .try_serve_cached_in("default", POINT_SQL, None, usize::MAX)
        .expect("warm caches must commit");
    assert!(fast.cache_hit && fast.result_cache_hit);
    assert_eq!(fast.table, warm.table);
}

/// Every counter a pooled result-cache hit would touch moves by exactly
/// the same amount for a committed fast-path query: queries, admitted
/// (both rings), plan hits, result hits. An abandoned probe (here: a
/// reply-size budget of zero bytes) moves nothing.
#[test]
fn fast_path_accounting_matches_pooled_hit() {
    let state = warm_state();
    state.serve_in("default", POINT_SQL, None).unwrap();

    let before = state.stats();
    let quota_before = state.default_tenant().quota_stats();
    // Declined probe: max_bytes = 0 can never fit the reply.
    assert!(state
        .try_serve_cached_in("default", POINT_SQL, None, 0)
        .is_none());
    let mid = state.stats();
    assert_eq!(
        mid.queries, before.queries,
        "an abandoned probe must count nothing"
    );
    assert_eq!(mid.admission.admitted, before.admission.admitted);
    assert_eq!(mid.plan_cache.hits, before.plan_cache.hits);
    assert_eq!(mid.result_cache.hits, before.result_cache.hits);

    state
        .try_serve_cached_in("default", POINT_SQL, None, usize::MAX)
        .expect("warm commit");
    let after = state.stats();
    let quota_after = state.default_tenant().quota_stats();
    assert_eq!(after.queries, before.queries + 1);
    assert_eq!(after.admission.admitted, before.admission.admitted + 1);
    assert_eq!(after.plan_cache.hits, before.plan_cache.hits + 1);
    assert_eq!(after.result_cache.hits, before.result_cache.hits + 1);
    assert_eq!(after.errors, before.errors);
    assert_eq!(
        quota_after.admitted,
        quota_before.admitted + 1,
        "the tenant ring's admitted counter moves too"
    );
    // Both permits were released: a full pooled serve still succeeds.
    state.serve_in("default", POINT_SQL, None).unwrap();
}

/// The parameterized probe matches templates against the same canonical
/// plan-cache entry the pooled path uses, and declines on an arity
/// mismatch instead of masking the typed error.
#[test]
fn fast_path_params_share_the_pooled_cache_entry() {
    let state = warm_state();
    let template = "SELECT id, age FROM patient_info WHERE id < ?";
    let params = vec![Value::Int64(16)];
    assert!(state
        .try_serve_cached_params_in("default", template, &params, None, usize::MAX)
        .is_none());
    let warm = state
        .serve_with_params_in("default", template, &params, None)
        .unwrap();
    let fast = state
        .try_serve_cached_params_in("default", template, &params, None, usize::MAX)
        .expect("warm params commit");
    assert_eq!(fast.table, warm.table);
    // Wrong arity: decline, so the pooled path can reject it typed.
    assert!(state
        .try_serve_cached_params_in("default", template, &[], None, usize::MAX)
        .is_none());
}

/// An unknown tenant declines rather than being created: probing must
/// never allocate a shard.
#[test]
fn fast_path_never_creates_a_tenant() {
    let state = warm_state();
    assert!(state
        .try_serve_cached_in("ghost", POINT_SQL, None, usize::MAX)
        .is_none());
    assert!(
        !state.tenants().iter().any(|t| t == "ghost"),
        "a fast-path probe must not create the tenant it probed"
    );
}
