//! Property tests for the wire protocol: every request/response
//! round-trips bit-exactly through encode → frame → decode, and no
//! amount of truncation, oversizing, or outright garbage makes the
//! decoder panic — it returns typed [`ProtoError`]s.

use proptest::collection::vec;
use proptest::prelude::*;
use raven_data::{Column, DataType, Schema, Table};
use raven_server::proto::{read_frame, ProtoError, MAX_FRAME_LEN, PROTOCOL_VERSION};
use raven_server::{ErrorCode, Request, Response, Span, Trace, WireStats};
use std::io::Cursor;
use std::time::Duration;

/// Printable-ASCII strings plus the occasional multi-byte UTF-8, so the
/// length prefixes are exercised in bytes, not chars.
fn text() -> impl Strategy<Value = String> {
    prop_oneof![
        vec(32..127u32, 0..48).prop_map(|v| {
            v.into_iter()
                .map(|c| char::from_u32(c).unwrap())
                .collect::<String>()
        }),
        Just("SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d)".to_string()),
        Just("日本語テキスト🚀".to_string()),
        Just(String::new()),
    ]
}

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e12..1.0e12f64,
        Just(0.0),
        Just(f64::MAX),
        Just(f64::NEG_INFINITY),
    ]
}

/// Tenant names as the wire sees them — including the empty string
/// (aggregate `Stats`) and names the server would reject as invalid:
/// the *protocol* round-trips them all; validation is the server's job.
fn tenant() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("default".to_string()),
        Just("team-a".to_string()),
        Just(String::new()),
        text(),
    ]
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (text(), tenant()).prop_map(|(sql, tenant)| Request::Prepare { sql, tenant }),
        (text(), tenant(), 0..10_000_000u64).prop_map(|(sql, tenant, micros)| Request::Query {
            sql,
            tenant,
            deadline: (micros % 2 == 0).then(|| Duration::from_micros(micros + 1)),
        }),
        (text(), tenant(), vec(finite_f64(), 0..32))
            .prop_map(|(model, tenant, row)| Request::Score { model, tenant, row }),
        (text(), tenant(), vec(param_value(), 0..8), 0..10_000_000u64).prop_map(
            |(template, tenant, params, micros)| Request::QueryParams {
                template,
                tenant,
                params,
                deadline: (micros % 2 == 0).then(|| Duration::from_micros(micros + 1)),
            }
        ),
        tenant().prop_map(|tenant| Request::Stats { tenant }),
        tenant().prop_map(|tenant| Request::Metrics { tenant }),
        (tenant(), 0..4096u32).prop_map(|(tenant, limit)| Request::Traces { tenant, limit }),
        Just(Request::Shutdown),
    ]
}

/// Traces as the server ships them: parents index earlier spans (never
/// the `u32::MAX` root sentinel, which the encoder owns), and a slow
/// trace may legitimately carry zero spans (captured unsampled).
fn trace() -> impl Strategy<Value = Trace> {
    (
        tenant(),
        text(),
        0..u64::MAX / 2,
        0..100_000_000u64,
        0..2u8,
        vec(
            (
                text(),
                0..2u8,
                0..512u32,
                0..10_000_000u64,
                0..10_000_000u64,
            ),
            0..12,
        ),
    )
        .prop_map(|(tenant, sql, seq, total_us, slow, spans)| Trace {
            seq,
            tenant,
            sql,
            total_us,
            slow: slow == 1,
            spans: spans
                .into_iter()
                .enumerate()
                .map(|(i, (name, rooted, parent, start_us, duration_us))| Span {
                    name,
                    parent: (rooted == 1 && i > 0).then(|| parent % i as u32),
                    start_us,
                    duration_us,
                })
                .collect(),
        })
}

fn param_value() -> impl Strategy<Value = raven_data::Value> {
    use raven_data::Value;
    prop_oneof![
        (-1_000_000..1_000_000i64).prop_map(Value::Int64),
        finite_f64().prop_map(Value::Float64),
        (0..2u8).prop_map(|b| Value::Bool(b == 1)),
        text().prop_map(Value::Utf8),
    ]
}

fn table() -> impl Strategy<Value = Table> {
    (
        vec(-1_000_000..1_000_000i64, 0..8),
        vec(finite_f64(), 0..8),
        vec(text(), 0..8),
        vec(0..2u8, 0..8),
    )
        .prop_map(|(ints, floats, strings, bools)| {
            let n = ints
                .len()
                .min(floats.len())
                .min(strings.len())
                .min(bools.len());
            Table::try_new(
                Schema::from_pairs(&[
                    ("i", DataType::Int64),
                    ("f", DataType::Float64),
                    ("s", DataType::Utf8),
                    ("b", DataType::Bool),
                ])
                .into_shared(),
                vec![
                    Column::Int64(ints[..n].to_vec()),
                    Column::Float64(floats[..n].to_vec()),
                    Column::Utf8(strings[..n].to_vec()),
                    Column::Bool(bools[..n].iter().map(|&b| b == 1).collect()),
                ],
            )
            .unwrap()
        })
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    const CODES: [ErrorCode; 12] = [
        ErrorCode::Sql,
        ErrorCode::Optimizer,
        ErrorCode::Execution,
        ErrorCode::Data,
        ErrorCode::Store,
        ErrorCode::Scoring,
        ErrorCode::BadRequest,
        ErrorCode::ShuttingDown,
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Protocol,
        ErrorCode::Network,
    ];
    (0..CODES.len()).prop_map(|i| CODES[i])
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0..2u8, 0..1_000_000u64).prop_map(|(hit, micros)| Response::Prepared {
            cache_hit: hit == 1,
            prepare_micros: micros,
        }),
        (0..2u8, 0..1_000_000u64, table()).prop_map(|(hit, micros, table)| Response::Rows {
            cache_hit: hit == 1,
            total_micros: micros,
            table: std::sync::Arc::new(table),
        }),
        table().prop_map(|table| Response::RowsChunk {
            table: std::sync::Arc::new(table),
        }),
        (0..2u8, 0..1_000_000u64, 0..1_000_000u64).prop_map(|(hit, micros, rows)| {
            Response::RowsEnd {
                cache_hit: hit == 1,
                total_micros: micros,
                total_rows: rows,
            }
        }),
        finite_f64().prop_map(|value| Response::Score { value }),
        vec(0..u64::MAX, 20).prop_map(|v| {
            Response::Stats(WireStats {
                queries: v[0],
                errors: v[1],
                rows: v[2],
                plan_hits: v[3],
                plan_misses: v[4],
                preparations: v[5],
                invalidations: v[6],
                normalized: v[12],
                template_hits: v[13],
                result_hits: v[14],
                result_misses: v[15],
                result_invalidations: v[16],
                batch_requests: v[7],
                batches: v[8],
                admitted: v[9],
                rejected_overloaded: v[10],
                rejected_deadline: v[11],
                latency_p50_micros: v[17],
                latency_p95_micros: v[18],
                latency_p99_micros: v[19],
            })
        }),
        text().prop_map(|text| Response::Metrics { text }),
        vec(trace(), 0..4).prop_map(|traces| Response::Traces { traces }),
        Just(Response::ShutdownAck),
        (error_code(), text()).prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in request()) {
        let wire = req.encode();
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip(resp in response()) {
        let wire = resp.encode();
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn truncated_frames_error_instead_of_parsing(
        req in request(),
        cut_frac in 0.0..1.0f64,
    ) {
        let wire = req.encode();
        // Cut strictly inside the frame: every prefix must fail cleanly.
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(read_frame(&mut Cursor::new(&wire[..cut])).is_err());
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking(
        req in request(),
        cut_frac in 0.0..1.0f64,
    ) {
        // Truncate the decoded body (post-length-prefix) directly: the
        // payload cursor must bounds-check every field.
        let wire = req.encode();
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        let cut = ((body.len().saturating_sub(1)) as f64 * cut_frac) as usize;
        if cut < body.len() {
            prop_assert!(Request::decode(&body[..cut]).is_err());
        }
    }

    #[test]
    fn garbage_never_panics(bytes in vec(0..256u32, 0..512)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        // Whatever happens — Eof, BadLength, BadVersion, BadKind,
        // Malformed, or even an accidental parse — it must not panic.
        if let Ok(body) = read_frame(&mut Cursor::new(&bytes)) {
            let _ = Request::decode(&body);
            let _ = Response::decode(&body);
        }
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn oversized_length_prefixes_rejected(excess in 1..u32::MAX - MAX_FRAME_LEN) {
        let len = MAX_FRAME_LEN + excess;
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&[1u8, 0x04]); // plausible version + kind
        prop_assert!(read_frame(&mut Cursor::new(&wire)).is_err());
    }
}

/// What a request encoded at `version` decodes back to: below v4 the
/// tenant field does not exist on the wire, so every request lands in
/// the default tenant.
fn request_expected_at(req: &Request, version: u8) -> Request {
    let mut expected = req.clone();
    if version < 4 {
        match &mut expected {
            Request::Prepare { tenant, .. }
            | Request::Query { tenant, .. }
            | Request::QueryParams { tenant, .. }
            | Request::Score { tenant, .. }
            | Request::Stats { tenant }
            | Request::Metrics { tenant }
            | Request::Traces { tenant, .. } => {
                *tenant = "default".to_string();
            }
            Request::Shutdown => {}
        }
    }
    expected
}

/// What a response encoded at `version` decodes back to — `None` when
/// the kind does not exist at that version (the decoder must reject it
/// as `BadKind`). Below v4 the stats latency percentiles are dropped.
fn response_expected_at(resp: &Response, version: u8) -> Option<Response> {
    match resp {
        Response::RowsChunk { .. } | Response::RowsEnd { .. } if version < 6 => None,
        Response::Stats(stats) if version < 4 => {
            let mut stats = *stats;
            stats.latency_p50_micros = 0;
            stats.latency_p95_micros = 0;
            stats.latency_p99_micros = 0;
            Some(Response::Stats(stats))
        }
        other => Some(other.clone()),
    }
}

// Protocol v6: request ids, pipelined frame streams, chunked results,
// and the v3–v6 compat matrix.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The v6 header carries the request id and decode echoes it back,
    /// whatever the id (0, sequential, or u32::MAX are all just bits).
    #[test]
    fn v6_request_ids_roundtrip(req in request(), id in 0..u32::MAX) {
        let wire = req.encode_with_id(id);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        let (decoded, version, got) = Request::decode_framed(&body).unwrap();
        prop_assert_eq!(version, PROTOCOL_VERSION);
        prop_assert_eq!(got, id);
        prop_assert_eq!(decoded, req);
    }

    /// Replies carry the id of the request they answer.
    #[test]
    fn v6_response_ids_roundtrip(resp in response(), id in 0..u32::MAX) {
        let wire = resp.encode_framed(PROTOCOL_VERSION, id);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        let (decoded, version, got) = Response::decode_framed(&body).unwrap();
        prop_assert_eq!(version, PROTOCOL_VERSION);
        prop_assert_eq!(got, id);
        prop_assert_eq!(decoded, resp);
    }

    /// A pipelined byte stream — several requests back to back, ids in
    /// any order, possibly duplicated — frames cleanly: each frame
    /// decodes to exactly the request and id that was written, in write
    /// order, with no bleed between frames.
    #[test]
    fn pipelined_frame_streams_roundtrip(
        reqs in vec((request(), 0..u32::MAX), 1..8),
    ) {
        let mut wire = Vec::new();
        for (req, id) in &reqs {
            wire.extend_from_slice(&req.encode_with_id(*id));
        }
        let mut cursor = Cursor::new(&wire);
        for (req, id) in &reqs {
            let body = read_frame(&mut cursor).unwrap();
            let (decoded, _, got) = Request::decode_framed(&body).unwrap();
            prop_assert_eq!(&decoded, req);
            prop_assert_eq!(got, *id);
        }
        // Nothing left over: the frames consumed the stream exactly.
        prop_assert_eq!(cursor.position() as usize, wire.len());
    }

    /// Any chunking of a result table ships as decodable `RowsChunk`
    /// frames that reassemble into the original table, bit-exactly —
    /// the server-side encoder slices, the client-side concat restores.
    #[test]
    fn random_chunk_boundaries_reassemble_exactly(
        t in table(),
        chunk_rows in 1..5usize,
        id in 0..u32::MAX,
    ) {
        let n = t.num_rows();
        let mut parts = Vec::new();
        let mut offset = 0usize;
        loop {
            let len = chunk_rows.min(n - offset);
            let frame = Response::rows_chunk_frame(PROTOCOL_VERSION, id, &t, offset, len).unwrap();
            let body = read_frame(&mut Cursor::new(&frame)).unwrap();
            let (resp, version, got) = Response::decode_framed(&body).unwrap();
            prop_assert_eq!(version, PROTOCOL_VERSION);
            prop_assert_eq!(got, id);
            match resp {
                Response::RowsChunk { table } => parts.push((*table).clone()),
                other => panic!("not a chunk: {other:?}"),
            }
            offset += len;
            if offset >= n {
                break;
            }
        }
        prop_assert_eq!(parts.iter().map(Table::num_rows).sum::<usize>(), n);
        prop_assert_eq!(Table::concat(&parts).unwrap(), t);
    }

    /// The v3–v6 compat matrix for requests: every version encodes a
    /// genuine frame of that version's layout, the decoder echoes the
    /// version, ids exist only at v6, pre-v4 frames drop the tenant,
    /// and kinds that postdate the version come back `BadKind` — never
    /// a panic, never a misparse.
    #[test]
    fn request_compat_matrix(req in request(), version in 3..7u8, id in 0..u32::MAX) {
        let wire = req.encode_for_version(version, id);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        match Request::decode_framed(&body) {
            Ok((decoded, got_version, got_id)) => {
                prop_assert_eq!(got_version, version);
                prop_assert_eq!(got_id, if version >= 6 { id } else { 0 });
                prop_assert_eq!(decoded, request_expected_at(&req, version));
            }
            Err(e) => {
                // Only the v5+ observability kinds may fail, only below
                // v5, and only as BadKind.
                prop_assert!(
                    version < 5
                        && matches!(req, Request::Metrics { .. } | Request::Traces { .. }),
                    "unexpected decode failure at v{}: {:?}", version, e
                );
                prop_assert!(matches!(e, ProtoError::BadKind(_)));
            }
        }
    }

    /// The compat matrix for responses: versions echo, pre-v4 stats
    /// drop the latency percentiles, and the v6-only streaming kinds
    /// are `BadKind` to older peers.
    #[test]
    fn response_compat_matrix(resp in response(), version in 3..7u8, id in 0..u32::MAX) {
        let wire = resp.encode_framed(version, id);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        match (Response::decode_framed(&body), response_expected_at(&resp, version)) {
            (Ok((decoded, got_version, got_id)), Some(expected)) => {
                prop_assert_eq!(got_version, version);
                prop_assert_eq!(got_id, if version >= 6 { id } else { 0 });
                prop_assert_eq!(decoded, expected);
            }
            (Err(e), None) => prop_assert!(matches!(e, ProtoError::BadKind(_))),
            (Ok((decoded, ..)), None) => {
                panic!("v{version} decoded a kind it should not know: {decoded:?}")
            }
            (Err(e), Some(_)) => {
                panic!("v{version} failed to decode a legal frame: {e:?}")
            }
        }
    }

    /// Truncating a v6 frame's body anywhere — including inside the new
    /// request-id header bytes — is a typed error, never a panic.
    #[test]
    fn truncated_v6_payloads_error_instead_of_panicking(
        req in request(),
        id in 0..u32::MAX,
        cut_frac in 0.0..1.0f64,
    ) {
        let wire = req.encode_with_id(id);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        let cut = ((body.len().saturating_sub(1)) as f64 * cut_frac) as usize;
        if cut < body.len() {
            prop_assert!(Request::decode_framed(&body[..cut]).is_err());
        }
    }
}
