//! End-to-end tests for the framed-TCP front end: a real listener on an
//! ephemeral port, driven by many client threads — the serving test
//! harness this PR exists for.
//!
//! Covered here: the N×M concurrency stress (results + `Stats` totals),
//! the admission-control acceptance scenario (execution limit 1 under
//! saturating load → typed `Overloaded` while in-flight work completes),
//! per-request deadlines, plan-cache invalidation observed over the
//! wire, connection-level backpressure, and wire-initiated shutdown.

use raven_data::{Column, DataType, Schema, Table};
use raven_datagen::{hospital, train};
use raven_ml::featurize::Transform;
use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
use raven_server::{
    AdmissionConfig, NetConfig, RavenClient, RavenServer, ServerConfig, ServerError, ServerState,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const HOSPITAL_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

fn hospital_state(rows: usize, config: ServerConfig) -> Arc<ServerState> {
    let state = Arc::new(ServerState::new(config));
    let data = hospital::generate(rows, 42);
    data.register(state.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    state.store_model("duration_of_stay", model).unwrap();
    state
}

fn spawn(state: Arc<ServerState>, workers: usize, max_connections: usize) -> RavenServer {
    RavenServer::bind(
        state,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            max_connections,
            poll_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral listener")
}

fn linear(w: Vec<f64>, b: f64) -> Pipeline {
    let steps = (0..w.len())
        .map(|i| FeatureStep::new(format!("x{i}"), Transform::Identity))
        .collect();
    Pipeline::new(
        steps,
        Estimator::Linear(LinearModel::new(w, b, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

/// Concurrency stress: N client threads × M requests against a live
/// listener — no deadlocks, per-request results all agree, and the
/// `Stats` frame's totals equal the requests sent.
#[test]
fn stress_many_clients_over_tcp() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 10;

    // workers > CLIENTS: the post-run stats observer needs a free slot
    // even if a client handler hasn't noticed its peer's close yet.
    let server = spawn(
        hospital_state(500, ServerConfig::for_tests()),
        CLIENTS + 2,
        64,
    );
    let addr = server.local_addr();
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = RavenClient::connect(addr).unwrap();
                barrier.wait();
                let mut counts = Vec::new();
                for _ in 0..QUERIES_PER_CLIENT {
                    let reply = client.query(HOSPITAL_SQL).unwrap();
                    counts.push(reply.table.num_rows());
                }
                counts
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread must not deadlock"));
    }
    assert_eq!(all.len(), CLIENTS * QUERIES_PER_CLIENT);
    assert!(all[0] > 0, "prediction query must return rows");
    assert!(
        all.iter().all(|&n| n == all[0]),
        "every request sees identical results: {all:?}"
    );

    let mut observer = RavenClient::connect(addr).unwrap();
    let stats = observer.stats().unwrap();
    assert_eq!(
        stats.queries,
        (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "Stats totals must equal requests sent"
    );
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.admitted, stats.queries);
    assert_eq!(stats.preparations, 1, "one optimizer pass for all clients");
    assert!(stats.plan_hits >= (CLIENTS * (QUERIES_PER_CLIENT - 1)) as u64);
    server.shutdown();
}

/// The acceptance scenario: execution limit 1, no waiting room, 8 client
/// threads of saturating load. At least one request is rejected with a
/// typed `Overloaded` frame; everything admitted completes correctly.
#[test]
fn admission_control_rejects_overload_with_typed_frames() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 6;

    let mut config = ServerConfig::for_tests();
    config.admission = AdmissionConfig::strict(1);
    // Result caching off: a warm repeat served from the result cache
    // holds its execution permit for microseconds, and on a fast release
    // build 48 such requests can serialize without ever overlapping —
    // no overload, nothing to test. Every request must really execute.
    config.result_cache_capacity = 0;
    let server = spawn(hospital_state(2_000, config), CLIENTS + 2, 64);
    let addr = server.local_addr();
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = RavenClient::connect(addr).unwrap();
                barrier.wait();
                let mut served = Vec::new();
                let mut overloaded = 0usize;
                for _ in 0..QUERIES_PER_CLIENT {
                    match client.query(HOSPITAL_SQL) {
                        Ok(reply) => served.push(reply.table.num_rows()),
                        Err(ServerError::Overloaded(_)) => overloaded += 1,
                        Err(other) => panic!("unexpected failure under load: {other}"),
                    }
                }
                (served, overloaded)
            })
        })
        .collect();
    let mut served = Vec::new();
    let mut overloaded = 0usize;
    for h in handles {
        let (s, o) = h.join().expect("client thread must not deadlock");
        served.extend(s);
        overloaded += o;
    }
    assert!(
        !served.is_empty(),
        "admitted requests must complete under overload"
    );
    assert!(
        overloaded > 0,
        "a saturating load against limit 1 must see a typed Overloaded response"
    );
    assert!(
        served.iter().all(|&n| n == served[0] && n > 0),
        "in-flight requests complete correctly while others are rejected: {served:?}"
    );

    let mut observer = RavenClient::connect(addr).unwrap();
    let stats = observer.stats().unwrap();
    assert_eq!(stats.queries, served.len() as u64);
    assert_eq!(stats.rejected_overloaded, overloaded as u64);
    assert_eq!(
        stats.admitted + stats.rejected_overloaded,
        (CLIENTS * QUERIES_PER_CLIENT) as u64
    );
    server.shutdown();
}

/// Per-request deadlines reject with a typed frame — both an
/// already-expired deadline and one generous enough to succeed.
#[test]
fn deadlines_are_enforced_over_the_wire() {
    let server = spawn(hospital_state(500, ServerConfig::for_tests()), 2, 8);
    let addr = server.local_addr();
    let mut client = RavenClient::connect(addr).unwrap();
    let err = client
        .query_with_deadline(HOSPITAL_SQL, Some(Duration::from_micros(1)))
        .unwrap_err();
    assert!(
        matches!(err, ServerError::DeadlineExceeded(_)),
        "expired deadline must be typed, got: {err}"
    );
    let ok = client
        .query_with_deadline(HOSPITAL_SQL, Some(Duration::from_secs(60)))
        .unwrap();
    assert!(ok.table.num_rows() > 0);
    // The expiry is typed either way it fires: rejected at admission
    // (rejected_deadline) or cancelled mid-execution (a query error).
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected_deadline + stats.errors, 1);
    server.shutdown();
}

/// Plan-cache invalidation observed over the wire: re-register the model
/// mid-stream and the very next `Query` must reflect the new version —
/// no stale cached plan served.
#[test]
fn model_swap_mid_stream_is_visible_to_the_next_query() {
    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let table = Table::try_new(
        Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
        vec![Column::Float64((0..100).map(|i| i as f64).collect())],
    )
    .unwrap();
    state.register_table("t", table).unwrap();
    state.store_model("m", linear(vec![1.0], 0.0)).unwrap();
    let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
               WITH (s FLOAT) AS p WHERE p.s > 49";

    let server = spawn(state.clone(), 2, 8);
    let mut client = RavenClient::connect(server.local_addr()).unwrap();

    // v1 scores identity: half the rows pass the filter. Run it twice so
    // the plan is demonstrably cached.
    assert_eq!(client.query(sql).unwrap().table.num_rows(), 50);
    let cached = client.query(sql).unwrap();
    assert!(cached.cache_hit, "second query must be served from cache");
    assert_eq!(cached.table.num_rows(), 50);

    // Mid-stream model swap: v2 scores every row at 100.
    state.store_model("m", linear(vec![0.0], 100.0)).unwrap();

    let after = client.query(sql).unwrap();
    assert!(
        !after.cache_hit,
        "model update must invalidate the cached plan"
    );
    assert_eq!(
        after.table.num_rows(),
        100,
        "stale plan served after model swap"
    );
    server.shutdown();
}

/// The connection cap answers with a typed `Overloaded` frame instead of
/// letting the socket queue silently.
#[test]
fn connection_limit_turns_arrivals_away_typed() {
    let server = spawn(hospital_state(200, ServerConfig::for_tests()), 1, 1);
    let addr = server.local_addr();
    let mut first = RavenClient::connect(addr).unwrap();
    assert!(first.query(HOSPITAL_SQL).unwrap().table.num_rows() > 0);
    // The first connection is still open: the second is turned away.
    let mut second = RavenClient::connect(addr).unwrap();
    let err = second.query(HOSPITAL_SQL).unwrap_err();
    assert!(
        matches!(err, ServerError::Overloaded(_)),
        "connection overflow must be typed, got: {err}"
    );
    // The established connection keeps working.
    assert!(first.query(HOSPITAL_SQL).unwrap().table.num_rows() > 0);
    server.shutdown();
}

/// Point scoring and statement preparation work over the wire, and a
/// `Shutdown` frame stops the server (joining must not hang).
#[test]
fn score_prepare_and_shutdown_over_the_wire() {
    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let table = Table::try_new(
        Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
        vec![Column::Float64(vec![1.0, 2.0])],
    )
    .unwrap();
    state.register_table("t", table).unwrap();
    state.store_model("m", linear(vec![2.0], 0.5)).unwrap();
    let server = spawn(state, 2, 8);
    let addr = server.local_addr();
    let mut client = RavenClient::connect(addr).unwrap();

    assert_eq!(client.score("m", vec![3.0]).unwrap(), 6.5);
    assert!(matches!(
        client.score("ghost", vec![1.0]),
        Err(ServerError::Store(_))
    ));
    let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p";
    let (hit, _) = client.prepare(sql).unwrap();
    assert!(!hit);
    let reply = client.query(sql).unwrap();
    assert!(reply.cache_hit, "prepared statement must hit the cache");
    assert_eq!(reply.table.num_rows(), 2);
    // SQL errors come back typed without poisoning the connection.
    assert!(matches!(
        client.query("SELECT * FROM nope"),
        Err(ServerError::Sql(_))
    ));
    assert_eq!(client.score("m", vec![0.0]).unwrap(), 0.5);

    client.shutdown_server().unwrap();
    server.shutdown(); // must join, not hang
                       // The connection is gone: the next round-trip fails.
    assert!(client.query(sql).is_err());
}
