//! Observability over the wire (protocol v5): the `Metrics` frame
//! returns per-tenant and exactly-merged aggregate Prometheus text, the
//! `Traces` frame returns slow-query span trees whose per-stage
//! durations reconcile with the end-to-end latency, and a pre-v5 peer
//! asking for either gets a typed protocol error, not a hang or a
//! misparse.
//!
//! The acceptance assertion from the ISSUE lives here: a slow query
//! fetched via the `Traces` frame shows a span tree whose stage
//! durations sum to within 10% of the end-to-end latency.

use raven_data::{Column, DataType, Schema, Table};
use raven_ml::featurize::Transform;
use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
use raven_server::proto::{self, read_frame, write_frame};
use raven_server::{
    ErrorCode, NetConfig, RavenClient, RavenServer, Request, Response, ServerConfig, ServerState,
    Trace,
};
use std::sync::Arc;
use std::time::Duration;

const SQL: &str = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                   WITH (s FLOAT) AS p WHERE p.s > 49";

fn linear(w: f64) -> Pipeline {
    Pipeline::new(
        vec![FeatureStep::new("x0", Transform::Identity)],
        Estimator::Linear(LinearModel::new(vec![w], 0.0, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

fn table_of(n: i64) -> Table {
    Table::try_new(
        Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
        vec![Column::Float64((0..n).map(|i| i as f64).collect())],
    )
    .unwrap()
}

/// Sample everything and call everything slow, so the forensics path is
/// deterministic under test.
fn observability_config() -> ServerConfig {
    let mut config = ServerConfig::for_tests();
    config.trace_sample_rate = 1;
    config.slow_query_threshold = Duration::ZERO;
    config
}

fn spawn(state: Arc<ServerState>) -> RavenServer {
    RavenServer::bind(
        state,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 16,
            poll_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral listener")
}

fn span_names(trace: &Trace) -> Vec<&str> {
    trace.spans.iter().map(|s| s.name.as_str()).collect()
}

/// The ISSUE's acceptance assertion: the slow-query span tree's stage
/// durations sum to within 10% of the end-to-end latency — over a real
/// socket, not an in-process shortcut.
#[test]
fn slow_query_trace_stages_reconcile_with_total_latency() {
    let state = Arc::new(ServerState::new(observability_config()));
    // Enough rows that execution dominates and fixed per-request
    // overhead (frame decode, span bookkeeping) stays under the 10%.
    state.register_table("t", table_of(200_000)).unwrap();
    state.store_model("m", linear(1.0)).unwrap();
    let server = spawn(state.clone());
    let addr = server.local_addr();

    let mut client = RavenClient::connect(addr).unwrap();
    let cold = client.query(SQL).unwrap();
    let warm = client.query(SQL).unwrap();
    assert!(!cold.cache_hit && warm.cache_hit);

    let slow = client.slow_queries(10).unwrap();
    assert!(slow.len() >= 2, "both requests cross a zero threshold");
    // Newest first: the warm replay leads, the cold execution follows.
    let warm_trace = &slow[0];
    let cold_trace = slow
        .iter()
        .max_by_key(|t| t.total_us)
        .expect("at least one trace");
    assert!(cold_trace.slow);
    assert_eq!(cold_trace.sql, SQL);

    // The cold request carries the full pipeline: preparation stages,
    // then per-operator execution under the result-cache lookup.
    let names = span_names(cold_trace);
    for stage in [
        "tenant-quota-wait",
        "global-admission-wait",
        "normalize",
        "plan-cache-lookup",
        "parse-bind",
        "optimize",
        "fingerprint",
        "result-cache-lookup",
        "op:scan",
    ] {
        assert!(
            names.contains(&stage),
            "cold trace missing {stage}: {names:?}"
        );
    }
    // The warm replay skipped preparation and execution entirely.
    let warm_names = span_names(warm_trace);
    assert!(!warm_names.contains(&"parse-bind"), "{warm_names:?}");
    assert!(
        !warm_names.iter().any(|n| n.starts_with("op:")),
        "cached replay must not execute operators: {warm_names:?}"
    );

    // Acceptance: stage durations reconcile with end-to-end latency.
    let total = cold_trace.total_us;
    let staged = cold_trace.stage_total_us();
    assert!(
        staged <= total,
        "sequential root stages cannot exceed the total: {staged} > {total}"
    );
    assert!(
        (total - staged) * 10 <= total,
        "stages sum to {staged}µs of {total}µs — more than 10% unaccounted:\n{}",
        cold_trace.render()
    );
    server.shutdown();
}

/// Per-tenant `Metrics` frames carry tenant-labeled series; the empty
/// tenant returns the exactly-merged aggregate; a tenant nobody created
/// renders empty and is not created by being observed.
#[test]
fn metrics_frames_serve_tenant_and_aggregate_views() {
    let state = Arc::new(ServerState::new(observability_config()));
    for tenant in ["tenant-a", "tenant-b"] {
        state.register_table_in(tenant, "t", table_of(100)).unwrap();
        state.store_model_in(tenant, "m", linear(1.0)).unwrap();
    }
    let server = spawn(state.clone());
    let addr = server.local_addr();

    let mut a = RavenClient::connect(addr).unwrap().for_tenant("tenant-a");
    let mut b = RavenClient::connect(addr).unwrap().for_tenant("tenant-b");
    for _ in 0..3 {
        a.query(SQL).unwrap();
    }
    for _ in 0..2 {
        b.query(SQL).unwrap();
    }

    // A client reads its own tenant's series by default…
    let text_a = a.metrics().unwrap();
    assert!(
        text_a.contains("raven_queries_total{tenant=\"tenant-a\"} 3"),
        "{text_a}"
    );
    assert!(text_a.contains("# TYPE raven_queries_total counter"));
    assert!(text_a.contains("raven_query_latency_us_bucket{tenant=\"tenant-a\",le="));
    // …and can observe a sibling or the merged whole from one socket.
    let text_b = a.metrics_for("tenant-b").unwrap();
    assert!(
        text_b.contains("raven_queries_total{tenant=\"tenant-b\"} 2"),
        "{text_b}"
    );
    let aggregate = a.metrics_aggregate().unwrap();
    assert!(aggregate.contains("raven_queries_total 5"), "{aggregate}");
    assert!(
        aggregate.contains("raven_query_latency_us_count 5"),
        "histogram buckets merge exactly across tenants: {aggregate}"
    );
    assert!(
        !aggregate.contains("tenant=\"tenant-a\""),
        "the aggregate renders unlabeled"
    );

    // Ghost tenants render empty — and still do not exist afterwards.
    assert_eq!(a.metrics_for("ghost").unwrap(), "");
    assert!(a.slow_queries_for("ghost", 10).unwrap().is_empty());
    assert!(
        state.try_tenant("ghost").is_none(),
        "observing must not create"
    );

    // The aggregate trace view interleaves both tenants, newest first.
    let merged = a.slow_queries_for("", 16).unwrap();
    assert_eq!(merged.len(), 5);
    assert!(merged.windows(2).all(|w| w[0].seq > w[1].seq));
    assert!(merged.iter().any(|t| t.tenant == "tenant-a"));
    assert!(merged.iter().any(|t| t.tenant == "tenant-b"));
    server.shutdown();
}

/// A pre-v5 peer sending the new observability kinds gets the same
/// typed protocol error any unknown kind would produce — the server
/// never tries to parse a payload the peer's version cannot have
/// meant.
#[test]
fn pre_v5_peers_cannot_reach_observability_kinds() {
    let state = Arc::new(ServerState::new(observability_config()));
    state.register_table("t", table_of(10)).unwrap();
    state.store_model("m", linear(1.0)).unwrap();
    let server = spawn(state.clone());
    let addr = server.local_addr();

    for request in [
        Request::Metrics {
            tenant: String::new(),
        },
        Request::Traces {
            tenant: String::new(),
            limit: 4,
        },
    ] {
        // A genuine v4-layout frame (no request-id header bytes), not a
        // v6 frame with the version byte rewritten.
        let wire = request.encode_for_version(4, 0);
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &wire).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        match Response::decode(&reply).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
            other => panic!("v4 peer reached a v5-only kind: {other:?}"),
        }
    }

    // The same bytes at version 5 are served normally.
    let mut client = RavenClient::connect(addr).unwrap();
    client.query(SQL).unwrap();
    assert!(client
        .metrics_aggregate()
        .unwrap()
        .contains("raven_queries_total 1"));
    assert_eq!(client.slow_queries(10).unwrap().len(), 1);
    let _ = proto::PROTOCOL_VERSION; // the gate under test
    server.shutdown();
}
