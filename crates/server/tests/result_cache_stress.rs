//! Result-cache stress test over the wire: 8 TCP clients hammer one hot
//! deterministic query while a writer swaps the model mid-stream.
//!
//! The freshness assertion is linearizability-shaped: the writer raises
//! a flag only *after* `store_model` has returned, and any request a
//! client **starts after observing that flag** must see the new model's
//! rows — a stale memoized result served past the invalidation fails
//! loudly. Per-connection monotonicity is asserted too (requests on one
//! connection are sequential, so once a client has seen v2 it can never
//! see v1 again). Afterwards the wire-visible counters must reconcile:
//! every served request was either a result-cache hit or a miss.

use raven_data::{Column, DataType, Schema, Table};
use raven_ml::featurize::Transform;
use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
use raven_server::{NetConfig, RavenClient, RavenServer, ServerConfig, ServerState};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// v1 scores identity (50 of 100 rows pass the filter); v2 scores a
/// constant 100 (all rows pass) — row counts distinguish the versions.
const SQL: &str = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                   WITH (s FLOAT) AS p WHERE p.s > 49";
const V1_ROWS: usize = 50;
const V2_ROWS: usize = 100;

fn linear(w: Vec<f64>, b: f64) -> Pipeline {
    let steps = (0..w.len())
        .map(|i| FeatureStep::new(format!("x{i}"), Transform::Identity))
        .collect();
    Pipeline::new(
        steps,
        Estimator::Linear(LinearModel::new(w, b, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

#[test]
fn hot_query_with_mid_stream_model_swap_never_serves_stale() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 30;

    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let table = Table::try_new(
        Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
        vec![Column::Float64((0..100).map(|i| i as f64).collect())],
    )
    .unwrap();
    state.register_table("t", table).unwrap();
    state.store_model("m", linear(vec![1.0], 0.0)).unwrap();

    let server = RavenServer::bind(
        state.clone(),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: CLIENTS + 2,
            max_connections: 64,
            poll_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let swapped = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));

    let writer = {
        let state = state.clone();
        let swapped = swapped.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            // Let the readers get the hot entry warm, then swap.
            std::thread::sleep(Duration::from_millis(15));
            state.store_model("m", linear(vec![0.0], 100.0)).unwrap();
            // Only now may readers rely on v2: the store (and its
            // invalidations) has completed.
            swapped.store(true, Ordering::SeqCst);
            // The writer's own post-swap read must be fresh too.
            let check = state.execute(SQL).unwrap();
            assert_eq!(
                check.table.num_rows(),
                V2_ROWS,
                "writer read its own write stale"
            );
        })
    };

    let readers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let swapped = swapped.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = RavenClient::connect(addr).unwrap();
                barrier.wait();
                let mut seen_v2 = false;
                let mut sent = 0u64;
                // Run at least the quota, and always past the swap —
                // result-cache hits are microseconds, so a fixed count
                // could complete before the writer even wakes.
                while !seen_v2 || sent < QUERIES_PER_CLIENT as u64 {
                    // Order matters: sample the flag BEFORE sending. If
                    // the swap completed before this request started,
                    // v1 rows would be a stale read.
                    let swap_completed_before_send = swapped.load(Ordering::SeqCst);
                    let rows = client.query(SQL).unwrap().table.num_rows();
                    sent += 1;
                    assert!(
                        rows == V1_ROWS || rows == V2_ROWS,
                        "request {sent} saw {rows} rows"
                    );
                    if swap_completed_before_send {
                        assert_eq!(
                            rows, V2_ROWS,
                            "request {sent} started after the swap but saw v1 \
                             (stale cached result)"
                        );
                    }
                    if seen_v2 {
                        assert_eq!(
                            rows, V2_ROWS,
                            "request {sent} regressed to v1 after this connection saw v2"
                        );
                    }
                    seen_v2 |= rows == V2_ROWS;
                }
                sent
            })
        })
        .collect();

    let mut total = 0u64;
    for h in readers {
        total += h.join().expect("reader must not fail or deadlock");
    }
    writer.join().expect("writer must not fail");
    total += 1; // the writer's own post-swap check

    // Counter reconciliation: every served request went through the
    // result cache — a hit or a miss, nothing unaccounted.
    let mut observer = RavenClient::connect(addr).unwrap();
    let stats = observer.stats().unwrap();
    assert_eq!(stats.queries, total);
    assert_eq!(stats.errors, 0);
    assert_eq!(
        stats.result_hits + stats.result_misses,
        total,
        "hits + misses must equal requests: {stats:?}"
    );
    assert!(
        stats.result_hits > 0,
        "a hot repeated query must hit: {stats:?}"
    );
    assert!(
        stats.result_invalidations >= 1,
        "the swap must drop the memoized result: {stats:?}"
    );
    assert!(stats.result_hit_rate() > 0.0);
    server.shutdown();

    // In-process cross-check: the hot path really did skip execution —
    // far fewer executions than requests.
    let cache = state.result_cache_stats();
    assert!(
        cache.executions < total / 2,
        "single-flight + memoization should absorb most executions: {cache}"
    );
    assert_eq!(cache.uncacheable, 0, "this plan is deterministic: {cache}");
}
