//! Multi-tenant serving over the wire (protocol v4): cross-tenant
//! invalidation isolation under TCP stress, per-tenant quotas bounding a
//! noisy neighbor, and per-tenant / aggregate `Stats` frames.
//!
//! The acceptance assertions from the ISSUE live here:
//! * tenant A's mid-stream model swap invalidates **zero** of tenant B's
//!   plan- or result-cache entries, proven via the per-tenant
//!   invalidation counters fetched over TCP;
//! * with tenant A saturating its quota, tenant B's requests still
//!   complete within their deadline.

use raven_data::{Column, DataType, Schema, Table};
use raven_ml::featurize::Transform;
use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
use raven_server::{
    NetConfig, RavenClient, RavenServer, ServerConfig, ServerError, ServerState, TenantQuotaConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SQL: &str = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                   WITH (s FLOAT) AS p WHERE p.s > 49";

fn linear(w: Vec<f64>, b: f64) -> Pipeline {
    let steps = (0..w.len())
        .map(|i| FeatureStep::new(format!("x{i}"), Transform::Identity))
        .collect();
    Pipeline::new(
        steps,
        Estimator::Linear(LinearModel::new(w, b, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

fn table_of(n: i64) -> Table {
    Table::try_new(
        Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
        vec![Column::Float64((0..n).map(|i| i as f64).collect())],
    )
    .unwrap()
}

fn two_tenant_state(config: ServerConfig) -> Arc<ServerState> {
    let state = Arc::new(ServerState::new(config));
    for tenant in ["tenant-a", "tenant-b"] {
        state.register_table_in(tenant, "t", table_of(100)).unwrap();
        state
            .store_model_in(tenant, "m", linear(vec![1.0], 0.0))
            .unwrap();
    }
    state
}

fn spawn(state: Arc<ServerState>, workers: usize) -> RavenServer {
    RavenServer::bind(
        state,
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            max_connections: 64,
            poll_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral listener")
}

/// TCP stress with a mid-stream model swap in tenant A: B's readers see
/// constant results throughout, and the per-tenant counters fetched over
/// the wire prove B lost zero cache entries while A lost its own.
#[test]
fn tenant_a_swap_invalidates_zero_of_tenant_b() {
    const CLIENTS_PER_TENANT: usize = 4;
    const MIN_QUERIES: usize = 25;
    const A_V1_ROWS: usize = 50;
    const A_V2_ROWS: usize = 100;
    const B_ROWS: usize = 50;

    let state = two_tenant_state(ServerConfig::for_tests());
    let server = spawn(state.clone(), 2 * CLIENTS_PER_TENANT + 2);
    let addr = server.local_addr();
    let swapped = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(2 * CLIENTS_PER_TENANT + 1));

    // Tenant A readers: rows flip from v1 to v2 after the swap; any
    // request started after the swap completed must see v2.
    let a_readers: Vec<_> = (0..CLIENTS_PER_TENANT)
        .map(|_| {
            let barrier = barrier.clone();
            let swapped = swapped.clone();
            std::thread::spawn(move || {
                let mut client = RavenClient::connect(addr).unwrap().for_tenant("tenant-a");
                barrier.wait();
                let mut sent = 0usize;
                let mut seen_v2 = false;
                while !seen_v2 || sent < MIN_QUERIES {
                    let swap_before_send = swapped.load(Ordering::SeqCst);
                    let rows = client.query(SQL).unwrap().table.num_rows();
                    sent += 1;
                    assert!(rows == A_V1_ROWS || rows == A_V2_ROWS, "A saw {rows} rows");
                    if swap_before_send {
                        assert_eq!(rows, A_V2_ROWS, "stale read after the swap");
                    }
                    seen_v2 |= rows == A_V2_ROWS;
                }
                sent
            })
        })
        .collect();
    // Tenant B readers: the swap must be invisible — same-named model,
    // same rows, before and after.
    let b_readers: Vec<_> = (0..CLIENTS_PER_TENANT)
        .map(|_| {
            let barrier = barrier.clone();
            let swapped = swapped.clone();
            std::thread::spawn(move || {
                let mut client = RavenClient::connect(addr).unwrap().for_tenant("tenant-b");
                barrier.wait();
                let mut sent = 0usize;
                while !swapped.load(Ordering::SeqCst) || sent < MIN_QUERIES {
                    let rows = client.query(SQL).unwrap().table.num_rows();
                    sent += 1;
                    assert_eq!(rows, B_ROWS, "tenant B's results moved on A's swap");
                }
                sent
            })
        })
        .collect();

    barrier.wait();
    std::thread::sleep(Duration::from_millis(15));
    // v2 scores every row at 100: all 100 rows pass A's filter.
    state
        .store_model_in("tenant-a", "m", linear(vec![0.0], 100.0))
        .unwrap();
    swapped.store(true, Ordering::SeqCst);

    let a_total: usize = a_readers.into_iter().map(|h| h.join().unwrap()).sum();
    let b_total: usize = b_readers.into_iter().map(|h| h.join().unwrap()).sum();

    // The acceptance assertion, over TCP: per-tenant invalidation
    // counters — A lost entries to its own swap, B lost exactly zero.
    let mut observer = RavenClient::connect(addr).unwrap();
    let a = observer.stats_for("tenant-a").unwrap();
    let b = observer.stats_for("tenant-b").unwrap();
    assert!(
        a.invalidations >= 1 && a.result_invalidations >= 1,
        "A's swap must invalidate its own plan + result entries: {a:?}"
    );
    assert_eq!(b.invalidations, 0, "B lost plan entries to A's swap: {b:?}");
    assert_eq!(
        b.result_invalidations, 0,
        "B lost memoized results to A's swap: {b:?}"
    );
    assert_eq!(a.queries, a_total as u64);
    assert_eq!(b.queries, b_total as u64);
    assert_eq!(b.errors, 0);
    // B stayed hot the whole time: exactly one execution, rest replays.
    assert_eq!(b.result_misses, 1, "{b:?}");
    assert_eq!(b.result_hits, b_total as u64 - 1);
    // The v4 stats frame carries the tenant's latency percentiles.
    assert!(a.latency_p99_micros >= a.latency_p50_micros);
    // And the aggregate frame sums both tenants.
    let aggregate = observer.stats_aggregate().unwrap();
    assert_eq!(aggregate.queries, (a_total + b_total) as u64);
    assert!(aggregate.result_hits >= b.result_hits);
    // A tenant nobody created reports zeros, and still does not exist.
    let ghost = observer.stats_for("ghost").unwrap();
    assert_eq!(ghost.queries, 0);
    server.shutdown();
    assert!(
        state.try_tenant("ghost").is_none(),
        "observing must not create"
    );
}

/// The noisy-neighbor acceptance scenario: tenant A's strict quota is
/// saturated (its one execution slot held, with more A-clients piling on
/// over TCP); every tenant B request still completes within its deadline
/// through B's own untouched quota ring. A sees typed `Overloaded`
/// rejections; B sees none. Holding the slot in-process makes the
/// saturation deterministic — on a fast release build, organic traffic
/// alone can serialize through a microsecond-fast query and never
/// actually collide.
#[test]
fn quota_bounds_noisy_tenant_so_quiet_tenant_meets_deadlines() {
    const NOISY_CLIENTS: usize = 4;
    const NOISY_QUERIES: usize = 10;
    const QUIET_QUERIES: usize = 30;
    const QUIET_DEADLINE: Duration = Duration::from_secs(10);

    let mut config = ServerConfig::for_tests();
    // One execution at a time per tenant, no waiting room: requests
    // beyond the saturated ring reject immediately, typed.
    config.tenant_quota = TenantQuotaConfig::strict(1);
    let state = two_tenant_state(config);
    let server = spawn(state.clone(), NOISY_CLIENTS + 4);
    let addr = server.local_addr();

    // Saturate tenant A: its single quota slot is held for the whole
    // measurement window.
    let tenant_a = state.tenant("tenant-a").unwrap();
    let held = tenant_a.quota().admit(None).unwrap();

    let noisy: Vec<_> = (0..NOISY_CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = RavenClient::connect(addr).unwrap().for_tenant("tenant-a");
                let mut overloaded = 0usize;
                for q in 0..NOISY_QUERIES {
                    match client.query(SQL) {
                        Ok(_) => panic!("request {q} served through a saturated quota"),
                        Err(ServerError::Overloaded(_)) => overloaded += 1,
                        Err(other) => panic!("noisy tenant saw unexpected error: {other}"),
                    }
                }
                overloaded
            })
        })
        .collect();

    let quiet = std::thread::spawn(move || {
        let mut client = RavenClient::connect(addr).unwrap().for_tenant("tenant-b");
        let mut worst = Duration::ZERO;
        for q in 0..QUIET_QUERIES {
            let begin = Instant::now();
            let reply = client
                .query_with_deadline(SQL, Some(QUIET_DEADLINE))
                .unwrap_or_else(|e| {
                    panic!("quiet tenant request {q} failed under noisy load: {e}")
                });
            worst = worst.max(begin.elapsed());
            assert_eq!(reply.table.num_rows(), 50);
        }
        worst
    });

    let quiet_worst = quiet.join().expect("quiet tenant must not fail");
    let noisy_overloaded: usize = noisy.into_iter().map(|h| h.join().unwrap()).sum();

    assert!(
        quiet_worst < QUIET_DEADLINE,
        "quiet tenant's worst request took {quiet_worst:?}"
    );
    assert_eq!(
        noisy_overloaded,
        NOISY_CLIENTS * NOISY_QUERIES,
        "every request into the saturated quota must reject typed"
    );

    // Releasing the slot lets tenant A serve again — rejection was
    // quota pressure, not a wedged tenant.
    drop(held);
    let mut recovered = RavenClient::connect(addr).unwrap().for_tenant("tenant-a");
    assert_eq!(recovered.query(SQL).unwrap().table.num_rows(), 50);

    let mut observer = RavenClient::connect(addr).unwrap();
    let a = observer.stats_for("tenant-a").unwrap();
    let b = observer.stats_for("tenant-b").unwrap();
    assert_eq!(a.rejected_overloaded, noisy_overloaded as u64);
    assert_eq!(a.admitted, 1, "only the post-release request got through");
    assert_eq!(
        b.rejected_overloaded, 0,
        "the noisy tenant's saturation leaked into B's admission: {b:?}"
    );
    assert_eq!(b.admitted, QUIET_QUERIES as u64);
    assert_eq!(b.errors, 0);
    // B's quota ring never even queued: its latency stayed flat. The
    // wire-visible p99 gives a bound (well under the deadline).
    assert!(
        Duration::from_micros(b.latency_p99_micros) < QUIET_DEADLINE,
        "quiet tenant p99 {}µs",
        b.latency_p99_micros
    );
    server.shutdown();
}

/// Tenants are minted over the wire on first use, bounded by
/// `max_tenants`, and invalid names are rejected typed — all through v4
/// `Query` frames.
#[test]
fn wire_tenants_are_bounded_and_validated() {
    let mut config = ServerConfig::for_tests();
    config.max_tenants = 2; // default + one
    let state = Arc::new(ServerState::new(config));
    state.register_table("t", table_of(10)).unwrap();
    let server = spawn(state.clone(), 4);
    let addr = server.local_addr();

    // First unseen tenant fits under the cap (query fails on its empty
    // catalog, but the tenant itself is created).
    let mut first = RavenClient::connect(addr)
        .unwrap()
        .for_tenant("room-for-one");
    assert!(matches!(
        first.query("SELECT x0 FROM t"),
        Err(ServerError::Sql(_))
    ));
    assert!(state.try_tenant("room-for-one").is_some());
    // Second unseen tenant overflows the cap, typed.
    let mut second = RavenClient::connect(addr)
        .unwrap()
        .for_tenant("one-too-many");
    assert!(matches!(
        second.query("SELECT x0 FROM t"),
        Err(ServerError::Overloaded(_))
    ));
    assert!(state.try_tenant("one-too-many").is_none());
    // A rejected creation leaks nothing: spraying names past the cap
    // must not grow the shared catalog namespace map either.
    assert!(
        !state.catalog_shards().contains("one-too-many"),
        "rejected tenant left a catalog namespace behind"
    );
    // Invalid tenant names are a BadRequest, not a namespace.
    let mut invalid = RavenClient::connect(addr).unwrap().for_tenant("no spaces");
    assert!(matches!(
        invalid.query("SELECT x0 FROM t"),
        Err(ServerError::BadRequest(_))
    ));
    // The default tenant is untouched by all of it.
    let mut default = RavenClient::connect(addr).unwrap();
    assert_eq!(
        default.query("SELECT x0 FROM t").unwrap().table.num_rows(),
        10
    );
    server.shutdown();
}
