//! Integration tests: one shared `ServerState` serving many concurrent
//! client threads over the paper's hospital workload — the acceptance
//! scenario for the serving layer (optimize once, execute many).

use raven_datagen::{hospital, train};
use raven_server::{BatchConfig, ServerConfig, ServerError, ServerState};
use std::sync::Arc;
use std::time::Duration;

const HOSPITAL_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

fn hospital_server(rows: usize) -> ServerState {
    let server = ServerState::new(ServerConfig::for_tests());
    let data = hospital::generate(rows, 42);
    data.register(server.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    server.store_model("duration_of_stay", model).unwrap();
    server
}

/// ≥ 4 concurrent client threads through one shared `ServerState`:
/// every thread gets identical results, and the plan cache reports that
/// parse → bind → optimize ran exactly once for N executions.
#[test]
fn concurrent_clients_share_one_prepared_plan() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 5;

    let server = Arc::new(hospital_server(800));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let server = server.clone();
            std::thread::spawn(move || {
                let mut row_counts = Vec::new();
                for _ in 0..QUERIES_PER_CLIENT {
                    let result = server.execute(HOSPITAL_SQL).unwrap();
                    row_counts.push(result.table.num_rows());
                }
                row_counts
            })
        })
        .collect();

    let mut all_counts = Vec::new();
    for h in handles {
        all_counts.extend(h.join().unwrap());
    }
    assert_eq!(all_counts.len(), CLIENTS * QUERIES_PER_CLIENT);
    assert!(all_counts[0] > 0, "query must return rows");
    assert!(
        all_counts.iter().all(|&n| n == all_counts[0]),
        "every client sees identical results: {all_counts:?}"
    );

    let cache = server.plan_cache_stats();
    assert_eq!(cache.preparations, 1, "optimization ran exactly once");
    // Every client can miss at most once (its very first lookup, while
    // the single preparation is in flight); everything else hits.
    assert!(
        cache.hits >= (CLIENTS * (QUERIES_PER_CLIENT - 1)) as u64,
        "cache stats: {cache}"
    );

    let snap = server.stats();
    assert_eq!(snap.queries, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert_eq!(snap.errors, 0);
    assert!(snap.latency.p99 >= snap.latency.p50);
}

/// Re-executing the same SQL on one thread reports a cache hit and skips
/// re-optimization (the single-session acceptance check).
#[test]
fn repeat_execution_reports_cache_hit() {
    let server = hospital_server(400);
    let first = server.execute(HOSPITAL_SQL).unwrap();
    assert!(!first.cache_hit);
    assert!(first.prepared.prepare_time > Duration::ZERO);
    let second = server.execute(HOSPITAL_SQL).unwrap();
    assert!(second.cache_hit, "second execution must reuse the plan");
    assert!(Arc::ptr_eq(&first.prepared, &second.prepared));
    assert_eq!(first.table.num_rows(), second.table.num_rows());
}

/// A mixed workload across distinct queries and clients: the cache holds
/// one plan per distinct statement, and results stay consistent while a
/// writer hot-swaps the model mid-flight.
#[test]
fn stress_mixed_workload_with_model_updates() {
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 10;

    let server = Arc::new(hospital_server(500));
    let queries: Vec<String> = vec![
        HOSPITAL_SQL.to_string(),
        "SELECT pregnant, COUNT(*) AS n FROM patient_info GROUP BY pregnant".into(),
        "SELECT d.id, p.s FROM PREDICT(MODEL = 'duration_of_stay', DATA = \
         (SELECT * FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id \
          JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) \
         WITH (s FLOAT) AS p ORDER BY s DESC LIMIT 10"
            .into(),
    ];

    let writer = {
        let server = server.clone();
        std::thread::spawn(move || {
            // Two transactional model updates racing the readers.
            for depth in [4usize, 5] {
                std::thread::sleep(Duration::from_millis(5));
                let data = hospital::generate(500, 42);
                let model = train::hospital_tree(&data, depth).unwrap();
                server.store_model("duration_of_stay", model).unwrap();
            }
        })
    };

    let readers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = server.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                for r in 0..ROUNDS {
                    let sql = &queries[(c + r) % queries.len()];
                    let result = server.execute(sql).unwrap();
                    assert!(result.table.num_rows() > 0);
                }
            })
        })
        .collect();
    for h in readers {
        h.join().unwrap();
    }
    writer.join().unwrap();

    let snap = server.stats();
    assert_eq!(snap.queries, (CLIENTS * ROUNDS) as u64);
    assert_eq!(snap.errors, 0);
    // Baseline: 3 distinct statements + 2 model updates invalidating the
    // 2 PREDICT statements = 7 optimizer passes. Two effects can add a
    // few more: a preparation that straddles an invalidation is served
    // but deliberately not cached (the next execution prepares again),
    // and counted lookups can exceed the 60 executions (a client blocked
    // on single-flight counts a miss, then a hit once the plan lands).
    // The invariant worth asserting is that re-optimization stays rare.
    assert!(
        snap.plan_cache.preparations <= 7 + 2 * 2,
        "too much re-optimization: {}",
        snap.plan_cache
    );
    assert!(
        snap.plan_cache.hits >= (CLIENTS * ROUNDS) as u64 * 3 / 4,
        "cache absorbed too little: {}",
        snap.plan_cache
    );
}

/// Point-scoring through the micro-batcher from many threads agrees with
/// a served SQL PREDICT over the same rows.
#[test]
fn micro_batched_point_scores_agree_with_sql() {
    let mut config = ServerConfig::for_tests();
    config.batch = BatchConfig::fixed(32, Duration::from_millis(20));
    let server = Arc::new(ServerState::new(config));
    let data = hospital::generate(64, 7);
    data.register(server.catalog()).unwrap();
    let model = train::hospital_tree(&data, 5).unwrap();
    // Raw feature rows in step order, encoded the way the pipeline's own
    // transforms encode raw inputs (categoricals become indices).
    let joined = data.joined_batch();
    let columns: Vec<Vec<f64>> = model
        .steps()
        .iter()
        .map(|step| {
            let col = joined.column_by_name(&step.column).unwrap();
            step.transform.encode_raw(col).unwrap()
        })
        .collect();
    server.store_model("duration_of_stay", model).unwrap();

    // SQL-side reference scores over the joined rows.
    let sql_result = server
        .execute(
            "SELECT d.id, p.s FROM PREDICT(MODEL = 'duration_of_stay', DATA = \
             (SELECT * FROM patient_info AS pi JOIN blood_tests AS bt ON pi.id = bt.id \
              JOIN prenatal_tests AS pt ON bt.id = pt.id) AS d) WITH (s FLOAT) AS p",
        )
        .unwrap();
    let ids = sql_result
        .table
        .column_by_name("d.id")
        .unwrap()
        .i64_values()
        .unwrap()
        .to_vec();
    let reference = sql_result
        .table
        .column_by_name("p.s")
        .unwrap()
        .f64_values()
        .unwrap()
        .to_vec();

    let handles: Vec<_> = ids
        .iter()
        .map(|&id| {
            let server = server.clone();
            let row: Vec<f64> = columns.iter().map(|c| c[id as usize]).collect();
            std::thread::spawn(move || server.score_row("duration_of_stay", row).unwrap())
        })
        .collect();
    for (h, &expected) in handles.into_iter().zip(&reference) {
        let got = h.join().unwrap();
        assert!(
            (got - expected).abs() < 1e-9,
            "point score {got} != SQL score {expected}"
        );
    }

    let stats = server.batcher_stats();
    assert_eq!(stats.requests, ids.len() as u64);
    assert!(
        stats.batches < stats.requests,
        "requests must coalesce: {} batches for {} requests",
        stats.batches,
        stats.requests
    );
}

/// Server errors surface per-request without poisoning shared state.
#[test]
fn errors_do_not_poison_the_server() {
    let server = Arc::new(hospital_server(500));
    let bad: Vec<_> = (0..4)
        .map(|_| {
            let server = server.clone();
            std::thread::spawn(move || {
                assert!(matches!(
                    server.execute("SELECT * FROM no_such_table"),
                    Err(ServerError::Sql(_))
                ));
            })
        })
        .collect();
    for h in bad {
        h.join().unwrap();
    }
    // Healthy traffic still flows.
    let result = server.execute(HOSPITAL_SQL).unwrap();
    assert!(result.table.num_rows() > 0);
    assert_eq!(server.stats().errors, 4);
}
