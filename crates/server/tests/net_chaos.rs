//! Chaos and fault injection against the readiness-polling reactor:
//! mid-stream disconnects, slowloris partial frames, duplicate request
//! ids, garbage framing, and deadlines expiring between chunks. After
//! every abuse the server must still accept new connections and serve
//! them — asserted over the wire, via the `Stats` frame — with no
//! leaked reactor registrations, executor threads, or in-flight budget.

use raven_data::{Column, DataType, Schema, Table};
use raven_datagen::{hospital, train};
use raven_server::proto::{self, read_frame, write_frame, Request, Response};
use raven_server::{
    NetConfig, PipelinedClient, RavenClient, RavenServer, ServerConfig, ServerError, ServerState,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const HOSPITAL_SQL: &str = "\
    WITH data AS (\
      SELECT * FROM patient_info AS pi \
      JOIN blood_tests AS bt ON pi.id = bt.id \
      JOIN prenatal_tests AS pt ON bt.id = pt.id)\
    SELECT d.id, p.length_of_stay \
    FROM PREDICT(MODEL = 'duration_of_stay', DATA = data AS d) \
    WITH (length_of_stay FLOAT) AS p \
    WHERE d.pregnant = 1 AND p.length_of_stay > 6";

fn hospital_state(rows: usize) -> Arc<ServerState> {
    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let data = hospital::generate(rows, 42);
    data.register(state.catalog()).unwrap();
    let model = train::hospital_tree(&data, 6).unwrap();
    state.store_model("duration_of_stay", model).unwrap();
    state
}

fn spawn(state: Arc<ServerState>, config: NetConfig) -> RavenServer {
    RavenServer::bind(state, config).expect("bind ephemeral listener")
}

fn small_net(workers: usize) -> NetConfig {
    NetConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        max_connections: 32,
        poll_interval: Duration::from_millis(10),
        ..NetConfig::default()
    }
}

/// A wide table whose full scan encodes to tens of megabytes — enough
/// to overwhelm both kernel socket buffers when a reader stalls.
fn bulky_state(rows: usize) -> Arc<ServerState> {
    let state = Arc::new(ServerState::new(ServerConfig::for_tests()));
    let payload: String = "x".repeat(1024);
    let table = Table::try_new(
        Schema::from_pairs(&[("id", DataType::Int64), ("blob", DataType::Utf8)]).into_shared(),
        vec![
            Column::Int64((0..rows as i64).collect()),
            Column::Utf8(vec![payload; rows]),
        ],
    )
    .unwrap();
    state.register_table("bulk", table).unwrap();
    state
}

/// Clients that vanish mid-stream — after submitting, after the first
/// bytes of a streamed reply, with requests still executing — must not
/// leak anything: the same small executor pool keeps serving fresh
/// connections afterwards, and the wire-visible counters reconcile.
#[test]
fn mid_stream_disconnects_free_reactor_slots_and_budget() {
    const ROUNDS: usize = 10;

    // Two executors: a single leaked stream would halve the pool; two
    // leaks would deadlock this test.
    let server = spawn(hospital_state(500), small_net(2));
    let addr = server.local_addr();

    // Round 0 establishes the expected result and warms the caches.
    let expected = RavenClient::connect(addr)
        .unwrap()
        .query(HOSPITAL_SQL)
        .unwrap()
        .table;

    for round in 0..ROUNDS {
        let mut doomed = PipelinedClient::connect(addr).unwrap();
        for _ in 0..4 {
            doomed.submit(HOSPITAL_SQL, None).unwrap();
        }
        doomed.flush().unwrap(); // the submits must reach the wire
        if round % 2 == 0 {
            // Half the rounds read a partial reply first, so the
            // disconnect lands mid-stream rather than pre-stream.
            let (_, reply) = doomed.recv().unwrap();
            assert_eq!(reply.unwrap().table, expected);
        }
        drop(doomed); // vanish with work still in flight

        // The server keeps serving new connections after every abuse.
        let mut healthy = RavenClient::connect(addr).unwrap();
        assert_eq!(
            healthy.query(HOSPITAL_SQL).unwrap().table,
            expected,
            "round {round}: server degraded after a mid-stream disconnect"
        );
    }

    let stats = RavenClient::connect(addr).unwrap().stats().unwrap();
    // Every query the healthy clients saw is counted; the abandoned
    // requests either completed (their frames went nowhere) or were
    // cancelled — none may be double-counted or lost as phantom errors.
    assert!(stats.queries >= (1 + ROUNDS) as u64);
    assert_eq!(stats.admitted, stats.queries);
    server.shutdown();
}

/// Slowloris: connections that trickle partial frames hold no executor
/// hostage. With a single executor thread, eight stalled half-frames
/// must not delay a well-behaved client — the reactor just buffers the
/// partial bytes. When the stragglers eventually finish their frames,
/// they get correct replies; one that disconnects mid-frame is simply
/// forgotten.
#[test]
fn slowloris_partial_frames_do_not_starve_the_pool() {
    const LORIS: usize = 8;

    let server = spawn(hospital_state(400), small_net(1));
    let addr = server.local_addr();
    let expected = RavenClient::connect(addr)
        .unwrap()
        .query(HOSPITAL_SQL)
        .unwrap()
        .table;

    // Each slowloris sends only half its query frame, then stalls.
    let frame = Request::Query {
        sql: HOSPITAL_SQL.into(),
        tenant: "default".into(),
        deadline: None,
    }
    .encode_with_id(9);
    let mut stragglers: Vec<TcpStream> = (0..LORIS)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&frame[..frame.len() / 2]).unwrap();
            s.flush().unwrap();
            s
        })
        .collect();

    // The lone executor is idle: a clean client gets served promptly
    // even though eight connections are mid-frame.
    let mut healthy = RavenClient::connect(addr).unwrap();
    healthy
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for _ in 0..3 {
        assert_eq!(healthy.query(HOSPITAL_SQL).unwrap().table, expected);
    }

    // One straggler dies mid-frame; the rest complete and are served.
    let deserter = stragglers.pop().unwrap();
    drop(deserter);
    for s in &mut stragglers {
        s.write_all(&frame[frame.len() / 2..]).unwrap();
        s.flush().unwrap();
    }
    for s in &mut stragglers {
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut parts = Vec::new();
        loop {
            let body = read_frame(s).unwrap();
            let (response, _, id) = Response::decode_framed(&body).unwrap();
            assert_eq!(id, 9, "reply must echo the slowloris request id");
            match response {
                Response::RowsChunk { table } => parts.push((*table).clone()),
                Response::RowsEnd { total_rows, .. } => {
                    let table = Table::concat(&parts).unwrap();
                    assert_eq!(table.num_rows() as u64, total_rows);
                    assert_eq!(table, expected);
                    break;
                }
                other => panic!("unexpected reply to completed slowloris: {other:?}"),
            }
        }
    }
    server.shutdown();
}

/// Framing abuse gets a typed error, never a hang or a crash: garbage
/// length prefixes and truncated frames answer `Protocol` and close;
/// a duplicate in-flight request id answers `Protocol` for that id
/// while the original request still completes on the same connection.
#[test]
fn garbage_truncation_and_duplicate_ids_answer_typed_errors() {
    let server = spawn(hospital_state(300), small_net(2));
    let addr = server.local_addr();
    let expected = RavenClient::connect(addr)
        .unwrap()
        .query(HOSPITAL_SQL)
        .unwrap()
        .table;

    // Oversized length prefix → typed Protocol error, then EOF.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&(proto::MAX_FRAME_LEN + 1).to_le_bytes())
        .unwrap();
    s.write_all(&[6u8, 0x02]).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let body = read_frame(&mut s).unwrap();
    match Response::decode_framed(&body).unwrap().0 {
        Response::Error { code, .. } => assert_eq!(code, raven_server::ErrorCode::Protocol),
        other => panic!("oversized frame must answer a typed error: {other:?}"),
    }
    assert!(
        read_frame(&mut s).is_err(),
        "framing can no longer be trusted: the server must close"
    );

    // A structurally valid frame with a truncated payload → typed
    // Protocol error, then close.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut wire = Request::Shutdown.encode_with_id(1);
    wire.truncate(wire.len() - 1); // cut inside the (empty) payload…
    let cut = wire.len() as u32 - 4;
    wire[..4].copy_from_slice(&cut.to_le_bytes()); // …but keep the length honest
                                                   // A truncated v6 header (id bytes cut short) cannot decode.
    s.write_all(&wire).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let body = read_frame(&mut s).unwrap();
    match Response::decode_framed(&body).unwrap().0 {
        Response::Error { code, .. } => assert_eq!(code, raven_server::ErrorCode::Protocol),
        other => panic!("truncated frame must answer a typed error: {other:?}"),
    }

    // Duplicate in-flight id: both frames written in one segment, so
    // the reactor parses the second while the first is still executing.
    // The duplicate answers Protocol carrying the id; the original
    // still completes; the connection survives. The query must be
    // result-cache *cold* here: a warm one is answered inline by the
    // reactor's fast path and never occupies an in-flight slot, making
    // the second frame a legitimate (sequential) reuse of the id.
    let cold_sql = format!("{HOSPITAL_SQL}.5");
    let query = Request::Query {
        sql: cold_sql.clone(),
        tenant: "default".into(),
        deadline: None,
    };
    let mut doubled = query.encode_with_id(7);
    doubled.extend_from_slice(&query.encode_with_id(7));
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&doubled).unwrap();
    s.flush().unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut saw_dup_error = false;
    let mut parts = Vec::new();
    loop {
        let body = read_frame(&mut s).unwrap();
        let (response, _, id) = Response::decode_framed(&body).unwrap();
        assert_eq!(id, 7);
        match response {
            Response::Error { code, message } => {
                assert_eq!(code, raven_server::ErrorCode::Protocol);
                assert!(
                    message.contains("already in flight"),
                    "duplicate-id error must say so: {message}"
                );
                saw_dup_error = true;
            }
            Response::RowsChunk { table } => parts.push((*table).clone()),
            Response::RowsEnd { total_rows, .. } => {
                let table = Table::concat(&parts).unwrap();
                assert_eq!(table.num_rows() as u64, total_rows);
                let oracle = RavenClient::connect(addr)
                    .unwrap()
                    .query(&cold_sql)
                    .unwrap()
                    .table;
                assert_eq!(table, oracle, "the original request must complete");
                break;
            }
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert!(saw_dup_error, "the duplicate id must answer Protocol");

    // After all that abuse: fresh connections still served, counters
    // still reachable over the wire.
    let mut healthy = RavenClient::connect(addr).unwrap();
    assert_eq!(healthy.query(HOSPITAL_SQL).unwrap().table, expected);
    let stats = healthy.stats().unwrap();
    assert!(stats.queries >= 3);
    server.shutdown();
}

/// A deadline that expires between chunks — because the peer stopped
/// reading and the write-queue watermark paused the stream — must abort
/// the stream with a typed `DeadlineExceeded`, free the executor and
/// the in-flight budget slot, and leave both the connection and the
/// server fully usable.
#[test]
fn deadline_expiry_between_chunks_frees_the_stream() {
    // ~34 MiB of result against a 64 KiB watermark: the stream must
    // pause at the gate long before the kernel can absorb it, and sit
    // there when the deadline fires.
    let server = spawn(
        bulky_state(32_000),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            max_connections: 8,
            poll_interval: Duration::from_millis(10),
            chunk_rows: 512,
            max_conn_backlog_bytes: 64 * 1024,
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut client = PipelinedClient::connect(addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let id = client
        .submit("SELECT * FROM bulk", Some(Duration::from_millis(500)))
        .unwrap();
    client.flush().unwrap(); // start the stream before stalling
                             // Stall without reading until the deadline has long expired.
    std::thread::sleep(Duration::from_millis(1500));

    // Now drain: some chunks, then the typed mid-stream error.
    let (got, reply) = client.recv().unwrap();
    assert_eq!(got, id);
    match reply {
        Err(ServerError::DeadlineExceeded(msg)) => {
            assert!(
                msg.contains("mid-stream"),
                "the error must say the stream was cut: {msg}"
            );
        }
        Err(other) => panic!("expected DeadlineExceeded, got: {other}"),
        Ok(reply) => panic!(
            "a stalled reader with a 500ms deadline cannot receive all \
             {} rows",
            reply.table.num_rows()
        ),
    }

    // The budget slot is free: the same connection serves again (a
    // small slice this time), and so do fresh connections.
    let id2 = client
        .submit("SELECT id FROM bulk WHERE id < 10", None)
        .unwrap();
    let (got2, reply2) = client.recv().unwrap();
    assert_eq!(got2, id2);
    assert_eq!(reply2.unwrap().table.num_rows(), 10);

    let mut fresh = RavenClient::connect(addr).unwrap();
    assert_eq!(
        fresh
            .query("SELECT id FROM bulk WHERE id < 5")
            .unwrap()
            .table
            .num_rows(),
        5
    );
    let stats = fresh.stats().unwrap();
    assert_eq!(stats.admitted, stats.queries);
    server.shutdown();
}

/// Wire-level shutdown under chaos: request shutdown while streams are
/// mid-flight and slowloris connections hold partial frames — the join
/// must complete (bounded grace), not hang.
#[test]
fn shutdown_with_inflight_streams_and_partial_frames_joins() {
    let server = spawn(hospital_state(400), small_net(2));
    let addr = server.local_addr();

    // A couple of stalled partial frames…
    let frame = Request::Query {
        sql: HOSPITAL_SQL.into(),
        tenant: "default".into(),
        deadline: None,
    }
    .encode_with_id(3);
    let _loris: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&frame[..10]).unwrap();
            s
        })
        .collect();
    // …and a pipelined batch in flight, never read.
    let mut busy = PipelinedClient::connect(addr).unwrap();
    for _ in 0..8 {
        busy.submit(HOSPITAL_SQL, None).unwrap();
    }
    busy.flush().unwrap();

    let mut killer = RavenClient::connect(addr).unwrap();
    killer.shutdown_server().unwrap();
    server.shutdown(); // must join within the grace period, not hang

    // No half-dead acceptor afterwards: a new connection either refuses
    // outright or fails its round-trip.
    let dead = match TcpStream::connect(addr) {
        Err(_) => true, // refused — the listener is gone
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write_frame(&mut s, &frame).is_err() || read_frame(&mut s).is_err()
        }
    };
    assert!(dead, "a shut-down server must not serve");
}
