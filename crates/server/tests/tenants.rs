//! Differential cross-tenant isolation: two tenants holding same-named
//! models and tables with *different contents* must always get their own
//! results — under interleaving, caching, and mutation — and a mutation
//! in one tenant must invalidate zero cache entries in the other.
//!
//! The test is differential: every tenant query is checked against an
//! isolated single-tenant oracle server built from the same data, so a
//! cross-tenant leak (wrong model bound, wrong table scanned, wrong
//! cached result replayed) shows up as a row-level mismatch, not just a
//! counter drift.

use raven_data::{Column, DataType, Schema, Table};
use raven_ml::featurize::Transform;
use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
use raven_server::{ServerConfig, ServerState, TenantQuotaConfig};
use std::sync::Arc;

fn linear(w: Vec<f64>, b: f64) -> Pipeline {
    let steps = (0..w.len())
        .map(|i| FeatureStep::new(format!("x{i}"), Transform::Identity))
        .collect();
    Pipeline::new(
        steps,
        Estimator::Linear(LinearModel::new(w, b, LinearKind::Regression).unwrap()),
    )
    .unwrap()
}

fn table_of(n: i64) -> Table {
    Table::try_new(
        Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
        vec![Column::Float64((0..n).map(|i| i as f64).collect())],
    )
    .unwrap()
}

/// One tenant's ground truth: its own single-tenant server over the same
/// data. If the multi-tenant server ever crosses a wire, it diverges
/// from this oracle.
struct Oracle {
    server: ServerState,
}

impl Oracle {
    fn new(rows: i64, weight: f64, bias: f64) -> Oracle {
        let server = ServerState::new(ServerConfig::for_tests());
        server.register_table("t", table_of(rows)).unwrap();
        server.store_model("m", linear(vec![weight], bias)).unwrap();
        Oracle { server }
    }
}

const SQL: &str =
    "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p WHERE p.s > 10";

/// The acceptance scenario: same-named models/tables of different
/// contents in two tenants, interleaved hot queries, always the tenant's
/// own results — byte-compared against per-tenant oracles.
#[test]
fn same_named_objects_always_get_their_own_results() {
    let server = ServerState::new(ServerConfig::for_tests());
    // alpha: identity over 100 rows; beta: ×3 over 40 rows. Same names.
    let specs = [("alpha", 100i64, 1.0, 0.0), ("beta", 40, 3.0, 0.0)];
    let mut oracles = Vec::new();
    for (tenant, rows, w, b) in specs {
        server
            .register_table_in(tenant, "t", table_of(rows))
            .unwrap();
        server
            .store_model_in(tenant, "m", linear(vec![w], b))
            .unwrap();
        oracles.push((tenant, Oracle::new(rows, w, b)));
    }
    // Interleave repeatedly so both plan and result caches are hot in
    // both tenants while the other tenant keeps querying.
    for round in 0..6 {
        for (tenant, oracle) in &oracles {
            let ours = server.execute_in(tenant, SQL).unwrap();
            let truth = oracle.server.execute(SQL).unwrap();
            assert_eq!(
                ours.table, truth.table,
                "round {round}: tenant {tenant} diverged from its oracle"
            );
            if round > 0 {
                assert!(ours.cache_hit, "round {round}: plan must be cached");
                assert!(
                    ours.result_cache_hit,
                    "round {round}: result must be memoized per tenant"
                );
            }
        }
    }
    // One optimizer pass and one execution per tenant, not per request.
    for (tenant, _) in &oracles {
        let stats = server.tenant_stats(tenant).unwrap();
        assert_eq!(stats.plan_cache.preparations, 1, "tenant {tenant}");
        assert_eq!(stats.result_cache.executions, 1, "tenant {tenant}");
        assert_eq!(stats.queries, 6, "tenant {tenant}");
    }
}

/// Mutation isolation: swapping a model (and replacing a table) in one
/// tenant invalidates zero entries in the other tenant, whose repeats
/// keep hitting — and both tenants remain oracle-correct afterwards.
#[test]
fn mutations_in_one_tenant_invalidate_nothing_elsewhere() {
    let server = ServerState::new(ServerConfig::for_tests());
    for tenant in ["alpha", "beta"] {
        server
            .register_table_in(tenant, "t", table_of(100))
            .unwrap();
        server
            .store_model_in(tenant, "m", linear(vec![1.0], 0.0))
            .unwrap();
    }
    // Warm both tenants' caches.
    assert_eq!(
        server.execute_in("alpha", SQL).unwrap().table.num_rows(),
        89
    );
    assert_eq!(server.execute_in("beta", SQL).unwrap().table.num_rows(), 89);

    // Swap alpha's model (+100 to every score) and replace alpha's table.
    server
        .store_model_in("alpha", "m", linear(vec![1.0], 100.0))
        .unwrap();
    server.replace_table_in("alpha", "t", table_of(30)).unwrap();

    // Alpha re-prepares and re-executes with the new objects…
    let alpha = server.execute_in("alpha", SQL).unwrap();
    assert!(!alpha.cache_hit && !alpha.result_cache_hit);
    assert_eq!(alpha.table.num_rows(), 30, "every biased score passes");
    // …while beta's entries survived untouched and still hit.
    let beta = server.execute_in("beta", SQL).unwrap();
    assert!(beta.cache_hit, "beta's plan must survive alpha's mutations");
    assert!(
        beta.result_cache_hit,
        "beta's memoized result must survive alpha's mutations"
    );
    assert_eq!(beta.table.num_rows(), 89);

    let alpha_stats = server.tenant_stats("alpha").unwrap();
    let beta_stats = server.tenant_stats("beta").unwrap();
    // Counters count dropped *entries*: the model swap drops alpha's one
    // plan and one memoized result; the table replace then finds nothing
    // left to drop.
    assert_eq!(alpha_stats.plan_cache.invalidations, 1);
    assert_eq!(alpha_stats.result_cache.invalidations, 1);
    assert_eq!(beta_stats.plan_cache.invalidations, 0, "cross-tenant leak");
    assert_eq!(
        beta_stats.result_cache.invalidations, 0,
        "cross-tenant leak"
    );
}

/// Concurrent hot traffic in N tenants with a writer hammering one of
/// them: reader tenants never see an invalidation, a miss after warm-up,
/// or a wrong row count.
#[test]
fn concurrent_tenants_do_not_share_fate() {
    const READER_TENANTS: [&str; 3] = ["r0", "r1", "r2"];
    const QUERIES: usize = 40;
    let server = Arc::new(ServerState::new(ServerConfig::for_tests()));
    for (i, tenant) in READER_TENANTS.iter().enumerate() {
        let rows = 20 + 10 * i as i64;
        server
            .register_table_in(tenant, "t", table_of(rows))
            .unwrap();
        server
            .store_model_in(tenant, "m", linear(vec![1.0], 0.0))
            .unwrap();
    }
    server
        .register_table_in("writer", "t", table_of(100))
        .unwrap();
    server
        .store_model_in("writer", "m", linear(vec![1.0], 0.0))
        .unwrap();

    let readers: Vec<_> = READER_TENANTS
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let server = server.clone();
            std::thread::spawn(move || {
                let expect = (20 + 10 * i as i64 - 11).max(0) as usize;
                for q in 0..QUERIES {
                    let result = server.execute_in(tenant, SQL).unwrap();
                    assert_eq!(
                        result.table.num_rows(),
                        expect,
                        "tenant {tenant} query {q} saw foreign data"
                    );
                }
            })
        })
        .collect();
    let writer = {
        let server = server.clone();
        std::thread::spawn(move || {
            for i in 0..10 {
                server
                    .store_model_in("writer", "m", linear(vec![1.0], i as f64))
                    .unwrap();
                server.execute_in("writer", SQL).unwrap();
            }
        })
    };
    for handle in readers {
        handle.join().expect("reader tenant failed");
    }
    writer.join().expect("writer tenant failed");
    for tenant in READER_TENANTS {
        let stats = server.tenant_stats(tenant).unwrap();
        assert_eq!(
            stats.result_cache.invalidations, 0,
            "writer's swaps leaked into {tenant}"
        );
        assert_eq!(stats.plan_cache.preparations, 1, "{tenant} re-prepared");
        assert_eq!(stats.errors, 0);
    }
    // The writer's first swap found an empty cache; each of the other 9
    // dropped the result its preceding execution memoized.
    assert_eq!(
        server
            .tenant_stats("writer")
            .unwrap()
            .result_cache
            .invalidations,
        9,
        "each writer swap invalidates its own entry"
    );
}

/// Quotas bound the noisy tenant in-process too (the TCP version lives
/// in `tenant_net.rs`): with `noisy` holding its whole strict quota,
/// `quiet` keeps being admitted; nothing in `quiet`'s outcome counters
/// ever shows a rejection.
#[test]
fn per_tenant_quota_only_rejects_its_own_tenant() {
    let mut config = ServerConfig::for_tests();
    config.tenant_quota = TenantQuotaConfig::strict(1);
    let server = ServerState::new(config);
    for tenant in ["noisy", "quiet"] {
        server.register_table_in(tenant, "t", table_of(50)).unwrap();
        server
            .store_model_in(tenant, "m", linear(vec![1.0], 0.0))
            .unwrap();
    }
    let noisy = server.tenant("noisy").unwrap();
    let _held = noisy.quota().admit(None).unwrap(); // saturate noisy's quota
    for _ in 0..5 {
        assert!(server.serve_in("noisy", SQL, None).is_err());
        assert!(server.serve_in("quiet", SQL, None).is_ok());
    }
    let noisy_stats = server.tenant_stats("noisy").unwrap();
    let quiet_stats = server.tenant_stats("quiet").unwrap();
    assert_eq!(noisy_stats.admission.rejected_overloaded, 5);
    assert_eq!(noisy_stats.admission.admitted, 0);
    assert_eq!(quiet_stats.admission.admitted, 5);
    assert_eq!(quiet_stats.admission.rejected_overloaded, 0);
    assert_eq!(quiet_stats.queries, 5);
}
