//! Admission control and backpressure for the serving layer.
//!
//! Under saturating load, the worst failure mode is not rejection — it
//! is *stalling*: every request queues, every latency balloons, and the
//! client can't tell a slow server from a dead one. The controller here
//! makes overload explicit instead:
//!
//! * a **bounded concurrent-execution semaphore**
//!   ([`AdmissionConfig::max_concurrent`]) caps how many queries execute
//!   at once;
//! * a **bounded wait queue** ([`AdmissionConfig::max_queued`], timed by
//!   [`AdmissionConfig::queue_timeout`]) absorbs short bursts; anything
//!   beyond it is rejected immediately with a typed
//!   [`ServerError::Overloaded`];
//! * **per-request deadlines** are honored while queued — a request
//!   whose deadline expires waiting for a permit is rejected with
//!   [`ServerError::DeadlineExceeded`] without ever executing.
//!
//! The network layer adds the outer rings: a connection cap in
//! [`crate::net::NetConfig`], and a per-connection pipelining budget
//! ([`crate::net::NetConfig::max_inflight_per_conn`]) — the reactor
//! stops parsing a v6 connection that has that many requests executing,
//! so a pipelining peer cannot queue unbounded work (pre-v6 peers are
//! always served one frame in flight). Every pipelined request still
//! passes both admission rings here; the reactor's cached-result fast
//! path merely probes them non-blockingly ([`AdmissionController::try_admit`])
//! instead of waiting.

use crate::error::ServerError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission-control knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum queries executing concurrently (0 = unlimited).
    pub max_concurrent: usize,
    /// Maximum requests waiting for an execution permit; arrivals beyond
    /// this are rejected `Overloaded` immediately.
    pub max_queued: usize,
    /// Longest a request may wait for a permit before rejection.
    pub queue_timeout: Duration,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: 0,
            max_queued: 64,
            queue_timeout: Duration::from_millis(100),
            default_deadline: None,
        }
    }
}

impl AdmissionConfig {
    /// A strict limiter: at most `max_concurrent` executions, no waiting
    /// room — everything beyond the limit rejects immediately.
    pub fn strict(max_concurrent: usize) -> Self {
        AdmissionConfig {
            max_concurrent,
            max_queued: 0,
            queue_timeout: Duration::ZERO,
            default_deadline: None,
        }
    }
}

/// Counters exposed by [`AdmissionController::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Permits granted.
    pub admitted: u64,
    /// Rejections because the queue was full or the wait timed out.
    pub rejected_overloaded: u64,
    /// Rejections because the request's deadline expired before a permit
    /// was granted.
    pub rejected_deadline: u64,
}

impl std::ops::AddAssign for AdmissionStats {
    fn add_assign(&mut self, other: Self) {
        self.admitted += other.admitted;
        self.rejected_overloaded += other.rejected_overloaded;
        self.rejected_deadline += other.rejected_deadline;
    }
}

#[derive(Default)]
struct Waitable {
    executing: usize,
    queued: usize,
}

/// The bounded concurrent-execution semaphore. All methods take `&self`;
/// share it behind the owning [`crate::ServerState`].
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<Waitable>,
    freed: Condvar,
    admitted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_deadline: AtomicU64,
}

/// An execution permit; dropping it releases the slot and wakes one
/// queued waiter.
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut s = self
            .controller
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        s.executing = s.executing.saturating_sub(1);
        drop(s);
        self.controller.freed.notify_one();
    }
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            state: Mutex::new(Waitable::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Currently executing requests.
    pub fn executing(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .executing
    }

    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
        }
    }

    /// Non-blocking permit acquisition for latency-critical callers (the
    /// reactor's cached-result fast path). Takes a permit only when a slot
    /// is free right now; `None` means "fall back to the queued path".
    /// Counts **nothing** either way — an abandoned probe (the sibling
    /// ring was busy) must leave no trace, so the caller records the
    /// admission via `note_admitted` only once it commits.
    pub fn try_admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.config.max_concurrent == 0 || s.executing < self.config.max_concurrent {
            s.executing += 1;
            return Some(AdmissionPermit { controller: self });
        }
        None
    }

    /// Count an admission taken via [`Self::try_admit`] once the caller
    /// commits to serving under it, keeping `admitted` identical in
    /// meaning to the [`Self::admit`] path.
    pub(crate) fn note_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Acquire an execution permit, waiting at most
    /// [`AdmissionConfig::queue_timeout`] (and never past `deadline`).
    /// Rejections are typed: queue full / wait timed out →
    /// [`ServerError::Overloaded`]; deadline hit →
    /// [`ServerError::DeadlineExceeded`].
    pub fn admit(&self, deadline: Option<Instant>) -> Result<AdmissionPermit<'_>, ServerError> {
        if let Some(at) = deadline {
            if Instant::now() >= at {
                self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                return Err(ServerError::DeadlineExceeded(
                    "deadline expired before admission".into(),
                ));
            }
        }
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.config.max_concurrent == 0 || s.executing < self.config.max_concurrent {
            s.executing += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit { controller: self });
        }
        // Saturated: queue if there is room, else reject immediately.
        if s.queued >= self.config.max_queued {
            self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Overloaded(format!(
                "{} executing, {} queued (limit {}/{})",
                s.executing, s.queued, self.config.max_concurrent, self.config.max_queued
            )));
        }
        s.queued += 1;
        let wait_started = Instant::now();
        let outcome = loop {
            if s.executing < self.config.max_concurrent {
                s.executing += 1;
                break Ok(());
            }
            let waited = wait_started.elapsed();
            if waited >= self.config.queue_timeout {
                break Err(ServerError::Overloaded(format!(
                    "timed out after {waited:?} waiting for an execution permit"
                )));
            }
            let mut budget = self.config.queue_timeout - waited;
            if let Some(at) = deadline {
                let now = Instant::now();
                if now >= at {
                    break Err(ServerError::DeadlineExceeded(
                        "deadline expired while queued for admission".into(),
                    ));
                }
                budget = budget.min(at - now);
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(s, budget)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s = guard;
        };
        s.queued -= 1;
        drop(s);
        match outcome {
            Ok(()) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(AdmissionPermit { controller: self })
            }
            Err(e) => {
                match &e {
                    ServerError::DeadlineExceeded(_) => {
                        self.rejected_deadline.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => self.rejected_overloaded.fetch_add(1, Ordering::Relaxed),
                };
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_admits_everything() {
        let c = AdmissionController::new(AdmissionConfig::default());
        let p1 = c.admit(None).unwrap();
        let p2 = c.admit(None).unwrap();
        assert_eq!(c.executing(), 2);
        drop((p1, p2));
        assert_eq!(c.executing(), 0);
        assert_eq!(c.stats().admitted, 2);
    }

    #[test]
    fn strict_limit_rejects_typed_overloaded() {
        let c = AdmissionController::new(AdmissionConfig::strict(1));
        let held = c.admit(None).unwrap();
        assert!(matches!(c.admit(None), Err(ServerError::Overloaded(_))));
        drop(held);
        // Slot free again.
        assert!(c.admit(None).is_ok());
        let stats = c.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected_overloaded, 1);
    }

    #[test]
    fn queued_waiter_gets_the_released_slot() {
        let c = Arc::new(AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 1,
            queue_timeout: Duration::from_secs(5),
            default_deadline: None,
        }));
        let held = c.admit(None).unwrap();
        let waiter = {
            let c = c.clone();
            std::thread::spawn(move || {
                let permit = c.admit(None);
                permit.is_ok()
            })
        };
        // Give the waiter time to enqueue, then release.
        std::thread::sleep(Duration::from_millis(50));
        drop(held);
        assert!(waiter.join().unwrap(), "queued waiter must be admitted");
        assert_eq!(c.stats().admitted, 2);
    }

    #[test]
    fn queue_wait_times_out_overloaded() {
        let c = AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 4,
            queue_timeout: Duration::from_millis(20),
            default_deadline: None,
        });
        let _held = c.admit(None).unwrap();
        let start = Instant::now();
        assert!(matches!(c.admit(None), Err(ServerError::Overloaded(_))));
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(c.stats().rejected_overloaded, 1);
    }

    #[test]
    fn expired_deadline_rejects_before_and_while_queued() {
        let c = AdmissionController::new(AdmissionConfig {
            max_concurrent: 1,
            max_queued: 4,
            queue_timeout: Duration::from_secs(5),
            default_deadline: None,
        });
        // Already expired: rejected before touching the queue.
        assert!(matches!(
            c.admit(Some(Instant::now())),
            Err(ServerError::DeadlineExceeded(_))
        ));
        // Expires while queued behind a held permit.
        let _held = c.admit(None).unwrap();
        let at = Instant::now() + Duration::from_millis(20);
        assert!(matches!(
            c.admit(Some(at)),
            Err(ServerError::DeadlineExceeded(_))
        ));
        assert_eq!(c.stats().rejected_deadline, 2);
    }
}
