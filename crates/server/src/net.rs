//! The framed-TCP network front end: a thread-pool accept loop over a
//! shared [`ServerState`].
//!
//! One acceptor thread hands sockets to a fixed pool of handler threads
//! through a channel; each handler owns one connection at a time and
//! speaks the synchronous [`crate::proto`] protocol — read a request
//! frame, serve it, write the response frame. That synchrony is itself a
//! backpressure property: a connection has at most one request in flight,
//! so per-connection queue depth is bounded at 1 by construction, and the
//! global picture is bounded by [`NetConfig::max_connections`] (the outer
//! ring) plus the execution semaphore in [`crate::admission`] (the inner
//! ring). Overflow at either ring answers with a typed `Overloaded`
//! frame instead of stalling the socket.
//!
//! Shutdown is cooperative: [`RavenServer::signal_shutdown`] (or a
//! [`Request::Shutdown`] frame) raises a flag, wakes the acceptor with a
//! loop-back connection, and handlers notice at their next poll tick.

use crate::proto::{self, ProtoError, Request, Response, WireStats};
use crate::state::ServerState;
use crate::stats::StatsSnapshot;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Network front-end knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Handler threads — the maximum connections served concurrently.
    pub workers: usize,
    /// Open connections before new arrivals are turned away with an
    /// `Overloaded` frame. A handler owns its connection for the
    /// connection's lifetime, so a connection beyond the worker pool
    /// would stall unserved: the effective cap is
    /// `min(workers, max_connections)` (0 = `workers`).
    pub max_connections: usize,
    /// How often idle handlers wake to poll the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_connections: 256,
            poll_interval: Duration::from_millis(50),
        }
    }
}

struct Shared {
    state: Arc<ServerState>,
    shutdown: AtomicBool,
    /// Connections accepted and not yet finished (queued + serving).
    active: AtomicUsize,
    addr: SocketAddr,
    poll_interval: Duration,
}

impl Shared {
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor: a throwaway loop-back connection makes its
        // blocking `accept` return so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running TCP server over one shared [`ServerState`].
///
/// Dropping the handle signals shutdown and joins every thread; use
/// [`RavenServer::shutdown`] for an explicit, observable join.
pub struct RavenServer {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RavenServer {
    /// Bind a listener and start the accept loop + handler pool.
    pub fn bind(state: Arc<ServerState>, config: NetConfig) -> io::Result<RavenServer> {
        let listener =
            TcpListener::bind(
                config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "empty bind addr")
                })?,
            )?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            addr,
            poll_interval: config.poll_interval,
        });
        let worker_count = config.workers.max(1);
        // A connection only makes progress while a handler owns it, so
        // accepting beyond the pool would park clients in the hand-off
        // queue with no response — the silent stall this layer exists to
        // prevent. Clamp the cap to the pool size.
        let connection_cap = if config.max_connections == 0 {
            worker_count
        } else {
            config.max_connections.min(worker_count)
        };
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..worker_count)
            .map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("raven-net-worker-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawn net worker")
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("raven-net-accept".into())
                .spawn(move || accept_loop(listener, tx, shared, connection_cap))
                .expect("spawn net acceptor")
        };
        Ok(RavenServer {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared serving state behind this listener.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.shared.state
    }

    /// Ask every thread to stop without blocking on the join.
    pub fn signal_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Signal shutdown and join the acceptor and all handlers.
    pub fn shutdown(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        self.shared.request_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RavenServer {
    fn drop(&mut self) {
        self.join_all();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: mpsc::Sender<TcpStream>,
    shared: Arc<Shared>,
    connection_cap: usize,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Persistent accept failures (fd exhaustion under the
                // very overload this layer handles) must not busy-spin
                // a core; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a straggler) — drop it
        }
        if shared.active.load(Ordering::SeqCst) >= connection_cap {
            // Connection-level backpressure: answer with a typed frame
            // instead of letting the socket queue silently. Done off the
            // accept thread so a slow rejected peer can't stall accepts.
            reject_connection(stream, connection_cap);
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        if tx.send(stream).is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            break; // workers are gone; nothing left to serve
        }
    }
    // `tx` drops here: idle workers see a disconnected queue and exit.
}

/// Turn a connection away with a typed `Overloaded` frame. Closing a
/// socket that still holds unread received bytes sends RST, which can
/// discard the frame before the peer reads it — the client would see a
/// reset instead of the typed rejection. So the write, a short drain of
/// whatever request the peer already pipelined, and the close happen on
/// a detached thread.
fn reject_connection(mut stream: TcpStream, connection_cap: usize) {
    let _ = std::thread::Builder::new()
        .name("raven-net-reject".into())
        .spawn(move || {
            let overloaded = Response::Error {
                code: proto::ErrorCode::Overloaded,
                message: format!("server at its connection limit ({connection_cap})"),
            };
            // No request was read, so the peer's version is unknown:
            // encode at the oldest supported version, which every
            // supported peer (v3 and v4 alike) can decode.
            let frame = overloaded.encode_for_version(proto::MIN_PROTOCOL_VERSION);
            if proto::write_frame(&mut stream, &frame).is_err() {
                return;
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let mut sink = [0u8; 512];
            loop {
                match std::io::Read::read(&mut stream, &mut sink) {
                    Ok(0) | Err(_) => break, // peer closed, or drained enough
                    Ok(_) => continue,
                }
            }
        });
}

fn worker_loop(rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        // Hold the lock only for the dequeue, never while serving.
        let next = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(shared.poll_interval)
        };
        match next {
            Ok(stream) => {
                handle_connection(stream, &shared);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Read one frame with the shutdown flag polled on read timeouts.
enum NetRead {
    Frame(Vec<u8>),
    Eof,
    Shutdown,
    Error(ProtoError),
}

fn read_frame_polled(stream: &mut TcpStream, shared: &Shared) -> NetRead {
    use std::io::Read;
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    // Length prefix, then body — both loops poll shutdown on timeout.
    let read_full = |stream: &mut TcpStream, buf: &mut [u8], got: &mut usize| -> Option<NetRead> {
        while *got < buf.len() {
            match stream.read(&mut buf[*got..]) {
                Ok(0) => {
                    return Some(if *got == 0 {
                        NetRead::Eof
                    } else {
                        NetRead::Error(ProtoError::Truncated)
                    })
                }
                Ok(n) => *got += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Some(NetRead::Shutdown);
                    }
                }
                Err(e) => return Some(NetRead::Error(ProtoError::Io(e.to_string()))),
            }
        }
        None
    };
    if let Some(out) = read_full(stream, &mut len_buf, &mut got) {
        return out;
    }
    let len = u32::from_le_bytes(len_buf);
    if !(2..=proto::MAX_FRAME_LEN).contains(&len) {
        return NetRead::Error(ProtoError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    if let Some(out) = read_full(stream, &mut body, &mut got) {
        return match out {
            NetRead::Eof => NetRead::Error(ProtoError::Truncated),
            out => out,
        };
    }
    NetRead::Frame(body)
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    // Replies carry the version of the request they answer, so a v3 peer
    // round-trips v3 bytes end to end. Until the first request decodes,
    // the peer's version is unknown, so error frames use the *oldest*
    // supported version — its error layout is identical and every
    // supported peer (v3 and v4 alike) can decode it.
    let mut peer_version = proto::MIN_PROTOCOL_VERSION;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let frame = Response::from_error(&crate::ServerError::ShuttingDown)
                .encode_for_version(peer_version);
            let _ = proto::write_frame(&mut stream, &frame);
            break;
        }
        let body = match read_frame_polled(&mut stream, shared) {
            NetRead::Frame(body) => body,
            NetRead::Eof => break,
            NetRead::Shutdown => continue, // top of loop sends the frame
            NetRead::Error(e) => {
                // Protocol confusion: answer once, then drop the
                // connection — framing can no longer be trusted.
                let frame = Response::Error {
                    code: proto::ErrorCode::Protocol,
                    message: e.to_string(),
                }
                .encode_for_version(peer_version);
                let _ = proto::write_frame(&mut stream, &frame);
                break;
            }
        };
        let request = match Request::decode_versioned(&body) {
            Ok((req, version)) => {
                peer_version = version;
                req
            }
            Err(e) => {
                let frame = Response::Error {
                    code: proto::ErrorCode::Protocol,
                    message: e.to_string(),
                }
                .encode_for_version(peer_version);
                let _ = proto::write_frame(&mut stream, &frame);
                break;
            }
        };
        let shutdown_after = matches!(request, Request::Shutdown);
        let response = serve_request(request, shared);
        // A result table too large for one frame becomes a typed error
        // the client can read, not a length the client must reject.
        let frame = response.encode_checked(peer_version).unwrap_or_else(|_| {
            Response::Error {
                code: proto::ErrorCode::Execution,
                message: format!(
                    "result exceeds the {} byte frame cap; narrow the query",
                    proto::MAX_FRAME_LEN
                ),
            }
            .encode_for_version(peer_version)
        });
        if proto::write_frame(&mut stream, &frame).is_err() {
            break;
        }
        if shutdown_after {
            shared.request_shutdown();
            break;
        }
    }
}

fn serve_request(request: Request, shared: &Shared) -> Response {
    let state = &shared.state;
    match request {
        Request::Prepare { sql, tenant } => match state.prepare_in(&tenant, &sql) {
            Ok((prepared, cache_hit)) => Response::Prepared {
                cache_hit,
                prepare_micros: prepared.prepare_time.as_micros() as u64,
            },
            Err(e) => Response::from_error(&e),
        },
        Request::Query {
            sql,
            tenant,
            deadline,
        } => match state.serve_in(&tenant, &sql, deadline) {
            Ok(result) => Response::Rows {
                cache_hit: result.cache_hit,
                total_micros: result.total_time.as_micros() as u64,
                table: result.table,
            },
            Err(e) => Response::from_error(&e),
        },
        Request::QueryParams {
            template,
            tenant,
            params,
            deadline,
        } => match state.serve_with_params_in(&tenant, &template, &params, deadline) {
            Ok(result) => Response::Rows {
                cache_hit: result.cache_hit,
                total_micros: result.total_time.as_micros() as u64,
                table: result.table,
            },
            Err(e) => Response::from_error(&e),
        },
        Request::Score { model, tenant, row } => match state.score_row_in(&tenant, &model, row) {
            Ok(value) => Response::Score { value },
            Err(e) => Response::from_error(&e),
        },
        // An empty tenant asks for the cross-tenant aggregate; a named
        // tenant gets its own counters — zeros if it does not exist yet
        // (observing a tenant must not create one).
        Request::Stats { tenant } => {
            if tenant.is_empty() {
                Response::Stats(wire_stats(&state.stats()))
            } else {
                match state.tenant_stats(&tenant) {
                    Some(snap) => Response::Stats(wire_stats(&snap)),
                    None => Response::Stats(WireStats::default()),
                }
            }
        }
        // Same scoping rule as Stats: empty tenant = aggregate, and
        // observing a tenant must not create one.
        Request::Metrics { tenant } => match state.metrics_text(&tenant) {
            Some(text) => Response::Metrics { text },
            None => Response::Metrics {
                text: String::new(),
            },
        },
        Request::Traces { tenant, limit } => {
            let traces = state
                .slow_queries(&tenant, limit as usize)
                .unwrap_or_default();
            Response::Traces {
                traces: traces.iter().map(|t| (**t).clone()).collect(),
            }
        }
        Request::Shutdown => Response::ShutdownAck,
    }
}

/// Flatten a [`StatsSnapshot`] into the wire-stable counter set.
pub fn wire_stats(snap: &StatsSnapshot) -> WireStats {
    WireStats {
        queries: snap.queries,
        errors: snap.errors,
        rows: snap.rows,
        plan_hits: snap.plan_cache.hits,
        plan_misses: snap.plan_cache.misses,
        preparations: snap.plan_cache.preparations,
        invalidations: snap.plan_cache.invalidations,
        normalized: snap.normalized,
        template_hits: snap.template_hits,
        result_hits: snap.result_cache.hits,
        result_misses: snap.result_cache.misses,
        result_invalidations: snap.result_cache.invalidations,
        batch_requests: snap.batcher.requests,
        batches: snap.batcher.batches,
        admitted: snap.admission.admitted,
        rejected_overloaded: snap.admission.rejected_overloaded,
        rejected_deadline: snap.admission.rejected_deadline,
        latency_p50_micros: snap.latency.p50.as_micros() as u64,
        latency_p95_micros: snap.latency.p95.as_micros() as u64,
        latency_p99_micros: snap.latency.p99.as_micros() as u64,
    }
}
