//! The framed-TCP network front end: a readiness-polling **reactor**
//! over a shared [`ServerState`].
//!
//! One reactor thread owns the listener and every connection socket
//! (non-blocking, registered with a level-triggered [`polling::Poller`])
//! and does all socket I/O: accepting, buffering partial frames, parsing
//! complete ones, and flushing reply queues. Requests are executed by a
//! small pool of **executor threads**; finished frames flow back to the
//! reactor over a completion channel plus a poller wake-up. Connection
//! count is therefore decoupled from thread count: a thousand idle or
//! slow-trickling (slowloris) connections cost a thousand fd
//! registrations, not a thousand threads.
//!
//! # Pipelining and backpressure
//!
//! Protocol v6 peers may keep up to
//! [`NetConfig::max_inflight_per_conn`] requests in flight per
//! connection; replies come back in completion order (out-of-order),
//! matched by the request id in the frame header. Pre-v6 peers keep
//! their historical contract: the reactor serves them one frame at a
//! time, in order, with byte-identical frames.
//!
//! Three rings bound the work in the system:
//!
//! 1. **connections** — [`NetConfig::max_connections`]; arrivals beyond
//!    it get a typed `Overloaded` frame and a drain-then-close;
//! 2. **per-connection in-flight budget** — the reactor stops *parsing*
//!    (and reading) a connection that has `max_inflight_per_conn`
//!    requests executing, so a pipelining peer cannot queue unbounded
//!    work; bytes it already sent simply wait in the kernel socket
//!    buffer;
//! 3. **execution** — the per-tenant quota and the global admission
//!    semaphore in [`crate::admission`], exactly as before: every
//!    pipelined request still passes both rings.
//!
//! Replies are backpressured too: each connection's write queue has a
//! byte watermark ([`NetConfig::max_conn_backlog_bytes`]). `Rows`
//! results for v6 peers stream as bounded [`Response::RowsChunk`]
//! frames, and the executor pauses between chunks while the peer's
//! queue is over the watermark — honoring the request deadline and
//! connection teardown (via [`CancelToken`]) between chunks, so a
//! reader that stalls mid-result can neither OOM the server nor pin an
//! executor forever.
//!
//! Shutdown is cooperative: [`RavenServer::signal_shutdown`] (or a
//! [`Request::Shutdown`] frame) raises a flag and wakes the poller; the
//! reactor stops accepting, flushes what the executors already
//! finished, and tears everything down within a bounded grace period.

use crate::proto::{self, ProtoError, Request, Response, WireStats};
use crate::state::ServerState;
use crate::stats::StatsSnapshot;
use polling::{Event, Poller};
use raven_relational::CancelToken;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Network front-end knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Executor threads — the maximum requests *executing* concurrently.
    /// Connections are not bound by this: the reactor multiplexes any
    /// number of sockets over the pool.
    pub workers: usize,
    /// Open connections before new arrivals are turned away with an
    /// `Overloaded` frame (0 = unlimited).
    pub max_connections: usize,
    /// Reactor wake-up cadence for timer work (drain deadlines,
    /// shutdown polls) and idle-executor shutdown checks.
    pub poll_interval: Duration,
    /// Pipelined requests a v6 connection may have executing at once;
    /// the reactor stops parsing beyond this. Pre-v6 connections are
    /// always served one-in-flight. Minimum 1.
    pub max_inflight_per_conn: usize,
    /// Rows per streamed [`Response::RowsChunk`] frame (v6 replies).
    /// Minimum 1.
    pub chunk_rows: usize,
    /// Write-queue byte watermark per connection: result streaming
    /// pauses (deadline- and cancellation-aware) while a peer's unsent
    /// replies exceed this.
    pub max_conn_backlog_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            max_connections: 256,
            poll_interval: Duration::from_millis(50),
            max_inflight_per_conn: 16,
            chunk_rows: 1024,
            max_conn_backlog_bytes: 4 * 1024 * 1024,
        }
    }
}

/// How long a connection that is closing (rejected, protocol error, or
/// server shutdown) may take to flush + drain before it is torn down.
const DRAIN_DEADLINE: Duration = Duration::from_millis(250);

/// How long shutdown waits for in-flight requests to finish and their
/// replies to flush before tearing the remaining connections down.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Poller key of the listener; connections get keys starting above it.
const KEY_LISTENER: usize = 0;
const KEY_FIRST_CONN: usize = 1;

struct Shared {
    state: Arc<ServerState>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    poller: Arc<Poller>,
    chunk_rows: usize,
    max_conn_backlog_bytes: usize,
}

impl Shared {
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.poller.notify();
    }
}

/// The slice of per-connection state the executors share with the
/// reactor: enough to observe teardown and write-queue pressure from
/// another thread, nothing more.
struct ConnShared {
    /// Cancelled by the reactor when the connection dies (or the server
    /// shuts down); streaming executors abort between chunks.
    cancel: CancelToken,
    /// Bytes sitting in (or en route to) this connection's write queue.
    queued_bytes: AtomicUsize,
    /// Signalled by the reactor after flushing lowered `queued_bytes`.
    capacity: Mutex<()>,
    capacity_cv: Condvar,
}

impl ConnShared {
    fn new() -> Arc<ConnShared> {
        Arc::new(ConnShared {
            cancel: CancelToken::new(),
            queued_bytes: AtomicUsize::new(0),
            capacity: Mutex::new(()),
            capacity_cv: Condvar::new(),
        })
    }

    fn notify_capacity(&self) {
        let _guard = self
            .capacity
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.capacity_cv.notify_all();
    }
}

/// One request dispatched to the executor pool.
struct Job {
    conn_key: usize,
    request_id: u32,
    version: u8,
    request: Request,
    conn: Arc<ConnShared>,
    /// When the reactor parsed the frame — deadlines count from here.
    started: Instant,
}

/// One finished frame (or stream abort) flowing back to the reactor.
struct Completion {
    conn_key: usize,
    request_id: u32,
    /// The wire bytes to enqueue; `None` when a stream aborted after the
    /// connection died and there is nothing left worth writing.
    frame: Option<Vec<u8>>,
    /// Terminal for its request: frees the in-flight budget slot.
    end: bool,
}

enum ConnState {
    /// Serving normally.
    Open,
    /// No more requests will be read; flush the write queue, then
    /// half-close and drain whatever the peer already pipelined so the
    /// final frame is not lost to a RST.
    Closing,
    /// Write side is shut; discarding peer bytes until EOF or deadline.
    Draining { until: Instant },
}

struct Conn {
    stream: TcpStream,
    key: usize,
    shared: Arc<ConnShared>,
    state: ConnState,
    /// Marked on the shutdown path / close path so in-flight replies
    /// are still awaited before the flush-and-drain starts.
    closing_when_idle: bool,
    /// A turned-away arrival: never counted against the serving cap.
    rejected: bool,
    read_buf: Vec<u8>,
    write_queue: VecDeque<Vec<u8>>,
    /// Bytes of `write_queue.front()` already written.
    write_offset: usize,
    /// Request ids currently executing (pre-v6 frames use id 0).
    inflight: HashSet<u32>,
    /// Version of the last decoded request; error frames before the
    /// first decode use [`proto::MIN_PROTOCOL_VERSION`].
    peer_version: u8,
    /// Parsing stopped because the in-flight budget is full.
    parse_blocked: bool,
    /// Interest currently registered with the poller.
    interest: (bool, bool),
}

impl Conn {
    /// The in-flight budget the *next* frame's version grants: pre-v6
    /// peers promised one-in-flight, and keeping that bound preserves
    /// their in-order, byte-identical service.
    fn budget(&self, frame_version: u8, max_inflight: usize) -> usize {
        if frame_version >= 6 {
            max_inflight.max(1)
        } else {
            1
        }
    }

    fn enqueue(&mut self, frame: Vec<u8>) {
        // Coalesce small frames into the tail buffer so one write
        // syscall carries many replies; a pipelined window's worth of
        // point-query results then flushes in a single write. Appending
        // to the front buffer mid-write is fine: `write_offset` only
        // tracks consumption of bytes already there.
        const COALESCE_CAP: usize = 64 * 1024;
        if let Some(tail) = self.write_queue.back_mut() {
            if tail.len() + frame.len() <= COALESCE_CAP {
                tail.extend_from_slice(&frame);
                return;
            }
        }
        self.write_queue.push_back(frame);
    }

    fn queue_empty(&self) -> bool {
        self.write_queue.is_empty()
    }
}

/// A running TCP server over one shared [`ServerState`].
///
/// Dropping the handle signals shutdown and joins every thread; use
/// [`RavenServer::shutdown`] for an explicit, observable join.
pub struct RavenServer {
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl RavenServer {
    /// Bind a listener and start the reactor + executor pool.
    pub fn bind(state: Arc<ServerState>, config: NetConfig) -> io::Result<RavenServer> {
        let listener =
            TcpListener::bind(
                config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "empty bind addr")
                })?,
            )?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        poller.add(listener.as_raw_fd(), KEY_LISTENER, true, false)?;
        let shared = Arc::new(Shared {
            state,
            shutdown: AtomicBool::new(false),
            addr,
            poller: poller.clone(),
            chunk_rows: config.chunk_rows.max(1),
            max_conn_backlog_bytes: config.max_conn_backlog_bytes.max(1),
        });
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let poll_interval = config.poll_interval.max(Duration::from_millis(1));
        let executors = (0..config.workers.max(1))
            .map(|i| {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("raven-net-exec-{i}"))
                    .spawn(move || executor_loop(job_rx, done_tx, shared, poll_interval))
                    .expect("spawn net executor")
            })
            .collect();
        let reactor = {
            let shared = shared.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name("raven-net-reactor".into())
                .spawn(move || {
                    Reactor {
                        listener,
                        shared,
                        conns: HashMap::new(),
                        next_key: KEY_FIRST_CONN,
                        job_tx,
                        done_rx,
                        max_connections: config.max_connections,
                        max_inflight: config.max_inflight_per_conn.max(1),
                        poll_interval,
                        accepting: true,
                        shutdown_at: None,
                    }
                    .run()
                })
                .expect("spawn net reactor")
        };
        Ok(RavenServer {
            shared,
            reactor: Some(reactor),
            executors,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared serving state behind this listener.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.shared.state
    }

    /// Ask every thread to stop without blocking on the join.
    pub fn signal_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Signal shutdown and join the reactor and all executors.
    pub fn shutdown(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        self.shared.request_shutdown();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for RavenServer {
    fn drop(&mut self) {
        self.join_all();
    }
}

// ---------------------------------------------------------------------
// The reactor.

struct Reactor {
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Completion>,
    max_connections: usize,
    max_inflight: usize,
    poll_interval: Duration,
    accepting: bool,
    /// Set when the shutdown flag was first observed; bounds the drain.
    shutdown_at: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let _ = self
                .shared
                .poller
                .wait(&mut events, Some(self.poll_interval));
            // Completions first: they free in-flight budget and fill
            // write queues, both of which the event handling below and
            // the interest sync want to see.
            self.drain_completions();
            let batch: Vec<Event> = std::mem::take(&mut events);
            for ev in batch {
                if ev.key == KEY_LISTENER {
                    if ev.readable {
                        self.accept_ready();
                    }
                    continue;
                }
                if ev.writable {
                    self.pump_write(ev.key);
                }
                if ev.readable {
                    self.pump_read(ev.key);
                }
            }
            self.expire_draining();
            if self.observe_shutdown() {
                break;
            }
            self.sync_all_interest();
        }
        // Tear down whatever is left, then let the executors drain: the
        // job channel disconnects when `job_tx` drops with `self`.
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            self.teardown(key);
        }
    }

    /// Progress the shutdown drain; true once everything is done (or
    /// the grace expired).
    fn observe_shutdown(&mut self) -> bool {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let started = *self.shutdown_at.get_or_insert_with(Instant::now);
        if self.accepting {
            self.accepting = false;
            let _ = self.shared.poller.delete(self.listener.as_raw_fd());
        }
        // Stop reading everywhere; finish in-flight work, flush, close.
        let keys: Vec<usize> = self.conns.keys().copied().collect();
        for key in keys {
            self.begin_close(key);
        }
        self.conns.is_empty() || started.elapsed() >= SHUTDOWN_GRACE
    }

    /// Stop reading requests from `key`: once its in-flight requests
    /// complete and its write queue flushes, half-close and drain.
    fn begin_close(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if !matches!(conn.state, ConnState::Open) {
            return;
        }
        conn.closing_when_idle = true;
        self.maybe_finish_close(key);
    }

    /// If a closing connection has no in-flight work left and nothing
    /// buffered to write, half-close it and start the drain clock.
    fn maybe_finish_close(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        if !conn.closing_when_idle || matches!(conn.state, ConnState::Draining { .. }) {
            return;
        }
        if conn.inflight.is_empty() && conn.queue_empty() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            conn.state = ConnState::Draining {
                until: Instant::now() + DRAIN_DEADLINE,
            };
        } else {
            conn.state = ConnState::Closing;
        }
    }

    fn expire_draining(&mut self) {
        let now = Instant::now();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .filter_map(|(&key, conn)| match conn.state {
                ConnState::Draining { until } if now >= until => Some(key),
                _ => None,
            })
            .collect();
        for key in expired {
            self.teardown(key);
        }
    }

    fn serving_count(&self) -> usize {
        self.conns.values().filter(|c| !c.rejected).count()
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                continue; // tear-off arrivals during shutdown: just drop
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let over_cap =
                self.max_connections != 0 && self.serving_count() >= self.max_connections;
            let key = self.next_key;
            self.next_key += 1;
            let mut conn = Conn {
                stream,
                key,
                shared: ConnShared::new(),
                state: ConnState::Open,
                closing_when_idle: false,
                rejected: over_cap,
                read_buf: Vec::new(),
                write_queue: VecDeque::new(),
                write_offset: 0,
                inflight: HashSet::new(),
                peer_version: proto::MIN_PROTOCOL_VERSION,
                parse_blocked: false,
                interest: (false, false),
            };
            if over_cap {
                // Connection-level backpressure: answer with a typed
                // frame instead of letting the socket queue silently.
                // No request was read, so the peer's version is
                // unknown: encode at the oldest supported version,
                // which every supported peer can decode.
                let frame = Response::Error {
                    code: proto::ErrorCode::Overloaded,
                    message: format!("server at its connection limit ({})", self.max_connections),
                }
                .encode_for_version(proto::MIN_PROTOCOL_VERSION);
                conn.enqueue(frame);
                conn.closing_when_idle = true;
                conn.state = ConnState::Closing;
            }
            if self
                .shared
                .poller
                .add(conn.stream.as_raw_fd(), key, true, true)
                .is_err()
            {
                continue; // fd pressure: drop the socket
            }
            conn.interest = (true, true);
            self.conns.insert(key, conn);
        }
    }

    fn drain_completions(&mut self) {
        // Enqueue every finished frame first, then pump each touched
        // connection once: completions from a pipelined window coalesce
        // into large writes instead of one syscall per frame.
        let mut touched: Vec<usize> = Vec::new();
        while let Ok(done) = self.done_rx.try_recv() {
            let Some(conn) = self.conns.get_mut(&done.conn_key) else {
                // The connection died while the request executed; the
                // executor already saw the cancel token (or will) and
                // its bytes have nowhere to go.
                continue;
            };
            if done.end {
                conn.inflight.remove(&done.request_id);
                conn.parse_blocked = false;
            }
            match done.frame {
                Some(frame) => conn.enqueue(frame),
                None => {
                    // An aborted stream enqueued nothing; the counter
                    // may still hold bytes never handed over. Safe to
                    // zero: the connection is torn down or about to be.
                }
            }
            if !touched.contains(&done.conn_key) {
                touched.push(done.conn_key);
            }
        }
        for key in touched {
            // Budget freed: requests the peer already pipelined may be
            // parseable now, and a closing connection may have just
            // gone idle.
            self.pump_write(key);
            self.parse_frames(key);
            // Parsing may have fast-pathed replies straight onto the
            // write queue; flush them this cycle, not the next.
            self.pump_write(key);
            self.maybe_finish_close(key);
        }
    }

    fn pump_read(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        match conn.state {
            ConnState::Draining { .. } => {
                // Discard until EOF so the final reply frame survives
                // (closing with unread bytes risks an RST).
                let mut sink = [0u8; 4096];
                loop {
                    match conn.stream.read(&mut sink) {
                        Ok(0) => {
                            self.teardown(key);
                            return;
                        }
                        Ok(_) => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.teardown(key);
                            return;
                        }
                    }
                }
            }
            ConnState::Closing => return, // reads wait for the flush
            ConnState::Open => {}
        }
        if conn.parse_blocked {
            return; // budget full: leave the bytes in the kernel buffer
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.teardown(key);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&buf[..n]);
                    // Between frames a peer can only make us buffer one
                    // frame's worth + a read; parse before reading more.
                    if conn.read_buf.len() >= proto::MAX_FRAME_LEN as usize {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.teardown(key);
                    return;
                }
            }
        }
        self.parse_frames(key);
        // Fast-pathed replies (if any) are already queued; write them
        // back in the same reactor cycle that read the requests.
        self.pump_write(key);
    }

    /// Parse every complete frame in the read buffer, dispatching jobs,
    /// until the in-flight budget stops us or the bytes run out.
    fn parse_frames(&mut self, key: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if !matches!(conn.state, ConnState::Open) {
                conn.read_buf.clear();
                return;
            }
            if conn.read_buf.len() < 4 {
                return;
            }
            let len = u32::from_le_bytes(conn.read_buf[..4].try_into().unwrap());
            if len == 0 || len > proto::MAX_FRAME_LEN {
                self.protocol_error(key, 0, &ProtoError::BadLength(len));
                return;
            }
            let total = 4 + len as usize;
            if conn.read_buf.len() < total {
                return; // partial frame: wait for more bytes
            }
            // Budget gate — peek the version before consuming.
            let frame_version = conn.read_buf[4];
            let budget = conn.budget(frame_version, self.max_inflight);
            if conn.inflight.len() >= budget {
                conn.parse_blocked = true;
                return;
            }
            let body: Vec<u8> = conn.read_buf[4..total].to_vec();
            conn.read_buf.drain(..total);
            match Request::decode_framed(&body) {
                Ok((request, version, request_id)) => {
                    conn.peer_version = version;
                    if conn.inflight.contains(&request_id) {
                        // Duplicate id while in flight: typed error for
                        // that id; framing is intact, keep serving.
                        let frame = Response::Error {
                            code: proto::ErrorCode::Protocol,
                            message: format!(
                                "request id {request_id} is already in flight on this connection"
                            ),
                        }
                        .encode_framed(version, request_id);
                        conn.shared
                            .queued_bytes
                            .fetch_add(frame.len(), Ordering::SeqCst);
                        conn.enqueue(frame);
                        continue;
                    }
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        let frame = Response::from_error(&crate::ServerError::ShuttingDown)
                            .encode_framed(version, request_id);
                        conn.shared
                            .queued_bytes
                            .fetch_add(frame.len(), Ordering::SeqCst);
                        conn.enqueue(frame);
                        self.begin_close(key);
                        return;
                    }
                    // Inline fast path (v6 only): a warm cached query
                    // is answered on the reactor thread itself — no
                    // executor handoff, no completion channel, no
                    // wakeup; the reply frames go straight onto the
                    // write queue. Anything cold, contended, or
                    // oversized declines and takes the pooled path
                    // below. Pre-v6 peers stay on the historical
                    // executor path end to end: their byte-identical
                    // guarantee is kept by not re-routing them at all.
                    let room = self
                        .shared
                        .max_conn_backlog_bytes
                        .saturating_sub(conn.shared.queued_bytes.load(Ordering::SeqCst));
                    if version >= 6 {
                        if let Some(frames) =
                            fast_path_frames(&self.shared, &request, version, request_id, room)
                        {
                            for frame in frames {
                                conn.shared
                                    .queued_bytes
                                    .fetch_add(frame.len(), Ordering::SeqCst);
                                conn.enqueue(frame);
                            }
                            continue;
                        }
                    }
                    conn.inflight.insert(request_id);
                    let job = Job {
                        conn_key: key,
                        request_id,
                        version,
                        request,
                        conn: conn.shared.clone(),
                        started: Instant::now(),
                    };
                    if self.job_tx.send(job).is_err() {
                        return; // executors gone: shutdown under way
                    }
                }
                Err(e) => {
                    self.protocol_error(key, 0, &e);
                    return;
                }
            }
        }
    }

    /// Answer protocol confusion once, then close — framing can no
    /// longer be trusted.
    fn protocol_error(&mut self, key: usize, request_id: u32, e: &ProtoError) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let frame = Response::Error {
            code: proto::ErrorCode::Protocol,
            message: e.to_string(),
        }
        .encode_framed(conn.peer_version, request_id);
        conn.shared
            .queued_bytes
            .fetch_add(frame.len(), Ordering::SeqCst);
        conn.enqueue(frame);
        conn.read_buf.clear();
        self.begin_close(key);
    }

    fn pump_write(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut flushed = 0usize;
        let mut dead = false;
        while let Some(front) = conn.write_queue.front() {
            match conn.stream.write(&front[conn.write_offset..]) {
                Ok(n) => {
                    conn.write_offset += n;
                    if conn.write_offset >= front.len() {
                        flushed += front.len();
                        conn.write_offset = 0;
                        conn.write_queue.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if flushed > 0 {
            conn.shared.queued_bytes.fetch_sub(
                flushed.min(conn.shared.queued_bytes.load(Ordering::SeqCst)),
                Ordering::SeqCst,
            );
            conn.shared.notify_capacity();
        }
        if dead {
            self.teardown(key);
            return;
        }
        self.maybe_finish_close(key);
    }

    /// Recompute and apply poller interest for every connection: read
    /// while open and not budget-blocked (and while draining, to see
    /// EOF); write while bytes are queued.
    fn sync_all_interest(&mut self) {
        for conn in self.conns.values_mut() {
            let read = match conn.state {
                ConnState::Open => !conn.parse_blocked,
                ConnState::Closing => false,
                ConnState::Draining { .. } => true,
            };
            let write = !conn.queue_empty();
            if conn.interest != (read, write)
                && self
                    .shared
                    .poller
                    .modify(conn.stream.as_raw_fd(), conn.key, read, write)
                    .is_ok()
            {
                conn.interest = (read, write);
            }
        }
    }

    fn teardown(&mut self, key: usize) {
        if let Some(conn) = self.conns.remove(&key) {
            // Unblock any executor mid-stream on this connection.
            conn.shared.cancel.cancel();
            conn.shared.notify_capacity();
            let _ = self.shared.poller.delete(conn.stream.as_raw_fd());
        }
    }
}

// ---------------------------------------------------------------------
// The executor pool.

fn executor_loop(
    job_rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    done_tx: mpsc::Sender<Completion>,
    shared: Arc<Shared>,
    poll_interval: Duration,
) {
    loop {
        // Hold the lock only for the dequeue, never while serving.
        let next = {
            let rx = job_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv_timeout(poll_interval)
        };
        match next {
            Ok(job) => run_job(job, &done_tx, &shared),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Hand a finished frame back to the reactor and wake it.
fn complete(
    done_tx: &mpsc::Sender<Completion>,
    shared: &Shared,
    job: &Job,
    frame: Option<Vec<u8>>,
    end: bool,
) {
    if let Some(f) = &frame {
        job.conn.queued_bytes.fetch_add(f.len(), Ordering::SeqCst);
    }
    let _ = done_tx.send(Completion {
        conn_key: job.conn_key,
        request_id: job.request_id,
        frame,
        end,
    });
    let _ = shared.poller.notify();
}

/// The reactor's inline fast path: answer a query **entirely from warm
/// caches** on the event-loop thread, returning the complete reply
/// frames (bounded `RowsChunk`s + `RowsEnd` for v6, one monolithic
/// `Rows` pre-v6), or `None` to dispatch to the executor pool. The
/// probe ([`ServerState::try_serve_cached_in`]) never blocks and never
/// executes a plan; `room` is the connection's remaining backlog
/// budget, so an inline reply can never overshoot the watermark the
/// streaming path's backpressure gate enforces.
fn fast_path_frames(
    shared: &Shared,
    request: &Request,
    version: u8,
    request_id: u32,
    room: usize,
) -> Option<Vec<Vec<u8>>> {
    let result = match request {
        Request::Query {
            sql,
            tenant,
            deadline,
        } => shared
            .state
            .try_serve_cached_in(tenant, sql, *deadline, room)?,
        Request::QueryParams {
            template,
            tenant,
            params,
            deadline,
        } => shared
            .state
            .try_serve_cached_params_in(tenant, template, params, *deadline, room)?,
        _ => return None,
    };
    let table = result.table;
    let total_rows = table.num_rows();
    let total_micros = result.total_time.as_micros() as u64;
    if version >= 6 {
        let mut frames = Vec::new();
        let mut offset = 0usize;
        loop {
            let len = shared.chunk_rows.min(total_rows - offset);
            match Response::rows_chunk_frame(version, request_id, &table, offset, len) {
                Ok(frame) => frames.push(frame),
                // Rows too wide to ship at any chunking: the query was
                // served and counted; only the reply can't fit. Same
                // typed error the streaming path sends.
                Err(_) => return Some(vec![oversize_error().encode_framed(version, request_id)]),
            }
            offset += len;
            if offset >= total_rows {
                break;
            }
        }
        frames.push(
            Response::RowsEnd {
                cache_hit: result.cache_hit,
                total_micros,
                total_rows: total_rows as u64,
            }
            .encode_framed(version, request_id),
        );
        Some(frames)
    } else {
        let frame = Response::Rows {
            cache_hit: result.cache_hit,
            total_micros,
            table,
        }
        .encode_framed_checked(version, request_id)
        .unwrap_or_else(|_| oversize_error().encode_framed(version, request_id));
        Some(vec![frame])
    }
}

fn run_job(job: Job, done_tx: &mpsc::Sender<Completion>, shared: &Shared) {
    match &job.request {
        Request::Query { .. } | Request::QueryParams { .. } if job.version >= 6 => {
            stream_query(job, done_tx, shared);
        }
        Request::Shutdown => {
            let frame = Response::ShutdownAck.encode_framed(job.version, job.request_id);
            complete(done_tx, shared, &job, Some(frame), true);
            shared.request_shutdown();
        }
        _ => {
            let response = serve_request(job.request.clone(), &shared.state);
            // A result table too large for one frame becomes a typed
            // error the client can read, not a length it must reject.
            let frame = response
                .encode_framed_checked(job.version, job.request_id)
                .unwrap_or_else(|_| oversize_error().encode_framed(job.version, job.request_id));
            complete(done_tx, shared, &job, Some(frame), true);
        }
    }
}

fn oversize_error() -> Response {
    Response::Error {
        code: proto::ErrorCode::Execution,
        message: format!(
            "result exceeds the {} byte frame cap; narrow the query",
            proto::MAX_FRAME_LEN
        ),
    }
}

enum StreamGate {
    Proceed,
    ConnDead,
    DeadlineExpired,
    ShuttingDown,
}

/// Wait until the connection's write queue is under the watermark —
/// checking teardown, the request deadline, and server shutdown while
/// waiting, so a stalled reader can't pin this executor.
fn stream_gate(conn: &ConnShared, stream_cancel: &CancelToken, shared: &Shared) -> StreamGate {
    loop {
        if conn.cancel.is_cancelled() {
            return StreamGate::ConnDead;
        }
        if stream_cancel.is_cancelled() {
            return StreamGate::DeadlineExpired;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Shutdown mustn't wait on a slow reader; cut the stream
            // with a typed error so the drain stays bounded.
            return StreamGate::ShuttingDown;
        }
        if conn.queued_bytes.load(Ordering::SeqCst) <= shared.max_conn_backlog_bytes {
            return StreamGate::Proceed;
        }
        let guard = conn
            .capacity
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Timed wait: a missed notify (or a torn-down connection) must
        // not park this executor forever.
        let _ = conn
            .capacity_cv
            .wait_timeout(guard, Duration::from_millis(10));
    }
}

/// Serve a v6 `Query`/`QueryParams` and stream the result: one or more
/// bounded `RowsChunk` frames (the first carries the schema even for an
/// empty result), terminated by `RowsEnd` — or by a typed error frame
/// if the deadline expires or the server shuts down mid-stream.
fn stream_query(job: Job, done_tx: &mpsc::Sender<Completion>, shared: &Shared) {
    let (result, deadline) = match &job.request {
        Request::Query {
            sql,
            tenant,
            deadline,
        } => (shared.state.serve_in(tenant, sql, *deadline), *deadline),
        Request::QueryParams {
            template,
            tenant,
            params,
            deadline,
        } => (
            shared
                .state
                .serve_with_params_in(tenant, template, params, *deadline),
            *deadline,
        ),
        _ => unreachable!("stream_query only takes query requests"),
    };
    let result = match result {
        Ok(result) => result,
        Err(e) => {
            let frame = Response::from_error(&e).encode_framed(job.version, job.request_id);
            complete(done_tx, shared, &job, Some(frame), true);
            return;
        }
    };
    // The same effective deadline the admission ring used keeps
    // governing the stream: expiry between chunks is a typed error.
    let stream_cancel = deadline
        .or(shared.state.config().admission.default_deadline)
        .map(|d| CancelToken::with_deadline(job.started + d))
        .unwrap_or_default();
    let table = result.table;
    let total_rows = table.num_rows();
    let total_micros = result.total_time.as_micros() as u64;
    let cache_hit = result.cache_hit;
    let mut offset = 0usize;
    loop {
        let len = shared.chunk_rows.min(total_rows - offset);
        match stream_gate(&job.conn, &stream_cancel, shared) {
            StreamGate::Proceed => {}
            StreamGate::ConnDead => {
                // Nowhere to write; free the budget slot and stop.
                complete(done_tx, shared, &job, None, true);
                return;
            }
            StreamGate::DeadlineExpired => {
                let frame = Response::from_error(&crate::ServerError::DeadlineExceeded(format!(
                    "deadline expired mid-stream after {offset} of {total_rows} rows"
                )))
                .encode_framed(job.version, job.request_id);
                complete(done_tx, shared, &job, Some(frame), true);
                return;
            }
            StreamGate::ShuttingDown => {
                let frame = Response::from_error(&crate::ServerError::ShuttingDown)
                    .encode_framed(job.version, job.request_id);
                complete(done_tx, shared, &job, Some(frame), true);
                return;
            }
        }
        match Response::rows_chunk_frame(job.version, job.request_id, &table, offset, len) {
            Ok(frame) => complete(done_tx, shared, &job, Some(frame), false),
            Err(_) => {
                // A single chunk overflowing the frame cap means rows
                // too wide to ship at any chunking; same typed error as
                // the monolithic path.
                let frame = oversize_error().encode_framed(job.version, job.request_id);
                complete(done_tx, shared, &job, Some(frame), true);
                return;
            }
        }
        offset += len;
        if offset >= total_rows {
            break;
        }
    }
    let frame = Response::RowsEnd {
        cache_hit,
        total_micros,
        total_rows: total_rows as u64,
    }
    .encode_framed(job.version, job.request_id);
    complete(done_tx, shared, &job, Some(frame), true);
}

/// Serve one request to its single-frame response (every kind except
/// the streamed v6 query path).
fn serve_request(request: Request, state: &Arc<ServerState>) -> Response {
    match request {
        Request::Prepare { sql, tenant } => match state.prepare_in(&tenant, &sql) {
            Ok((prepared, cache_hit)) => Response::Prepared {
                cache_hit,
                prepare_micros: prepared.prepare_time.as_micros() as u64,
            },
            Err(e) => Response::from_error(&e),
        },
        Request::Query {
            sql,
            tenant,
            deadline,
        } => match state.serve_in(&tenant, &sql, deadline) {
            Ok(result) => Response::Rows {
                cache_hit: result.cache_hit,
                total_micros: result.total_time.as_micros() as u64,
                table: result.table,
            },
            Err(e) => Response::from_error(&e),
        },
        Request::QueryParams {
            template,
            tenant,
            params,
            deadline,
        } => match state.serve_with_params_in(&tenant, &template, &params, deadline) {
            Ok(result) => Response::Rows {
                cache_hit: result.cache_hit,
                total_micros: result.total_time.as_micros() as u64,
                table: result.table,
            },
            Err(e) => Response::from_error(&e),
        },
        Request::Score { model, tenant, row } => match state.score_row_in(&tenant, &model, row) {
            Ok(value) => Response::Score { value },
            Err(e) => Response::from_error(&e),
        },
        // An empty tenant asks for the cross-tenant aggregate; a named
        // tenant gets its own counters — zeros if it does not exist yet
        // (observing a tenant must not create one).
        Request::Stats { tenant } => {
            if tenant.is_empty() {
                Response::Stats(wire_stats(&state.stats()))
            } else {
                match state.tenant_stats(&tenant) {
                    Some(snap) => Response::Stats(wire_stats(&snap)),
                    None => Response::Stats(WireStats::default()),
                }
            }
        }
        // Same scoping rule as Stats: empty tenant = aggregate, and
        // observing a tenant must not create one.
        Request::Metrics { tenant } => match state.metrics_text(&tenant) {
            Some(text) => Response::Metrics { text },
            None => Response::Metrics {
                text: String::new(),
            },
        },
        Request::Traces { tenant, limit } => {
            let traces = state
                .slow_queries(&tenant, limit as usize)
                .unwrap_or_default();
            Response::Traces {
                traces: traces.iter().map(|t| (**t).clone()).collect(),
            }
        }
        Request::Shutdown => Response::ShutdownAck,
    }
}

/// Flatten a [`StatsSnapshot`] into the wire-stable counter set.
pub fn wire_stats(snap: &StatsSnapshot) -> WireStats {
    WireStats {
        queries: snap.queries,
        errors: snap.errors,
        rows: snap.rows,
        plan_hits: snap.plan_cache.hits,
        plan_misses: snap.plan_cache.misses,
        preparations: snap.plan_cache.preparations,
        invalidations: snap.plan_cache.invalidations,
        normalized: snap.normalized,
        template_hits: snap.template_hits,
        result_hits: snap.result_cache.hits,
        result_misses: snap.result_cache.misses,
        result_invalidations: snap.result_cache.invalidations,
        batch_requests: snap.batcher.requests,
        batches: snap.batcher.batches,
        admitted: snap.admission.admitted,
        rejected_overloaded: snap.admission.rejected_overloaded,
        rejected_deadline: snap.admission.rejected_deadline,
        latency_p50_micros: snap.latency.p50.as_micros() as u64,
        latency_p95_micros: snap.latency.p95.as_micros() as u64,
        latency_p99_micros: snap.latency.p99.as_micros() as u64,
    }
}
