//! The prepared-plan cache: parse → bind → optimize once, execute many.
//!
//! Keyed by the *exact SQL text* plus the optimizer configuration
//! ([`RuleSet`] and [`OptimizerMode`]): the same query optimized under
//! different rule toggles is a different plan and must not collide.
//! Entries record which tables and models the bound plan depends on, so
//! catalog and model-store mutations invalidate exactly the affected
//! plans (the serving-layer counterpart of the paper's transactional
//! model updates).
//!
//! With parameter normalization on (the default), the `sql` in the key
//! is the *template* — `WHERE age > ?` — so requests differing only in
//! constants share one entry; see [`mod@crate::normalize`].
//!
//! ```
//! use raven_server::cache::{PlanCache, PlanKey, PreparedQuery};
//! use raven_opt::{OptimizationReport, OptimizerMode, RuleSet};
//! use raven_ir::{FingerprintBuilder, Plan};
//! use raven_data::{DataType, Schema};
//! use std::time::Duration;
//!
//! let cache = PlanCache::new(8);
//! let key = PlanKey {
//!     tenant: "default".into(),
//!     sql: "SELECT x FROM t WHERE x > ?".into(),
//!     rules: RuleSet::all(),
//!     mode: OptimizerMode::Heuristic,
//! };
//! let prepare = || -> Result<PreparedQuery, ()> {
//!     Ok(PreparedQuery::new(
//!         "SELECT x FROM t WHERE x > ?",
//!         Plan::Scan {
//!             table: "t".into(),
//!             schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
//!         },
//!         OptimizationReport::default(),
//!         Duration::ZERO,
//!     ))
//! };
//! let (_, hit) = cache.get_or_prepare(key.clone(), prepare).unwrap();
//! assert!(!hit, "first request prepares");
//! let (_, hit) = cache.get_or_prepare(key, prepare).unwrap();
//! assert!(hit, "second request reuses the plan");
//! assert_eq!(cache.stats().preparations, 1);
//! ```

use parking_lot::Mutex;
use raven_ir::{FingerprintBuilder, Plan};
use raven_opt::{determinism, DeterminismReport, OptimizationReport, OptimizerMode, RuleSet};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Cache key: tenant + SQL text + everything that changes the optimized
/// plan. The tenant dimension is defense in depth — each tenant owns its
/// own `PlanCache`, so entries cannot collide across tenants today, but
/// the key carries the namespace anyway so a future consolidation of the
/// maps could not silently lose it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub tenant: String,
    pub sql: String,
    pub rules: RuleSet,
    pub mode: OptimizerMode,
}

/// A query prepared once and executable many times.
#[derive(Debug)]
pub struct PreparedQuery {
    /// The SQL text this plan was prepared from.
    pub sql: String,
    /// The fully optimized plan.
    pub plan: Plan,
    /// What the cross optimizer did while preparing.
    pub report: OptimizationReport,
    /// Models the plan's operators are bound to (by name).
    pub model_deps: Vec<String>,
    /// Tables the plan scans.
    pub table_deps: Vec<String>,
    /// Wall time of the parse + bind + optimize work this cache amortizes.
    pub prepare_time: Duration,
    /// Positional parameters (`?`) the template expects; execution must
    /// supply exactly this many values.
    pub param_count: usize,
    /// Whether the *optimized* plan is a pure function of its versioned
    /// inputs — the admission ticket to the result cache — plus the
    /// reasons when it is not (see [`raven_opt::determinism`]).
    pub determinism: DeterminismReport,
    /// Lazily memoized result-cache fingerprint prefix (tenant + plan
    /// structure). Hashing the full plan tree costs microseconds on a
    /// large inference plan; it is a pure function of this (per-tenant)
    /// cache entry, so the serving path computes it once and then only
    /// folds in the per-request parameters and dependency versions.
    pub fingerprint_base: OnceLock<FingerprintBuilder>,
}

impl PreparedQuery {
    /// Build a prepared query, extracting table/model dependencies from
    /// the optimized plan.
    pub fn new(
        sql: impl Into<String>,
        plan: Plan,
        report: OptimizationReport,
        prepare_time: Duration,
    ) -> Self {
        let (model_deps, table_deps) = collect_deps(&plan, HashSet::new(), HashSet::new());
        let param_count = plan.parameter_count();
        // Determinism is a property of the plan that executes (the
        // optimized one): inlining can purify a volatile bound plan.
        let determinism = determinism::analyze(&plan);
        PreparedQuery {
            sql: sql.into(),
            plan,
            report,
            model_deps,
            table_deps,
            prepare_time,
            param_count,
            determinism,
            fingerprint_base: OnceLock::new(),
        }
    }

    /// Build a prepared query whose dependency sets are the union of the
    /// *bound* and *optimized* plans. The bound plan matters: cross
    /// optimizations can erase the evidence — model inlining replaces a
    /// `Predict` node with CASE arithmetic and join elimination drops
    /// scans — yet the cached plan still embeds that model's (now stale
    /// after an update) parameters.
    pub fn from_stages(
        sql: impl Into<String>,
        bound: &Plan,
        optimized: Plan,
        report: OptimizationReport,
        prepare_time: Duration,
    ) -> Self {
        let mut prepared = PreparedQuery::new(sql, optimized, report, prepare_time);
        let (model_deps, table_deps) = collect_deps(
            bound,
            prepared.model_deps.iter().cloned().collect(),
            prepared.table_deps.iter().cloned().collect(),
        );
        prepared.model_deps = model_deps;
        prepared.table_deps = table_deps;
        // The caller-facing arity is the template's: use the bound plan
        // in case an (aggressive) optimization rewrote a parameter away.
        prepared.param_count = prepared.param_count.max(bound.parameter_count());
        prepared
    }
}

fn collect_deps(
    plan: &Plan,
    mut models: HashSet<String>,
    mut tables: HashSet<String>,
) -> (Vec<String>, Vec<String>) {
    plan.visit(&mut |node| match node {
        Plan::Scan { table, .. } => {
            tables.insert(table.clone());
        }
        Plan::Predict { model, .. }
        | Plan::TensorPredict { model, .. }
        | Plan::KernelPredict { model, .. }
        | Plan::ClusteredPredict { model, .. } => {
            models.insert(model.name.clone());
        }
        _ => {}
    });
    let mut model_deps: Vec<String> = models.into_iter().collect();
    model_deps.sort();
    let mut table_deps: Vec<String> = tables.into_iter().collect();
    table_deps.sort();
    (model_deps, table_deps)
}

/// Counters exposed by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing. Under single-flight contention this
    /// exceeds `preparations`: every waiter counts its first miss.
    pub misses: u64,
    /// Parse → bind → optimize passes actually run by `get_or_prepare`
    /// (the work the cache exists to amortize).
    pub preparations: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl std::ops::AddAssign for PlanCacheStats {
    fn add_assign(&mut self, other: Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.preparations += other.preparations;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

impl PlanCacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for PlanCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} preparations, \
             {} evictions, {} invalidations",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.preparations,
            self.evictions,
            self.invalidations
        )
    }
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
    stats: PlanCacheStats,
    /// Bumped by every invalidation, under this same lock, so a
    /// preparation that straddles a bump can atomically decide not to
    /// cache its (possibly stale-bound) result.
    epoch: u64,
}

impl Inner {
    fn touch(&mut self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.prepared.clone()
        })
    }

    fn insert(&mut self, capacity: usize, key: PlanKey, prepared: Arc<PreparedQuery>) {
        self.tick += 1;
        let tick = self.tick;
        if !self.map.contains_key(&key) && self.map.len() >= capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                prepared,
                last_used: tick,
            },
        );
    }
}

/// A thread-safe LRU cache of [`PreparedQuery`]s with single-flight
/// preparation: when N threads miss on the same key concurrently, one
/// prepares while the rest wait and then hit — optimization runs once.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    // std primitives: waiting on a condvar needs guard-by-value semantics.
    inflight: std::sync::Mutex<HashSet<PlanKey>>,
    inflight_done: std::sync::Condvar,
}

/// Releases a single-flight claim on drop — including a panicking
/// `prepare` — so waiters always wake and can retry.
struct ClaimGuard<'a> {
    cache: &'a PlanCache,
    key: &'a PlanKey,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self
            .cache
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inflight.remove(self.key);
        self.cache.inflight_done.notify_all();
    }
}

impl PlanCache {
    /// `capacity` = maximum cached plans (≥ 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            inflight: std::sync::Mutex::new(HashSet::new()),
            inflight_done: std::sync::Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().stats
    }

    /// Count an optimizer pass that ran outside the cache (the
    /// cache-disabled serving path), so `preparations` stays an honest
    /// measure of optimization work either way.
    pub fn note_uncached_preparation(&self) {
        self.inner.lock().stats.preparations += 1;
    }

    /// Look up without touching the hit/miss counters (used for the
    /// post-claim double-check, which already counted its miss, and by
    /// the fast path's probe phase, which counts via [`Self::note_hit`]
    /// only once it commits).
    pub(crate) fn peek(&self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        self.inner.lock().touch(key)
    }

    /// Count a hit observed via [`Self::peek`] once the caller commits to
    /// serving from it, keeping hit/miss accounting identical to
    /// [`Self::get`].
    pub(crate) fn note_hit(&self) {
        self.inner.lock().stats.hits += 1;
    }

    /// Look up a prepared plan, counting a hit or miss.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        let mut inner = self.inner.lock();
        let found = inner.touch(key);
        if found.is_some() {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        found
    }

    /// Insert a prepared plan, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&self, key: PlanKey, prepared: Arc<PreparedQuery>) {
        self.inner.lock().insert(self.capacity, key, prepared);
    }

    /// Cached plan for `key`, or prepare one with `prepare` (run outside
    /// all locks, at most once per key across concurrent callers).
    ///
    /// Two hazards are handled here:
    /// * a **panic** inside `prepare` releases the single-flight claim
    ///   (RAII guard), so one pathological statement cannot wedge every
    ///   future request for the same SQL;
    /// * an **invalidation racing the preparation** (model update while
    ///   parse → bind → optimize is binding the old version) prevents the
    ///   result from being cached: the plan is still returned — the
    ///   request began before the update — but never outlives it.
    pub fn get_or_prepare<E>(
        &self,
        key: PlanKey,
        prepare: impl FnOnce() -> Result<PreparedQuery, E>,
    ) -> Result<(Arc<PreparedQuery>, bool), E> {
        loop {
            if let Some(hit) = self.get(&key) {
                return Ok((hit, true));
            }
            // Miss: claim the key, or wait for whoever holds it.
            let mut inflight = self.inflight.lock().unwrap();
            if inflight.insert(key.clone()) {
                break;
            }
            let _woken = self.inflight_done.wait(inflight).unwrap();
            // Re-check the cache; the preparer may have failed, in which
            // case this caller claims the key and retries.
        }
        // From here the claim must be released on every exit path,
        // including a panicking `prepare`.
        let claim = ClaimGuard {
            cache: self,
            key: &key,
        };
        // Double-check after claiming: the previous holder may have
        // inserted between our cache miss and our claim.
        if let Some(hit) = self.peek(&key) {
            return Ok((hit, true));
        }
        let epoch = {
            let mut inner = self.inner.lock();
            inner.stats.preparations += 1;
            inner.epoch
        };
        let prepared = Arc::new(prepare()?);
        // Insert BEFORE releasing the claim (waiters woken by the guard
        // must see the entry on their re-check) — unless an invalidation
        // ran while we were preparing, in which case this plan may be
        // bound to state that no longer exists and must not be cached.
        // Epoch re-check and insert happen under one lock acquisition so
        // no invalidation can slip between them.
        {
            let mut inner = self.inner.lock();
            if inner.epoch == epoch {
                inner.insert(self.capacity, key.clone(), prepared.clone());
            }
        }
        drop(claim);
        Ok((prepared, false))
    }

    /// Drop every plan bound to `model`; returns how many were dropped.
    pub fn invalidate_model(&self, model: &str) -> usize {
        self.invalidate_where(|p| p.model_deps.iter().any(|m| m == model))
    }

    /// Drop every plan scanning `table`; returns how many were dropped.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.invalidate_where(|p| p.table_deps.iter().any(|t| t == table))
    }

    /// Drop all cached plans.
    pub fn clear(&self) -> usize {
        self.invalidate_where(|_| true)
    }

    fn invalidate_where(&self, pred: impl Fn(&PreparedQuery) -> bool) -> usize {
        let mut inner = self.inner.lock();
        // Bump even when nothing matches: an in-flight preparation may be
        // binding the state this invalidation targets, and the bump is
        // what stops it from caching the result.
        inner.epoch += 1;
        let before = inner.map.len();
        inner.map.retain(|_, e| !pred(&e.prepared));
        let dropped = before - inner.map.len();
        inner.stats.invalidations += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{DataType, Schema};

    fn key(sql: &str, rules: RuleSet) -> PlanKey {
        PlanKey {
            tenant: "default".to_string(),
            sql: sql.to_string(),
            rules,
            mode: OptimizerMode::Heuristic,
        }
    }

    fn prepared(table: &str) -> Arc<PreparedQuery> {
        let plan = Plan::Scan {
            table: table.to_string(),
            schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
        };
        Arc::new(PreparedQuery::new(
            format!("SELECT * FROM {table}"),
            plan,
            OptimizationReport::default(),
            Duration::ZERO,
        ))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = PlanCache::new(4);
        let k = key("q1", RuleSet::all());
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), prepared("t"));
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&k).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn key_is_sensitive_to_rules_mode_and_tenant() {
        let cache = PlanCache::new(8);
        cache.insert(key("q", RuleSet::all()), prepared("t"));
        // Same SQL, different rules → different entry.
        assert!(cache.get(&key("q", RuleSet::none())).is_none());
        // Same SQL + rules, different driver → different entry.
        let cost_based = PlanKey {
            tenant: "default".into(),
            sql: "q".into(),
            rules: RuleSet::all(),
            mode: OptimizerMode::CostBased,
        };
        assert!(cache.get(&cost_based).is_none());
        // Same everything, different tenant → different entry.
        let other_tenant = PlanKey {
            tenant: "acme".into(),
            ..key("q", RuleSet::all())
        };
        assert!(cache.get(&other_tenant).is_none());
        assert!(cache.get(&key("q", RuleSet::all())).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = PlanCache::new(2);
        let (a, b, c) = (
            key("a", RuleSet::all()),
            key("b", RuleSet::all()),
            key("c", RuleSet::all()),
        );
        cache.insert(a.clone(), prepared("t"));
        cache.insert(b.clone(), prepared("t"));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), prepared("t"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&a).is_some(), "recently-used entry survived");
        assert!(cache.get(&c).is_some(), "new entry present");
        assert!(cache.get(&b).is_none(), "LRU entry evicted");
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache = PlanCache::new(2);
        let a = key("a", RuleSet::all());
        let b = key("b", RuleSet::all());
        cache.insert(a.clone(), prepared("t"));
        cache.insert(b.clone(), prepared("t"));
        cache.insert(a.clone(), prepared("t2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn dependency_invalidation() {
        let cache = PlanCache::new(8);
        let k1 = key("scan t1", RuleSet::all());
        let k2 = key("scan t2", RuleSet::all());
        cache.insert(k1.clone(), prepared("t1"));
        cache.insert(k2.clone(), prepared("t2"));
        assert_eq!(cache.invalidate_table("t1"), 1);
        assert!(cache.get(&k1).is_none());
        assert!(cache.get(&k2).is_some());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.invalidate_model("nope"), 0);
        assert_eq!(cache.clear(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn single_flight_prepares_once_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(PlanCache::new(8));
        let prepares = Arc::new(AtomicUsize::new(0));
        let k = key("hot", RuleSet::all());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let prepares = prepares.clone();
                let k = k.clone();
                std::thread::spawn(move || {
                    let (p, _) = cache
                        .get_or_prepare::<()>(k, || {
                            prepares.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(10));
                            Ok(PreparedQuery::new(
                                "hot",
                                Plan::Scan {
                                    table: "t".into(),
                                    schema: Schema::from_pairs(&[("x", DataType::Float64)])
                                        .into_shared(),
                                },
                                OptimizationReport::default(),
                                Duration::ZERO,
                            ))
                        })
                        .unwrap();
                    assert_eq!(p.sql, "hot");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(prepares.load(Ordering::SeqCst), 1, "optimized exactly once");
        assert_eq!(cache.stats().preparations, 1);
        assert_eq!(cache.stats().misses, 8, "every first lookup missed");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicking_preparation_releases_the_claim() {
        let cache = Arc::new(PlanCache::new(4));
        let k = key("boom", RuleSet::all());
        let panicked = {
            let cache = cache.clone();
            let k = k.clone();
            std::thread::spawn(move || {
                let _ = cache.get_or_prepare::<()>(k, || panic!("bad statement"));
            })
        };
        assert!(panicked.join().is_err(), "prepare panicked");
        // The claim must be free: the same key prepares fine afterwards
        // instead of deadlocking in the single-flight wait.
        let (p, hit) = cache
            .get_or_prepare::<()>(k, || {
                Ok(PreparedQuery::new(
                    "boom",
                    Plan::Scan {
                        table: "t".into(),
                        schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                    },
                    OptimizationReport::default(),
                    Duration::ZERO,
                ))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(p.sql, "boom");
    }

    #[test]
    fn invalidation_during_preparation_is_not_cached() {
        let cache = PlanCache::new(4);
        let k = key("racy", RuleSet::all());
        // The "model update" lands while the preparation is in flight.
        let (p, hit) = cache
            .get_or_prepare::<()>(k.clone(), || {
                cache.invalidate_model("m");
                Ok(PreparedQuery::new(
                    "racy",
                    Plan::Scan {
                        table: "t".into(),
                        schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                    },
                    OptimizationReport::default(),
                    Duration::ZERO,
                ))
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(p.sql, "racy", "the request itself is still served");
        assert!(
            cache.is_empty(),
            "a plan prepared across an invalidation must not be cached"
        );
        // The next request simply prepares again (and caches).
        let (_, hit2) = cache
            .get_or_prepare::<()>(k.clone(), || {
                Ok(PreparedQuery::new(
                    "racy",
                    Plan::Scan {
                        table: "t".into(),
                        schema: Schema::from_pairs(&[("x", DataType::Float64)]).into_shared(),
                    },
                    OptimizationReport::default(),
                    Duration::ZERO,
                ))
            })
            .unwrap();
        assert!(!hit2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&k).is_some());
    }
}
