//! # raven-server
//!
//! The concurrent prediction-serving layer over the Raven engine — the
//! step from "a session that can run one inference query" toward the
//! paper's deployment story: models served *inside* the data engine, at
//! application traffic rates.
//!
//! A [`ServerState`] is a sharded registry of **tenants** — isolated
//! model/table namespaces served by one engine ([`tenant`]): each
//! [`Tenant`] owns its catalog, model store, scorer (with its
//! inference-session cache), admission quota, stats, and its own copy of
//! the classic inference-serving levers:
//!
//! * a **prepared-plan cache** ([`PlanCache`]): parse → bind → optimize
//!   runs once per distinct (SQL, [`raven_opt::RuleSet`], optimizer mode)
//!   key, with LRU eviction, single-flight preparation under concurrency,
//!   and precise invalidation when a model or table changes;
//! * a **deterministic result cache** ([`ResultCache`]): for plans the
//!   determinism analysis ([`raven_opt::determinism`]) proves pure,
//!   execution itself is memoized keyed on a [`raven_ir::PlanFingerprint`]
//!   (optimized plan × bound parameter values × model/table versions) —
//!   the hot repeat path becomes a hash lookup, invalidated by the same
//!   model/table updates as the plan cache;
//! * a **micro-batcher** ([`MicroBatcher`]): concurrent single-row
//!   scoring requests coalesce into one batched pipeline invocation per
//!   flush window (the paper's §5 "batch inference" observation, applied
//!   to point lookups). The window is SLO-aware ([`BatchPolicy`]):
//!   per-request deadlines admit-or-shed at enqueue, expired requests
//!   are shed before the scoring batch is built, and the adaptive
//!   policy sizes each wait from the observed cost EWMAs versus the
//!   oldest queued deadline's slack.
//!
//! Around that state sits the network front end: a length-prefixed
//! framed-TCP protocol ([`proto`], version 6 — frames carry the tenant
//! and a request id; v3 peers land in the [`DEFAULT_TENANT`]) served by
//! a readiness-polling reactor over a small executor pool
//! ([`net::RavenServer`]) and spoken by two clients — the blocking
//! [`client::RavenClient`] (rebindable per namespace via
//! [`RavenClient::for_tenant`]) and the pipelined
//! [`client::PipelinedClient`], which keeps up to
//! [`net::NetConfig::max_inflight_per_conn`] requests in flight on one
//! connection and reassembles streamed, out-of-order replies by
//! request id — with two-ring admission control and
//! backpressure ([`admission`], [`TenantQuotaConfig`]) — a per-tenant
//! quota inside a server-wide bounded concurrent-execution semaphore,
//! a bounded wait queue, and per-request deadlines enforced through the
//! executor's cancellation token — rejecting overload with typed
//! [`ServerError::Overloaded`] / [`ServerError::DeadlineExceeded`]
//! frames instead of stalling the socket. A noisy tenant exhausts its
//! own quota at its own boundary; everyone else keeps their latency.
//!
//! Threaded through all of it is the observability layer
//! ([`raven_obs`]): every tenant owns a lock-cheap [`MetricsRegistry`]
//! (exact cross-tenant aggregation via snapshot [`RegistrySnapshot`]
//! merge, Prometheus-style text over the v5 `Metrics` frame) and a
//! [`raven_obs::TraceSink`] capturing head-sampled per-request span
//! trees — normalize → plan-cache lookup → parse/bind → optimize →
//! fingerprint → result-cache lookup → admission waits → per-operator
//! execution — with slow requests always kept for forensics and served
//! as [`Trace`]s over the v5 `Traces` frame
//! ([`RavenClient::slow_queries`]).
//!
//! Every method takes `&self`; wrap the state in an `Arc` and share it
//! across as many worker threads as the machine offers:
//!
//! ```
//! use raven_server::{ServerConfig, ServerState};
//! use raven_data::{Column, DataType, Schema, Table};
//! use raven_ml::featurize::Transform;
//! use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};
//! use std::sync::Arc;
//!
//! let server = Arc::new(ServerState::new(ServerConfig::for_tests()));
//! let table = Table::try_new(
//!     Schema::from_pairs(&[("age", DataType::Float64)]).into_shared(),
//!     vec![Column::from(vec![30.0, 60.0])],
//! ).unwrap();
//! server.register_table("patients", table).unwrap();
//! let model = Pipeline::new(
//!     vec![FeatureStep::new("age", Transform::Identity)],
//!     Estimator::Linear(LinearModel::new(vec![0.1], 0.0, LinearKind::Regression).unwrap()),
//! ).unwrap();
//! server.store_model("risk", model).unwrap();
//!
//! let sql = "SELECT p.score FROM PREDICT(MODEL = 'risk', DATA = patients AS d) \
//!            WITH (score FLOAT) AS p";
//! let threads: Vec<_> = (0..4).map(|_| {
//!     let server = server.clone();
//!     std::thread::spawn(move || server.execute(sql).unwrap().table.num_rows())
//! }).collect();
//! for t in threads {
//!     assert_eq!(t.join().unwrap(), 2);
//! }
//! // 4 requests, 1 optimization: the plan cache absorbed the rest.
//! assert_eq!(server.plan_cache_stats().preparations, 1);
//! ```

pub mod admission;
pub mod batcher;
pub mod cache;
pub mod client;
pub mod error;
pub mod net;
pub mod normalize;
pub mod proto;
pub mod result_cache;
pub mod state;
pub mod stats;
pub mod tenant;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit, AdmissionStats};
pub use batcher::{adaptive_flush_window, BatchConfig, BatchPolicy, BatcherStats, MicroBatcher};
pub use cache::{PlanCache, PlanCacheStats, PlanKey, PreparedQuery};
pub use client::{ClientQueryReply, PipelinedClient, RavenClient};
pub use error::{Result, ServerError};
pub use net::{NetConfig, RavenServer};
pub use normalize::{normalize, NormalizedQuery};
pub use proto::{ErrorCode, ProtoError, Request, Response, WireStats};
pub use result_cache::{ResultCache, ResultCacheStats, ResultDeps};
pub use state::{ServerConfig, ServerQueryResult, ServerState};
pub use stats::{LatencySummary, ServerStats, StatsSnapshot};
pub use tenant::{Tenant, TenantId, TenantQuotaConfig, DEFAULT_TENANT};

pub use raven_obs::{MetricsRegistry, RegistrySnapshot, Span, Trace};
