//! First-class tenants: isolated model/table namespaces served by one
//! engine.
//!
//! A [`TenantId`] names a namespace; a [`Tenant`] is that namespace's
//! slice of the serving stack — its own [`Catalog`], [`ModelStore`],
//! scorer (with its inference-session cache), executor, prepared-plan
//! cache, result cache, micro-batcher, admission quota, and stats. The
//! isolation is structural: nothing a request resolves inside one tenant
//! can touch another tenant's objects, so `alpha`'s `store_model("m")`
//! invalidates exactly `alpha`'s plans and memoized results and zero of
//! `beta`'s — even when both tenants hold a model named `m`.
//!
//! Defense in depth on cache keys: although every cache is per-tenant
//! (collisions across tenants are impossible by construction), the
//! tenant also lands in both key spaces — [`crate::cache::PlanKey`]
//! carries the tenant name, and result fingerprints are computed through
//! [`raven_ir::FingerprintBuilder::tenant`] — so a future refactor that
//! consolidated the maps could not silently lose the dimension.
//!
//! Quotas: each tenant carries its own [`AdmissionController`] sized by
//! [`TenantQuotaConfig`], acquired *before* the server-wide controller
//! (see `ServerState::serve_in`). Ordering matters for fairness: a noisy
//! tenant exhausts its own quota and is rejected with a typed
//! [`ServerError::Overloaded`] before it can occupy global execution
//! slots or queue positions that other tenants need.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::batcher::{BatcherStats, MicroBatcher};
use crate::cache::{PlanCache, PlanCacheStats, PlanKey, PreparedQuery};
use crate::error::{Result, ServerError};
use crate::result_cache::{ResultCache, ResultCacheStats, ResultDeps};
use crate::state::{ServerConfig, ServerQueryResult};
use crate::stats::{ServerStats, StatsSnapshot};
use raven_core::{ModelStore, RavenSession};
use raven_data::{Catalog, Table, Value};
use raven_ir::{FingerprintBuilder, PlanFingerprint};
use raven_ml::Pipeline;
use raven_obs::{MetricsRegistry, RegistrySnapshot, SpanRecorder, TraceConfig, TraceSink};
use raven_relational::{CancelToken, ExecError, SharedExecutor};
use raven_runtime::RavenScorer;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The namespace requests land in when they name no tenant — the one
/// tenant that always exists. Protocol-v3 peers (which predate tenancy)
/// are mapped here, as is every `ServerState` convenience method.
pub const DEFAULT_TENANT: &str = "default";

/// Longest accepted tenant name.
pub const MAX_TENANT_NAME_LEN: usize = 64;

/// A validated tenant name: 1–64 ASCII alphanumerics, `_`, `-`, or `.`.
///
/// Validation keeps tenant names safe to embed anywhere a name travels —
/// cache keys, fingerprints, log lines, stats displays — with no quoting
/// concerns, and rejects the empty string (which the wire protocol
/// reserves for "aggregate across tenants" in `Stats` frames).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// Validate and wrap a tenant name.
    pub fn new(name: impl Into<String>) -> Result<TenantId> {
        let name = name.into();
        if name.is_empty() || name.len() > MAX_TENANT_NAME_LEN {
            return Err(ServerError::BadRequest(format!(
                "tenant name must be 1..={MAX_TENANT_NAME_LEN} bytes, got {}",
                name.len()
            )));
        }
        if let Some(bad) = name
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')))
        {
            return Err(ServerError::BadRequest(format!(
                "tenant name {name:?} contains {bad:?}; allowed: ASCII alphanumerics, '_', '-', '.'"
            )));
        }
        Ok(TenantId(name))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId(DEFAULT_TENANT.to_string())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TenantId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Per-tenant admission quota, layered *inside* the server-wide
/// [`AdmissionConfig`]: a tenant's requests must clear both rings. The
/// defaults (unlimited concurrency, a short bounded queue) keep
/// single-tenant deployments byte-for-byte compatible with the
/// pre-tenancy behavior; set `max_concurrent` to bound how much of the
/// engine one tenant can hold at once.
#[derive(Debug, Clone)]
pub struct TenantQuotaConfig {
    /// Maximum queries one tenant executes concurrently (0 = unlimited).
    pub max_concurrent: usize,
    /// Maximum requests one tenant may have waiting for its quota;
    /// arrivals beyond this are rejected `Overloaded` immediately.
    pub max_queued: usize,
    /// Longest a request waits for tenant quota before rejection.
    pub queue_timeout: Duration,
}

impl Default for TenantQuotaConfig {
    fn default() -> Self {
        TenantQuotaConfig {
            max_concurrent: 0,
            max_queued: 64,
            queue_timeout: Duration::from_millis(100),
        }
    }
}

impl TenantQuotaConfig {
    /// A strict quota: at most `max_concurrent` executions, no waiting
    /// room — everything beyond rejects immediately.
    pub fn strict(max_concurrent: usize) -> Self {
        TenantQuotaConfig {
            max_concurrent,
            max_queued: 0,
            queue_timeout: Duration::ZERO,
        }
    }

    pub(crate) fn admission(&self) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: self.max_concurrent,
            max_queued: self.max_queued,
            queue_timeout: self.queue_timeout,
            // Deadlines are a request/server property, not a quota one;
            // the serve path resolves the default before admission.
            default_deadline: None,
        }
    }
}

/// One tenant's slice of the serving stack. Shared behind an `Arc`; all
/// methods take `&self`.
pub struct Tenant {
    id: TenantId,
    catalog: Arc<Catalog>,
    store: Arc<ModelStore>,
    scorer: Arc<RavenScorer>,
    executor: SharedExecutor,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    batcher: MicroBatcher,
    quota: AdmissionController,
    stats: ServerStats,
    /// Unified metric registry: the batcher's counters/histograms, the
    /// stats recorder's mirrored request counters, and the latency
    /// histogram all register here. Cache counters are folded in at
    /// snapshot time ([`Tenant::metrics_snapshot`]) — they keep their own
    /// consistent accounting.
    metrics: Arc<MetricsRegistry>,
    /// Per-tenant trace capture: head sampling plus the slow-query ring.
    trace_sink: Arc<TraceSink>,
    /// Memoized [`crate::normalize::normalize`] results keyed on the raw
    /// request text. Normalization is a pure function of the text but
    /// re-tokenizes the whole query; on a warm point-query workload that
    /// was the single largest per-request cost. Bounded FIFO eviction.
    normalize_memo: Mutex<NormalizeMemo>,
    config: ServerConfig,
}

/// See [`Tenant::normalize_memo`].
#[derive(Default)]
struct NormalizeMemo {
    map: HashMap<String, Option<crate::normalize::NormalizedQuery>>,
    order: VecDeque<String>,
}

const NORMALIZE_MEMO_CAP: usize = 512;

impl NormalizeMemo {
    fn get_or_compute(&mut self, sql: &str) -> Option<crate::normalize::NormalizedQuery> {
        if let Some(hit) = self.map.get(sql) {
            return hit.clone();
        }
        let computed = crate::normalize::normalize(sql);
        if self.map.len() >= NORMALIZE_MEMO_CAP {
            if let Some(evict) = self.order.pop_front() {
                self.map.remove(&evict);
            }
        }
        self.map.insert(sql.to_string(), computed.clone());
        self.order.push_back(sql.to_string());
        computed
    }
}

impl Tenant {
    /// Assemble a tenant from its shared parts (the catalog typically
    /// comes from the server's [`raven_data::CatalogShards`]) plus the
    /// serving configuration whose cache/batch budgets it applies
    /// per-tenant. `trace_seq` is the server-wide trace sequence counter,
    /// shared so aggregate trace views interleave tenants in capture
    /// order.
    pub(crate) fn from_parts(
        id: TenantId,
        catalog: Arc<Catalog>,
        store: Arc<ModelStore>,
        scorer: Arc<RavenScorer>,
        quota: TenantQuotaConfig,
        config: ServerConfig,
        trace_seq: Arc<AtomicU64>,
    ) -> Self {
        let executor = SharedExecutor::new(
            catalog.clone(),
            scorer.clone() as Arc<dyn raven_relational::Scorer>,
            config.session.exec,
        );
        let metrics = Arc::new(MetricsRegistry::new());
        let batcher = MicroBatcher::with_registry(store.clone(), config.batch.clone(), &metrics);
        let trace_sink = Arc::new(TraceSink::new(
            TraceConfig {
                sample_every: config.trace_sample_rate,
                slow_threshold: config.slow_query_threshold,
                ring_capacity: config.trace_ring_capacity,
            },
            trace_seq,
        ));
        let stats = ServerStats::with_registry(&metrics);
        Tenant {
            id,
            catalog,
            store,
            scorer,
            executor,
            plan_cache: PlanCache::new(config.plan_cache_capacity.max(1)),
            result_cache: ResultCache::new(
                config.result_cache_capacity.max(1),
                config.result_cache_max_bytes,
            ),
            batcher,
            quota: AdmissionController::new(quota.admission()),
            stats,
            metrics,
            trace_sink,
            normalize_memo: Mutex::new(NormalizeMemo::default()),
            config,
        }
    }

    /// This tenant's name.
    pub fn id(&self) -> &TenantId {
        &self.id
    }

    /// This tenant's table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// This tenant's model store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// This tenant's quota controller (acquired before the global ring).
    /// Public so operators and tests can hold or inspect quota permits
    /// directly; the serve path acquires it automatically.
    pub fn quota(&self) -> &AdmissionController {
        &self.quota
    }

    /// Raw quota-controller counters (permits at the tenant ring only;
    /// the per-request outcome counters live in [`Tenant::snapshot`]).
    pub fn quota_stats(&self) -> AdmissionStats {
        self.quota.stats()
    }

    pub(crate) fn stats_recorder(&self) -> &ServerStats {
        &self.stats
    }

    /// A session over this tenant's shared state (training flows,
    /// EXPLAIN, ad-hoc work); queries through it bypass the plan cache.
    pub fn session(&self) -> RavenSession {
        RavenSession::from_shared(
            self.catalog.clone(),
            self.store.clone(),
            self.scorer.clone(),
            self.config.session.clone(),
        )
    }

    /// Register a table in this tenant. Errors if the name is taken.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        self.catalog
            .register(name, table)
            .map_err(|e| ServerError::Data(e.to_string()))
    }

    /// Replace (or insert) a table in this tenant, invalidating every
    /// cached plan that scans it and every memoized result computed from
    /// it — in this tenant only.
    pub fn replace_table(&self, name: &str, table: Table) {
        self.catalog.register_or_replace(name, table);
        self.plan_cache.invalidate_table(name);
        self.result_cache.invalidate_table(name);
    }

    /// Store a model in this tenant (new version if the name exists),
    /// invalidating this tenant's dependent plans, inference sessions,
    /// and memoized results. Other tenants' caches are untouched even if
    /// they hold a model with the same name.
    pub fn store_model(&self, name: &str, pipeline: Pipeline) -> Result<u32> {
        let version = self.store.store(name, pipeline);
        self.scorer.invalidate(name);
        self.plan_cache.invalidate_model(name);
        self.result_cache.invalidate_model(name);
        Ok(version)
    }

    /// Prepare `sql` through this tenant's plan cache; returns the
    /// prepared plan and whether it was a cache hit.
    pub fn prepare(&self, sql: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        let (prepared, cache_hit, _params) =
            self.prepare_normalized(sql, &SpanRecorder::disabled())?;
        Ok((prepared, cache_hit))
    }

    /// Normalize (when enabled) and prepare: the prepared template plan,
    /// whether it was a cache hit, and the parameter values extracted
    /// from `sql` (empty on the exact-text path).
    fn prepare_normalized(
        &self,
        sql: &str,
        trace: &SpanRecorder,
    ) -> Result<(Arc<PreparedQuery>, bool, Vec<Value>)> {
        if self.config.normalize_parameters {
            let normalized = {
                let _span = trace.span("normalize");
                self.normalize_memo.lock().unwrap().get_or_compute(sql)
            };
            if let Some(n) = normalized {
                match self.prepare_text(&n.template, trace) {
                    Ok((prepared, cache_hit)) if prepared.param_count == n.params.len() => {
                        if n.has_params() {
                            self.stats.record_normalized(cache_hit);
                        }
                        return Ok((prepared, cache_hit, n.params));
                    }
                    // The template didn't prepare (e.g. a literal whose
                    // placeholder type is uninferable, like a bare
                    // `SELECT 5`) or its arity surprised us: fall back to
                    // the exact literal text below.
                    _ => {}
                }
            }
            let canonical = crate::normalize::canonicalize(sql).unwrap_or_else(|| sql.to_string());
            let (prepared, cache_hit) = self.prepare_text(&canonical, trace)?;
            return Ok((prepared, cache_hit, Vec::new()));
        }
        let (prepared, cache_hit) = self.prepare_text(sql, trace)?;
        Ok((prepared, cache_hit, Vec::new()))
    }

    /// Prepare exactly this text (template or literal SQL), consulting
    /// this tenant's plan cache keyed on (tenant, text, optimizer config).
    pub(crate) fn prepare_text(
        &self,
        sql: &str,
        trace: &SpanRecorder,
    ) -> Result<(Arc<PreparedQuery>, bool)> {
        let _span = trace.span("plan-cache-lookup");
        let key = PlanKey {
            tenant: self.id.as_str().to_string(),
            sql: sql.to_string(),
            rules: self.config.session.rules,
            mode: self.config.session.optimizer_mode,
        };
        if self.config.plan_cache_capacity == 0 {
            let prepared = self.prepare_uncached(sql, trace)?;
            self.plan_cache.note_uncached_preparation();
            return Ok((Arc::new(prepared), false));
        }
        self.plan_cache
            .get_or_prepare(key, || self.prepare_uncached(sql, trace))
    }

    fn prepare_uncached(&self, sql: &str, trace: &SpanRecorder) -> Result<PreparedQuery> {
        let start = Instant::now();
        let session = self.session();
        let bound = {
            let _span = trace.span("parse-bind");
            session.plan(sql)?
        };
        // Feedback loop into planning: the micro-batcher's EWMA of
        // observed per-row scoring cost (µs, 0 until the first batch)
        // becomes the optimizer's observed classical cost (≈ns units),
        // so kernel placement prices the classical path at what this
        // tenant actually measured rather than the static estimate.
        let observed_row_us = self.metrics.gauge("batcher_ewma_row_us").get();
        let observed = raven_opt::ObservedCosts {
            classical_row_ns: (observed_row_us > 0.0).then_some(observed_row_us * 1_000.0),
        };
        let (optimized, report) = {
            let _span = trace.span("optimize");
            session.optimize_with_observed(bound.clone(), observed)?
        };
        // Placement accounting: where each surviving model operator landed.
        optimized.visit(&mut |p| match p {
            raven_ir::Plan::KernelPredict { .. } => {
                self.metrics.counter("placement_kernel_total").inc()
            }
            raven_ir::Plan::TensorPredict { .. } => {
                self.metrics.counter("placement_tensor_total").inc()
            }
            raven_ir::Plan::Predict { .. } | raven_ir::Plan::ClusteredPredict { .. } => {
                self.metrics.counter("placement_classical_total").inc()
            }
            _ => {}
        });
        Ok(PreparedQuery::from_stages(
            sql,
            &bound,
            optimized,
            report,
            start.elapsed(),
        ))
    }

    /// Snapshot this tenant's result-cache epoch. Must happen **before**
    /// the plan this request will execute is resolved; see
    /// [`ResultCache::epoch`].
    pub(crate) fn result_epoch(&self) -> u64 {
        self.result_cache.epoch()
    }

    /// The body of a literal-SQL request, called with permits held.
    pub(crate) fn execute_inner(
        &self,
        sql: &str,
        start: Instant,
        deadline_at: Option<Instant>,
        trace: &SpanRecorder,
    ) -> Result<ServerQueryResult> {
        let result_epoch = self.result_epoch();
        let (prepared, cache_hit, params) = self.prepare_normalized(sql, trace)?;
        self.run_prepared(
            prepared,
            cache_hit,
            &params,
            start,
            deadline_at,
            result_epoch,
            trace,
        )
    }

    /// The body of a pre-parameterized request, called with permits held.
    pub(crate) fn execute_params_inner(
        &self,
        template: &str,
        params: &[Value],
        start: Instant,
        deadline_at: Option<Instant>,
        trace: &SpanRecorder,
    ) -> Result<ServerQueryResult> {
        let result_epoch = self.result_epoch();
        // Canonicalize spacing so a hand-written template and the
        // normalizer's rendering of the equivalent literal query share
        // one cache entry.
        let canonical =
            crate::normalize::canonicalize(template).unwrap_or_else(|| template.to_string());
        let (prepared, cache_hit) = self.prepare_text(&canonical, trace)?;
        if prepared.param_count != params.len() {
            return Err(ServerError::BadRequest(format!(
                "statement expects {} parameter(s), got {}",
                prepared.param_count,
                params.len()
            )));
        }
        self.run_prepared(
            prepared,
            cache_hit,
            params,
            start,
            deadline_at,
            result_epoch,
            trace,
        )
    }

    /// The result-cache key for one request: the tenant, the optimized
    /// plan's structure, this request's bound parameter values, and the
    /// current version of every model and table the plan depends on —
    /// resolved against *this tenant's* store and catalog. The tenant
    /// dimension makes cross-tenant key collisions structurally
    /// impossible even though each tenant already has its own cache.
    fn result_fingerprint(&self, prepared: &PreparedQuery, params: &[Value]) -> PlanFingerprint {
        // The (tenant, plan-structure) prefix is a pure function of this
        // plan-cache entry: hash it once, fold per-request inputs in on
        // top of a clone. On a large inference plan this takes the warm
        // path from "hash the whole tree" to two u64 copies.
        let base = prepared.fingerprint_base.get_or_init(|| {
            FingerprintBuilder::new()
                .tenant(self.id.as_str())
                .plan(&prepared.plan)
        });
        let mut builder = base.clone().params(params);
        for model in &prepared.model_deps {
            builder = builder.dependency("model", model, self.store.latest_version(model) as u64);
        }
        for table in &prepared.table_deps {
            builder =
                builder.dependency("table", table, self.catalog.generation(table).unwrap_or(0));
        }
        builder.finish()
    }

    /// Plan-cache lookup without counting or preparing: the probe phase
    /// of the reactor's cached-result fast path. `None` means cold (or
    /// caching disabled) — fall back to the pooled path, which does its
    /// own counted lookup.
    fn peek_prepared(&self, text: &str) -> Option<Arc<PreparedQuery>> {
        if self.config.plan_cache_capacity == 0 {
            return None;
        }
        let key = PlanKey {
            tenant: self.id.as_str().to_string(),
            sql: text.to_string(),
            rules: self.config.session.rules,
            mode: self.config.session.optimizer_mode,
        };
        self.plan_cache.peek(&key)
    }

    /// Serve a literal-SQL request **entirely from warm caches**, or
    /// decline. This is the reactor's inline fast path: it runs on the
    /// event-loop thread, so it must never block (both admission rings
    /// are probed with `try_admit`), never execute a plan, and never
    /// mutate a cache. Any cold step — normalize memo miss is tolerated,
    /// but a plan-cache or result-cache miss, an arity surprise, a
    /// saturated ring, a reply larger than `max_bytes` (the connection's
    /// remaining backlog room) — returns `None` and the request takes
    /// the pooled path, which repeats the probes with full accounting.
    ///
    /// Accounting parity is the contract here: a committed fast-path
    /// query is indistinguishable in every counter from a pooled
    /// result-cache hit (admitted, plan hit, normalized, result hit,
    /// query latency/rows, trace begin/finish) — the equivalence and
    /// stress suites assert these reconcile exactly.
    pub(crate) fn serve_cached_fast(
        &self,
        sql: &str,
        start: Instant,
        deadline_at: Option<Instant>,
        max_bytes: usize,
        global: &AdmissionController,
    ) -> Option<ServerQueryResult> {
        if self.config.result_cache_capacity == 0 {
            return None;
        }
        let (prepared, params, normalized) = if self.config.normalize_parameters {
            match self.normalize_memo.lock().unwrap().get_or_compute(sql) {
                Some(n) => {
                    let prepared = self.peek_prepared(&n.template)?;
                    if prepared.param_count != n.params.len() {
                        // Arity surprise: the pooled path falls back to
                        // the literal text; let it.
                        return None;
                    }
                    let has_params = n.has_params();
                    (prepared, n.params, has_params)
                }
                None => {
                    let canonical =
                        crate::normalize::canonicalize(sql).unwrap_or_else(|| sql.to_string());
                    (self.peek_prepared(&canonical)?, Vec::new(), false)
                }
            }
        } else {
            (self.peek_prepared(sql)?, Vec::new(), false)
        };
        self.commit_cached_fast(
            prepared,
            params,
            normalized,
            sql,
            start,
            deadline_at,
            max_bytes,
            global,
        )
    }

    /// [`Tenant::serve_cached_fast`] for the pre-parameterized wire path.
    pub(crate) fn serve_cached_fast_params(
        &self,
        template: &str,
        params: &[Value],
        start: Instant,
        deadline_at: Option<Instant>,
        max_bytes: usize,
        global: &AdmissionController,
    ) -> Option<ServerQueryResult> {
        if self.config.result_cache_capacity == 0 {
            return None;
        }
        let canonical =
            crate::normalize::canonicalize(template).unwrap_or_else(|| template.to_string());
        let prepared = self.peek_prepared(&canonical)?;
        if prepared.param_count != params.len() {
            // Let the pooled path produce the typed BadRequest.
            return None;
        }
        self.commit_cached_fast(
            prepared,
            params.to_vec(),
            false,
            template,
            start,
            deadline_at,
            max_bytes,
            global,
        )
    }

    /// Shared tail of the fast path: result-cache peek, both admission
    /// rings (non-blocking), then commit every counter the pooled
    /// result-cache-hit path would have recorded.
    #[allow(clippy::too_many_arguments)]
    fn commit_cached_fast(
        &self,
        prepared: Arc<PreparedQuery>,
        params: Vec<Value>,
        normalized: bool,
        trace_sql: &str,
        start: Instant,
        deadline_at: Option<Instant>,
        max_bytes: usize,
        global: &AdmissionController,
    ) -> Option<ServerQueryResult> {
        if !prepared.determinism.cacheable {
            return None;
        }
        let fingerprint = self.result_fingerprint(&prepared, &params);
        let (table, bytes) = self.result_cache.peek(&fingerprint)?;
        if bytes > max_bytes {
            // The reply may not fit the connection's backlog budget;
            // the pooled path's streaming backpressure handles it.
            return None;
        }
        if let Some(at) = deadline_at {
            if Instant::now() >= at {
                // Expired on arrival: the pooled path records the typed
                // rejection.
                return None;
            }
        }
        // Ring 1 (tenant quota) before ring 2 (global), same order as the
        // pooled path; nothing is counted until both are held.
        let _tenant_permit = self.quota.try_admit()?;
        let _global_permit = global.try_admit()?;
        self.quota.note_admitted();
        global.note_admitted();
        // Commit: from here the request *is* served, and every counter
        // mirrors a pooled result-cache hit.
        let trace = self.trace_sink.begin();
        self.stats.record_admitted();
        self.plan_cache.note_hit();
        if normalized {
            self.stats.record_normalized(true);
        }
        self.result_cache.note_hit();
        let total_time = start.elapsed();
        self.stats.record_query(total_time, table.num_rows());
        self.trace_sink
            .finish(trace, self.id.as_str(), trace_sql, total_time);
        Some(ServerQueryResult {
            table,
            total_time,
            exec_time: total_time,
            cache_hit: true,
            result_cache_hit: true,
            prepared,
        })
    }

    /// Execute a prepared (possibly parameterized) plan under the
    /// deadline's cancellation token, routing deterministic plans through
    /// this tenant's result cache. See the pre-tenancy contract on
    /// [`ResultCache::get_or_execute`] — unchanged, now per tenant.
    #[allow(clippy::too_many_arguments)]
    fn run_prepared(
        &self,
        prepared: Arc<PreparedQuery>,
        cache_hit: bool,
        params: &[Value],
        start: Instant,
        deadline_at: Option<Instant>,
        result_epoch: u64,
        trace: &SpanRecorder,
    ) -> Result<ServerQueryResult> {
        let exec_start = Instant::now();
        let cancel = match deadline_at {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let map_exec_err = |e: ExecError| match e {
            ExecError::Cancelled => ServerError::DeadlineExceeded(format!(
                "query exceeded its deadline after {:?}",
                start.elapsed()
            )),
            e => ServerError::Execution(e.to_string()),
        };
        let caching = self.config.result_cache_capacity > 0;
        let (table, result_cache_hit) = if caching && prepared.determinism.cacheable {
            let fingerprint = {
                let _span = trace.span("fingerprint");
                self.result_fingerprint(&prepared, params)
            };
            let deps = ResultDeps {
                models: prepared.model_deps.clone(),
                tables: prepared.table_deps.clone(),
            };
            // The lookup span covers the whole get_or_execute: on a hit
            // it is the replay cost, on a miss the per-operator spans of
            // the execution nest inside it.
            let _span = trace.span("result-cache-lookup");
            self.result_cache
                .get_or_execute(
                    fingerprint,
                    result_epoch,
                    deps,
                    // Polled while waiting on another thread's in-flight
                    // execution of the same fingerprint: this request's
                    // deadline keeps firing even though it runs no plan.
                    || cancel.check(),
                    || {
                        self.executor
                            .execute_traced(&prepared.plan, params, &cancel, trace)
                    },
                )
                .map_err(map_exec_err)?
        } else {
            if caching {
                self.result_cache.note_uncacheable();
            }
            let table = self
                .executor
                .execute_traced(&prepared.plan, params, &cancel, trace)
                .map_err(map_exec_err)?;
            (Arc::new(table), false)
        };
        let exec_time = exec_start.elapsed();
        let total_time = start.elapsed();
        self.stats.record_query(total_time, table.num_rows());
        Ok(ServerQueryResult {
            table,
            total_time,
            exec_time,
            cache_hit,
            result_cache_hit,
            prepared,
        })
    }

    /// Score one raw feature row against `model` via this tenant's
    /// micro-batcher (blocks until the coalesced batch completes). The
    /// request participates in tracing like a query: sampled scores get
    /// a span tree (queue wait + scorer invocation) and slow ones land
    /// in the slow-query ring under the synthetic SQL `score:<model>`.
    pub fn score_row(&self, model: &str, row: Vec<f64>) -> Result<f64> {
        self.score_row_with_deadline(model, row, None)
    }

    /// [`Tenant::score_row`] under an SLO: `deadline` (or, when `None`,
    /// the server's `admission.default_deadline`) bounds the whole
    /// batched round-trip. The batcher sheds the request typed — at
    /// enqueue when the cost model predicts a miss, at flush when the
    /// deadline expired while queued — and the wait itself times out
    /// instead of blocking past the deadline.
    pub fn score_row_with_deadline(
        &self,
        model: &str,
        row: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<f64> {
        let start = Instant::now();
        let deadline_at = deadline
            .or(self.config.admission.default_deadline)
            .map(|d| start + d);
        if self.trace_sink.config().sample_every == 0 {
            // Tracing off: the plain path, no per-request allocation.
            return self.batcher.score_with_deadline(
                model,
                row,
                deadline_at,
                None,
                &SpanRecorder::disabled(),
            );
        }
        let trace = self.trace_sink.begin();
        let outcome = self
            .batcher
            .score_with_deadline(model, row, deadline_at, None, &trace);
        self.trace_sink.finish(
            trace,
            self.id.as_str(),
            &format!("score:{model}"),
            start.elapsed(),
        );
        outcome
    }

    /// This tenant's plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// This tenant's result-cache counters.
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.result_cache.stats()
    }

    /// This tenant's micro-batcher counters.
    pub fn batcher_stats(&self) -> BatcherStats {
        self.batcher.stats()
    }

    /// This tenant's unified metric registry (live handles).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// This tenant's trace capture: head-sampled span trees plus the
    /// slow-query ring.
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace_sink
    }

    /// A point-in-time metric snapshot: the live registry (request
    /// counters, latency histogram, batcher metrics) plus the cache and
    /// quota counters that keep their own consistent accounting, folded
    /// in under stable names. Snapshots merge exactly across tenants —
    /// see [`RegistrySnapshot::merge`].
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.metrics.snapshot();
        let plans = self.plan_cache.stats();
        snap.add_counter("plan_cache_hits_total", plans.hits);
        snap.add_counter("plan_cache_misses_total", plans.misses);
        snap.add_counter("plan_cache_preparations_total", plans.preparations);
        snap.add_counter("plan_cache_evictions_total", plans.evictions);
        snap.add_counter("plan_cache_invalidations_total", plans.invalidations);
        let results = self.result_cache.stats();
        snap.add_counter("result_cache_hits_total", results.hits);
        snap.add_counter("result_cache_misses_total", results.misses);
        snap.add_counter("result_cache_executions_total", results.executions);
        snap.add_counter("result_cache_evictions_total", results.evictions);
        snap.add_counter("result_cache_invalidations_total", results.invalidations);
        snap.add_counter("result_cache_uncacheable_total", results.uncacheable);
        let (session_hits, session_misses) = self.scorer.cache_stats();
        snap.add_counter("session_cache_hits_total", session_hits);
        snap.add_counter("session_cache_misses_total", session_misses);
        let quota = self.quota.stats();
        snap.add_counter("quota_permits_total", quota.admitted);
        snap
    }

    /// Full observability snapshot for this tenant: throughput, latency
    /// percentiles, cache counters, and per-request admission outcomes.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot(
            self.plan_cache.stats(),
            self.result_cache.stats(),
            self.scorer.cache_stats(),
            self.batcher.stats(),
        )
    }

    /// This tenant's counters plus its raw latency window (µs), read
    /// under one lock — the consistent unit the cross-tenant aggregate
    /// merges. The snapshot's `latency` summary is deliberately left
    /// unset (the aggregate recomputes it over the merged windows);
    /// use [`Tenant::snapshot`] for a self-contained view.
    pub(crate) fn snapshot_with_samples(&self) -> (StatsSnapshot, Vec<u64>) {
        self.stats.snapshot_with_samples(
            self.plan_cache.stats(),
            self.result_cache.stats(),
            self.scorer.cache_stats(),
            self.batcher.stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_ids_validate() {
        for good in ["default", "team-a", "a", "v1.2_x", &"x".repeat(64)] {
            assert!(TenantId::new(good).is_ok(), "{good:?} must validate");
        }
        for bad in ["", " ", "a b", "a/b", "a\nb", "héllo", &"x".repeat(65)] {
            assert!(
                matches!(TenantId::new(bad), Err(ServerError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
        assert_eq!(TenantId::default().as_str(), DEFAULT_TENANT);
        assert_eq!(TenantId::new("acme").unwrap().to_string(), "acme");
    }

    #[test]
    fn strict_quota_config_maps_to_admission() {
        let quota = TenantQuotaConfig::strict(2).admission();
        assert_eq!(quota.max_concurrent, 2);
        assert_eq!(quota.max_queued, 0);
        assert_eq!(quota.queue_timeout, Duration::ZERO);
        assert!(quota.default_deadline.is_none());
        // Defaults keep single-tenant behavior: unlimited concurrency.
        assert_eq!(TenantQuotaConfig::default().max_concurrent, 0);
    }
}
