//! The deterministic result cache: execute a pure query once, replay its
//! table for every identical repeat.
//!
//! Sits one layer above the prepared-plan cache ([`crate::cache`]). The
//! plan cache amortizes parse → bind → optimize per query *shape*; this
//! cache amortizes execution itself per (shape, parameter values,
//! dependency versions) — the hot repeat path of serving traffic becomes
//! a hash lookup. Keys are [`PlanFingerprint`]s computed by
//! [`crate::ServerState`] over the optimized plan, the request's bound
//! parameter values, and the store/catalog versions of every model and
//! table the plan depends on; only plans the determinism analysis
//! ([`raven_opt::determinism`]) marks pure are ever admitted.
//!
//! Correctness rests on three mechanisms, each of which has a test:
//!
//! * **version-keyed fingerprints** — a model update or table swap moves
//!   the version, so post-update requests compute a different key and
//!   can never hit a pre-update entry, even one that (transiently)
//!   survived invalidation;
//! * **dependency invalidation** — [`ResultCache::invalidate_model`] /
//!   [`ResultCache::invalidate_table`] drop affected entries eagerly, so
//!   stale tables do not linger holding memory;
//! * **epoch guard** — an execution that overlaps an invalidation must
//!   not publish its (possibly stale-input) result. The caller snapshots
//!   [`ResultCache::epoch`] *before* resolving the plan it will execute;
//!   the insert is dropped unless the epoch is still current, under the
//!   same lock invalidations take.
//!
//! Population is **single-flight**: when N threads miss on one hot
//! fingerprint simultaneously, one executes while the rest wait on the
//! claim and then hit — the execution the cache exists to save is never
//! duplicated by a stampede.

use parking_lot::Mutex;
use raven_data::{Column, Table};
use raven_ir::PlanFingerprint;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How often a single-flight waiter wakes to re-poll its abort check
/// (deadline/cancellation) while another thread populates the entry.
const WAIT_TICK: Duration = Duration::from_millis(10);

/// Counters exposed by [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Requests served by replaying a stored table (execution skipped) —
    /// including single-flight waiters that found the entry after
    /// waiting out the populating execution.
    pub hits: u64,
    /// Requests served by executing (the cold path). Each successfully
    /// served cacheable request counts exactly one hit or one miss, so
    /// `hits + misses` reconciles against the server's query total.
    pub misses: u64,
    /// Executions actually run by [`ResultCache::get_or_execute`]. Can
    /// exceed `misses`: a failed execution is work done but no request
    /// served.
    pub executions: u64,
    pub evictions: u64,
    /// Entries dropped by model/table invalidation.
    pub invalidations: u64,
    /// Requests that bypassed the cache because the determinism analysis
    /// refused their plan (volatile operator) — the denominator a low
    /// hit rate should be read against.
    pub uncacheable: u64,
    /// Results served but not cached because a single table exceeded the
    /// entire byte budget (visible, not silent).
    pub too_large: u64,
}

impl std::ops::AddAssign for ResultCacheStats {
    fn add_assign(&mut self, other: Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.executions += other.executions;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.uncacheable += other.uncacheable;
        self.too_large += other.too_large;
    }
}

impl ResultCacheStats {
    /// Hit fraction in `[0, 1]` over cacheable lookups (0 before any).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for ResultCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} executions, \
             {} evictions, {} invalidations, {} uncacheable, {} too large",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.executions,
            self.evictions,
            self.invalidations,
            self.uncacheable,
            self.too_large
        )
    }
}

/// The dependency names an entry is invalidated by, copied from the
/// prepared plan that produced it.
#[derive(Debug, Clone, Default)]
pub struct ResultDeps {
    pub models: Vec<String>,
    pub tables: Vec<String>,
}

/// Approximate resident bytes of a materialized table — the weight the
/// byte budget evicts against. Column payloads dominate; per-string and
/// per-column overheads are estimated, not measured.
fn table_bytes(table: &Table) -> usize {
    table
        .batch()
        .columns()
        .iter()
        .map(|col| match col.as_ref() {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
        })
        .sum()
}

struct Entry {
    table: Arc<Table>,
    deps: ResultDeps,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<PlanFingerprint, Entry>,
    /// Sum of `Entry::bytes` — kept incrementally, enforced ≤ budget.
    total_bytes: usize,
    tick: u64,
    stats: ResultCacheStats,
    /// Bumped by every invalidation under this lock; see the epoch guard
    /// contract on [`ResultCache::epoch`].
    epoch: u64,
}

impl Inner {
    fn touch(&mut self, key: &PlanFingerprint) -> Option<Arc<Table>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.table.clone()
        })
    }

    fn evict_lru(&mut self) -> bool {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&k, _)| k);
        match victim {
            Some(k) => {
                if let Some(e) = self.map.remove(&k) {
                    self.total_bytes -= e.bytes;
                }
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    fn insert(
        &mut self,
        capacity: usize,
        max_bytes: usize,
        key: PlanFingerprint,
        table: Arc<Table>,
        deps: ResultDeps,
    ) {
        self.tick += 1;
        let tick = self.tick;
        let bytes = table_bytes(&table);
        // A single result larger than the whole budget would evict
        // everything and still not fit durably: serve it, skip caching
        // it (counted so the cap is visible, not silent).
        if max_bytes > 0 && bytes > max_bytes {
            self.stats.too_large += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.total_bytes -= old.bytes;
        }
        // Make room: entry count first, then the byte budget.
        while self.map.len() >= capacity {
            if !self.evict_lru() {
                break;
            }
        }
        while max_bytes > 0 && self.total_bytes + bytes > max_bytes {
            if !self.evict_lru() {
                break;
            }
        }
        self.total_bytes += bytes;
        self.map.insert(
            key,
            Entry {
                table,
                deps,
                bytes,
                last_used: tick,
            },
        );
    }
}

/// A bounded LRU cache of materialized result tables keyed on
/// [`PlanFingerprint`], with single-flight population and model/table
/// dependency invalidation.
pub struct ResultCache {
    capacity: usize,
    /// Byte budget across all cached tables (0 = unbounded). Entry
    /// count alone is no bound when entries are whole result tables.
    max_bytes: usize,
    inner: Mutex<Inner>,
    // std primitives: waiting on a condvar needs guard-by-value semantics.
    inflight: std::sync::Mutex<HashSet<PlanFingerprint>>,
    inflight_done: std::sync::Condvar,
}

/// Releases a single-flight claim on drop — including a panicking
/// `execute` — so waiters always wake and can retry.
struct ClaimGuard<'a> {
    cache: &'a ResultCache,
    key: PlanFingerprint,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self
            .cache
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inflight.remove(&self.key);
        self.cache.inflight_done.notify_all();
    }
}

impl ResultCache {
    /// `capacity` = maximum cached result tables (≥ 1); `max_bytes`
    /// bounds their summed approximate size (0 = unbounded).
    pub fn new(capacity: usize, max_bytes: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            max_bytes,
            inner: Mutex::new(Inner::default()),
            inflight: std::sync::Mutex::new(HashSet::new()),
            inflight_done: std::sync::Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate bytes currently held by cached result tables.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().total_bytes
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> ResultCacheStats {
        self.inner.lock().stats
    }

    /// Count a request whose plan the determinism analysis refused.
    pub fn note_uncacheable(&self) {
        self.inner.lock().stats.uncacheable += 1;
    }

    /// The current invalidation epoch. The caller must read this
    /// **before** resolving the plan/versions it will execute under a
    /// fingerprint, and pass it to [`ResultCache::get_or_execute`]: any
    /// invalidation between the two proves the inputs may have been
    /// superseded mid-request, and the result is served but not cached.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Look up `key`, counting a hit (and nothing on absence). Misses
    /// are counted at serve time instead — see the accounting contract
    /// on [`ResultCache::get_or_execute`].
    fn lookup_hit(&self, key: &PlanFingerprint) -> Option<Arc<Table>> {
        let mut inner = self.inner.lock();
        let found = inner.touch(key);
        if found.is_some() {
            inner.stats.hits += 1;
        }
        found
    }

    /// Look up `key` without counting anything, returning the table and
    /// its accounted byte size. Probe phase of the reactor's fast path:
    /// the hit is counted via [`Self::note_hit`] only once the caller
    /// commits, so an abandoned probe (backlog full, admission busy)
    /// leaves the accounting contract on [`Self::get_or_execute`] intact.
    pub(crate) fn peek(&self, key: &PlanFingerprint) -> Option<(Arc<Table>, usize)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            (e.table.clone(), e.bytes)
        })
    }

    /// Count a hit observed via [`Self::peek`] once the caller commits to
    /// replaying it.
    pub(crate) fn note_hit(&self) {
        self.inner.lock().stats.hits += 1;
    }

    /// The cached table for `key`, or execute once and (epoch
    /// permitting) cache it. Returns the table and whether it was a hit.
    ///
    /// `execute` runs outside all cache locks, at most once per key
    /// across concurrent callers; on error nothing is cached and the
    /// next caller retries. `epoch` is the caller's pre-plan-resolution
    /// snapshot of [`ResultCache::epoch`]. `abort` is polled while
    /// waiting on another thread's in-flight execution (every
    /// `WAIT_TICK`, 10 ms): a request whose deadline expires mid-wait
    /// returns that error instead of silently outliving its deadline in
    /// the condvar — single-flight must not suspend cancellation.
    ///
    /// Accounting contract: every call that returns `Ok` counts exactly
    /// one `hit` (served by replay — including a single-flight waiter
    /// that found the entry after waiting) or one `miss` (served by
    /// executing), so `hits + misses` always equals successfully served
    /// cacheable requests. A failed or abandoned attempt counts in
    /// neither bucket: the request was not served.
    pub fn get_or_execute<E>(
        &self,
        key: PlanFingerprint,
        epoch: u64,
        deps: ResultDeps,
        abort: impl Fn() -> Result<(), E>,
        execute: impl FnOnce() -> Result<Table, E>,
    ) -> Result<(Arc<Table>, bool), E> {
        loop {
            if let Some(hit) = self.lookup_hit(&key) {
                return Ok((hit, true));
            }
            abort()?;
            // Miss: claim the key, or wait for whoever holds it.
            let mut inflight = self.inflight.lock().unwrap();
            if inflight.insert(key) {
                break;
            }
            // Bounded wait so the abort check above runs periodically
            // even if the populating execution is long (or wedged).
            let (_woken, _timeout) = self
                .inflight_done
                .wait_timeout(inflight, WAIT_TICK)
                .unwrap();
            // Re-check the cache; the executor may have failed (or been
            // epoch-blocked), in which case this caller claims and runs.
        }
        // From here the claim must be released on every exit path,
        // including a panicking `execute`.
        let claim = ClaimGuard { cache: self, key };
        // Double-check after claiming: the previous holder may have
        // inserted between our cache miss and our claim.
        if let Some(hit) = self.lookup_hit(&key) {
            return Ok((hit, true));
        }
        self.inner.lock().stats.executions += 1;
        let table = Arc::new(execute()?);
        // The request is now definitely served by execution: count its
        // miss, and insert BEFORE releasing the claim (waiters woken by
        // the guard must see the entry on their re-check) — unless any
        // invalidation ran since the caller resolved its plan, in which
        // case this result may derive from superseded inputs and must
        // not outlive them. Epoch check and insert share one lock
        // acquisition so no invalidation can slip between them.
        {
            let mut inner = self.inner.lock();
            inner.stats.misses += 1;
            if inner.epoch == epoch {
                inner.insert(self.capacity, self.max_bytes, key, table.clone(), deps);
            }
        }
        drop(claim);
        Ok((table, false))
    }

    /// Drop every result depending on `model`; returns how many.
    pub fn invalidate_model(&self, model: &str) -> usize {
        self.invalidate_where(|d| d.models.iter().any(|m| m == model))
    }

    /// Drop every result depending on `table`; returns how many.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.invalidate_where(|d| d.tables.iter().any(|t| t == table))
    }

    /// Drop all cached results.
    pub fn clear(&self) -> usize {
        self.invalidate_where(|_| true)
    }

    fn invalidate_where(&self, pred: impl Fn(&ResultDeps) -> bool) -> usize {
        let mut inner = self.inner.lock();
        // Bump even when nothing matches: an in-flight execution may be
        // reading the state this invalidation supersedes, and the bump
        // is what stops it from caching the result.
        inner.epoch += 1;
        let mut freed = 0usize;
        let before = inner.map.len();
        inner.map.retain(|_, e| {
            let drop_it = pred(&e.deps);
            if drop_it {
                freed += e.bytes;
            }
            !drop_it
        });
        let dropped = before - inner.map.len();
        inner.total_bytes -= freed;
        inner.stats.invalidations += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use std::time::Duration;

    fn key(n: u64) -> PlanFingerprint {
        PlanFingerprint(n, n.wrapping_mul(31))
    }

    fn table(rows: i64) -> Table {
        Table::try_new(
            Schema::from_pairs(&[("x", DataType::Int64)]).into_shared(),
            vec![Column::Int64((0..rows).collect())],
        )
        .unwrap()
    }

    fn deps(model: &str, table: &str) -> ResultDeps {
        ResultDeps {
            models: vec![model.to_string()],
            tables: vec![table.to_string()],
        }
    }

    #[test]
    fn hit_miss_and_execute_once() {
        let cache = ResultCache::new(4, 0);
        let epoch = cache.epoch();
        let (first, hit) = cache
            .get_or_execute::<()>(key(1), epoch, deps("m", "t"), || Ok(()), || Ok(table(3)))
            .unwrap();
        assert!(!hit);
        assert_eq!(first.num_rows(), 3);
        let (again, hit) = cache
            .get_or_execute::<()>(
                key(1),
                epoch,
                deps("m", "t"),
                || Ok(()),
                || panic!("must not re-execute"),
            )
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &again), "replays the same table");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.executions),
            (1, 1, 1),
            "{stats}"
        );
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn execution_errors_are_not_cached() {
        let cache = ResultCache::new(4, 0);
        let epoch = cache.epoch();
        let err: Result<_, &str> = cache.get_or_execute(
            key(1),
            epoch,
            ResultDeps::default(),
            || Ok(()),
            || Err("boom"),
        );
        assert_eq!(err.unwrap_err(), "boom");
        assert!(cache.is_empty());
        // The next caller executes (claim released, nothing cached).
        let (_, hit) = cache
            .get_or_execute::<()>(
                key(1),
                epoch,
                ResultDeps::default(),
                || Ok(()),
                || Ok(table(1)),
            )
            .unwrap();
        assert!(!hit);
        let stats = cache.stats();
        assert_eq!(stats.executions, 2, "the failed attempt was real work");
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 1),
            "only the served request counts: {stats}"
        );
    }

    #[test]
    fn lru_eviction_order() {
        let cache = ResultCache::new(2, 0);
        let epoch = cache.epoch();
        let run = |k: u64| {
            cache
                .get_or_execute::<()>(
                    key(k),
                    epoch,
                    ResultDeps::default(),
                    || Ok(()),
                    || Ok(table(1)),
                )
                .unwrap()
        };
        run(1);
        run(2);
        run(1); // touch 1 so 2 becomes the victim
        run(3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let stats_before = cache.stats();
        run(2); // must re-execute: it was evicted
        assert_eq!(cache.stats().executions, stats_before.executions + 1);
    }

    #[test]
    fn dependency_invalidation_is_precise() {
        let cache = ResultCache::new(8, 0);
        let epoch = cache.epoch();
        cache
            .get_or_execute::<()>(key(1), epoch, deps("m1", "t1"), || Ok(()), || Ok(table(1)))
            .unwrap();
        cache
            .get_or_execute::<()>(key(2), epoch, deps("m2", "t2"), || Ok(()), || Ok(table(1)))
            .unwrap();
        assert_eq!(cache.invalidate_model("m1"), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_table("t2"), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.invalidate_model("ghost"), 0);
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn invalidation_during_execution_is_not_cached() {
        let cache = ResultCache::new(4, 0);
        // Epoch snapshotted before "plan resolution"; the model update
        // lands while execution is in flight.
        let epoch = cache.epoch();
        let (result, hit) = cache
            .get_or_execute::<()>(
                key(1),
                epoch,
                deps("m", "t"),
                || Ok(()),
                || {
                    cache.invalidate_model("m");
                    Ok(table(5))
                },
            )
            .unwrap();
        assert!(!hit);
        assert_eq!(result.num_rows(), 5, "the request itself is still served");
        assert!(
            cache.is_empty(),
            "a result executed across an invalidation must not be cached"
        );
        // A fresh request (post-invalidation epoch) executes and caches.
        let epoch = cache.epoch();
        let (_, hit) = cache
            .get_or_execute::<()>(key(1), epoch, deps("m", "t"), || Ok(()), || Ok(table(6)))
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_epoch_from_before_claim_is_not_cached() {
        // The race the epoch guard exists for: the caller resolved its
        // plan, THEN an invalidation ran, THEN it executed. Its epoch is
        // stale even though nothing happened during `execute` itself.
        let cache = ResultCache::new(4, 0);
        let epoch = cache.epoch();
        cache.invalidate_model("m"); // supersedes the caller's inputs
        let (result, hit) = cache
            .get_or_execute::<()>(key(1), epoch, deps("m", "t"), || Ok(()), || Ok(table(2)))
            .unwrap();
        assert!(!hit);
        assert_eq!(result.num_rows(), 2);
        assert!(cache.is_empty(), "stale-epoch result must not be published");
    }

    #[test]
    fn single_flight_executes_once_under_contention() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = Arc::new(ResultCache::new(8, 0));
        let executions = Arc::new(AtomicUsize::new(0));
        let epoch = cache.epoch();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let executions = executions.clone();
                std::thread::spawn(move || {
                    let (t, _) = cache
                        .get_or_execute::<()>(
                            key(7),
                            epoch,
                            ResultDeps::default(),
                            || Ok(()),
                            || {
                                executions.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(10));
                                Ok(table(4))
                            },
                        )
                        .unwrap();
                    assert_eq!(t.num_rows(), 4);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "executed exactly once"
        );
        let stats = cache.stats();
        assert_eq!(stats.executions, 1);
        // Request-accurate accounting even under contention: 8 served
        // requests = 1 miss (the executing leader) + 7 hits (waiters
        // and/or late arrivals) — never double-counted.
        assert_eq!((stats.hits, stats.misses), (7, 1), "{stats}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn panicking_execution_releases_the_claim() {
        let cache = Arc::new(ResultCache::new(4, 0));
        let epoch = cache.epoch();
        let panicked = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = cache.get_or_execute::<()>(
                    key(9),
                    epoch,
                    ResultDeps::default(),
                    || Ok(()),
                    || panic!("bad execution"),
                );
            })
        };
        assert!(panicked.join().is_err(), "execution panicked");
        // The claim must be free: the same key executes fine afterwards
        // instead of deadlocking in the single-flight wait.
        let (t, hit) = cache
            .get_or_execute::<()>(
                key(9),
                epoch,
                ResultDeps::default(),
                || Ok(()),
                || Ok(table(2)),
            )
            .unwrap();
        assert!(!hit);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn byte_budget_evicts_lru_until_fit() {
        // Each 100-row Int64 table weighs ~800 bytes; budget fits two.
        let cache = ResultCache::new(64, 1700);
        let epoch = cache.epoch();
        let run = |k: u64| {
            cache
                .get_or_execute::<()>(
                    key(k),
                    epoch,
                    ResultDeps::default(),
                    || Ok(()),
                    || Ok(table(100)),
                )
                .unwrap()
        };
        run(1);
        run(2);
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() <= 1700);
        run(3); // over budget: the LRU entry (1) must go
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() <= 1700, "{}", cache.resident_bytes());
        assert_eq!(cache.stats().evictions, 1);
        // Key 1 was evicted: repeating it re-executes.
        let before = cache.stats().executions;
        run(1);
        assert_eq!(cache.stats().executions, before + 1);
    }

    #[test]
    fn single_result_larger_than_budget_is_served_not_cached() {
        let cache = ResultCache::new(64, 100);
        let epoch = cache.epoch();
        let (t, hit) = cache
            .get_or_execute::<()>(
                key(1),
                epoch,
                ResultDeps::default(),
                || Ok(()),
                || {
                    Ok(table(1000)) // ~8000 bytes >> 100-byte budget
                },
            )
            .unwrap();
        assert!(!hit);
        assert_eq!(t.num_rows(), 1000, "the request itself is served");
        assert!(cache.is_empty(), "an oversized result must not be cached");
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.stats().too_large, 1, "the skip is visible");
        // The repeat executes again (and is again not cached).
        let (_, hit) = cache
            .get_or_execute::<()>(
                key(1),
                epoch,
                ResultDeps::default(),
                || Ok(()),
                || Ok(table(1000)),
            )
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.stats().executions, 2);
    }

    #[test]
    fn waiter_abort_is_honored_while_leader_executes() {
        use std::time::Instant;
        let cache = Arc::new(ResultCache::new(8, 0));
        let epoch = cache.epoch();
        let started = Arc::new(std::sync::Barrier::new(2));
        // Leader: holds the claim for ~300 ms.
        let leader = {
            let cache = cache.clone();
            let started = started.clone();
            std::thread::spawn(move || {
                cache
                    .get_or_execute::<String>(
                        key(5),
                        epoch,
                        ResultDeps::default(),
                        || Ok(()),
                        || {
                            started.wait();
                            std::thread::sleep(Duration::from_millis(300));
                            Ok(table(1))
                        },
                    )
                    .unwrap();
            })
        };
        started.wait(); // leader is now inside execute, claim held
                        // Waiter with a 40 ms "deadline": must return the abort error
                        // long before the leader finishes, not block for the full 300 ms.
        let begin = Instant::now();
        let deadline = begin + Duration::from_millis(40);
        let err = cache
            .get_or_execute::<String>(
                key(5),
                epoch,
                ResultDeps::default(),
                || {
                    if Instant::now() >= deadline {
                        Err("deadline exceeded".to_string())
                    } else {
                        Ok(())
                    }
                },
                || Ok(table(1)),
            )
            .unwrap_err();
        assert_eq!(err, "deadline exceeded");
        assert!(
            begin.elapsed() < Duration::from_millis(200),
            "waiter must abort promptly, waited {:?}",
            begin.elapsed()
        );
        leader.join().unwrap();
        // The abandoned request counted neither hit nor miss.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "{stats}");
    }
}
