//! Server-wide observability: throughput, latency percentiles, and the
//! cache hit rates that explain them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::admission::AdmissionStats;
use crate::batcher::BatcherStats;
use crate::cache::PlanCacheStats;
use parking_lot::Mutex;

/// How many recent query latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Latency percentiles over the recent-query window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
    pub mean: Duration,
}

#[derive(Default)]
struct LatencyWindow {
    ring: Vec<u64>, // microseconds
    next: usize,
}

impl LatencyWindow {
    fn record(&mut self, micros: u64) {
        if self.ring.len() < LATENCY_WINDOW {
            self.ring.push(micros);
        } else {
            self.ring[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }

    fn summary(&self) -> LatencySummary {
        if self.ring.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        let at = |q: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            Duration::from_micros(sorted[idx])
        };
        let total: u64 = sorted.iter().sum();
        LatencySummary {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: Duration::from_micros(*sorted.last().unwrap()),
            mean: Duration::from_micros(total / sorted.len() as u64),
        }
    }
}

/// Live counters updated by [`crate::ServerState`] on every query.
pub struct ServerStats {
    started: Instant,
    queries: AtomicU64,
    errors: AtomicU64,
    rows: AtomicU64,
    /// Queries whose SQL normalized to a template with ≥ 1 extracted
    /// constant (the parameterized-prepared-statement path).
    normalized: AtomicU64,
    /// Normalized queries whose template hit the plan cache — repeated
    /// query *shapes* served without re-optimization, even though the
    /// literal SQL text had never been seen before.
    template_hits: AtomicU64,
    latencies: Mutex<LatencyWindow>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            normalized: AtomicU64::new(0),
            template_hits: AtomicU64::new(0),
            latencies: Mutex::new(LatencyWindow::default()),
        }
    }
}

impl ServerStats {
    pub fn new() -> Self {
        ServerStats::default()
    }

    pub fn record_query(&self, latency: Duration, rows: usize) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.latencies
            .lock()
            .record(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A query was rewritten to a parameterized template; `cache_hit`
    /// says whether that template was already prepared.
    pub fn record_normalized(&self, cache_hit: bool) {
        self.normalized.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.template_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn snapshot(
        &self,
        plan_cache: PlanCacheStats,
        session_cache: (u64, u64),
        batcher: BatcherStats,
        admission: AdmissionStats,
    ) -> StatsSnapshot {
        let queries = self.queries.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        StatsSnapshot {
            uptime,
            queries,
            errors: self.errors.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            queries_per_sec: if uptime.as_secs_f64() > 0.0 {
                queries as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            normalized: self.normalized.load(Ordering::Relaxed),
            template_hits: self.template_hits.load(Ordering::Relaxed),
            latency: self.latencies.lock().summary(),
            plan_cache,
            session_cache,
            batcher,
            admission,
        }
    }
}

/// A point-in-time view of everything the server measures.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    pub uptime: Duration,
    pub queries: u64,
    pub errors: u64,
    pub rows: u64,
    pub queries_per_sec: f64,
    /// Queries rewritten to a parameterized template (≥ 1 constant
    /// extracted by [`mod@crate::normalize`]).
    pub normalized: u64,
    /// Normalized queries that hit an already-prepared template plan.
    pub template_hits: u64,
    pub latency: LatencySummary,
    pub plan_cache: PlanCacheStats,
    /// Inference-session cache `(hits, misses)` from the scorer.
    pub session_cache: (u64, u64),
    pub batcher: BatcherStats,
    /// Admission-control outcomes (permits granted, typed rejections).
    pub admission: AdmissionStats,
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries: {} ({} errors), rows: {}, {:.1} q/s over {:.1?}",
            self.queries, self.errors, self.rows, self.queries_per_sec, self.uptime
        )?;
        writeln!(
            f,
            "latency: p50 {:?}, p95 {:?}, p99 {:?}, max {:?}",
            self.latency.p50, self.latency.p95, self.latency.p99, self.latency.max
        )?;
        writeln!(f, "plan cache: {}", self.plan_cache)?;
        writeln!(
            f,
            "parameterized templates: {} normalized queries, {} template hits",
            self.normalized, self.template_hits
        )?;
        writeln!(
            f,
            "inference-session cache: {} hits / {} misses",
            self.session_cache.0, self.session_cache.1
        )?;
        writeln!(
            f,
            "micro-batcher: {} requests in {} batches (mean {:.1} rows, max {})",
            self.batcher.requests,
            self.batcher.batches,
            self.batcher.mean_batch_size(),
            self.batcher.max_batch_seen
        )?;
        write!(
            f,
            "admission: {} admitted, {} rejected overloaded, {} rejected past deadline",
            self.admission.admitted,
            self.admission.rejected_overloaded,
            self.admission.rejected_deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_window() {
        let stats = ServerStats::new();
        for i in 1..=100u64 {
            stats.record_query(Duration::from_micros(i * 10), 1);
        }
        let snap = stats.snapshot(
            PlanCacheStats::default(),
            (0, 0),
            BatcherStats::default(),
            AdmissionStats::default(),
        );
        assert_eq!(snap.queries, 100);
        assert_eq!(snap.rows, 100);
        assert_eq!(snap.latency.max, Duration::from_micros(1000));
        assert!(snap.latency.p50 >= Duration::from_micros(400));
        assert!(snap.latency.p50 <= Duration::from_micros(600));
        assert!(snap.latency.p99 >= snap.latency.p95);
        assert!(snap.latency.p95 >= snap.latency.p50);
        let shown = snap.to_string();
        assert!(shown.contains("plan cache"));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut w = LatencyWindow::default();
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            w.record(i);
        }
        assert_eq!(w.ring.len(), LATENCY_WINDOW);
        // The first 10 samples were overwritten.
        assert!(!w.ring.contains(&5));
    }
}
