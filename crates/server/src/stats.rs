//! Server-wide observability: throughput, latency percentiles, and the
//! cache hit rates that explain them — kept **per tenant** since the
//! multi-tenant refactor (each [`crate::tenant::Tenant`] owns one
//! [`ServerStats`]), with [`StatsSnapshot::absorb`] folding tenant
//! snapshots into the server-wide aggregate.
//!
//! Counters live behind **one** mutex, not a bag of independent atomics.
//! That is a correctness decision, not a style one: a snapshot assembled
//! field-by-field from separate atomics can observe a request half
//! recorded — `queries` incremented but its `rows` not yet — so derived
//! invariants (`rows` vs `queries`, hits + misses vs totals) wobble under
//! load and every consumer needs slack. Recording a query already took
//! this lock for the latency window, so the consolidation adds no
//! acquisition to the hot path; snapshots now read one consistent state.
//!
//! Admission is reported as **per-request outcomes**: a request either
//! ends up `admitted` (cleared the tenant quota ring *and* the global
//! ring) or in exactly one rejection bucket, whichever ring turned it
//! away — so `admitted + rejected_* ` reconciles against requests sent,
//! which the raw per-controller permit counters (two rings, each counting
//! its own grants) cannot do.

use std::fmt;
use std::time::{Duration, Instant};

use crate::admission::AdmissionStats;
use crate::batcher::BatcherStats;
use crate::cache::PlanCacheStats;
use crate::error::ServerError;
use crate::result_cache::ResultCacheStats;
use parking_lot::Mutex;
use raven_obs::{Counter, Histogram, MetricsRegistry};
use std::sync::Arc;

/// How many recent query latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 4096;

/// Latency percentiles over the recent-query window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub max: Duration,
    pub mean: Duration,
}

impl LatencySummary {
    /// Percentiles over an explicit sample set (microseconds) — how the
    /// aggregate snapshot merges several tenants' windows exactly,
    /// instead of averaging their already-computed percentiles (which is
    /// not a percentile of anything).
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let at = |q: f64| {
            let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
            Duration::from_micros(samples[idx])
        };
        let total: u64 = samples.iter().sum();
        LatencySummary {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: Duration::from_micros(*samples.last().unwrap()),
            mean: Duration::from_micros(total / samples.len() as u64),
        }
    }
}

#[derive(Default)]
struct LatencyWindow {
    ring: Vec<u64>, // microseconds
    next: usize,
}

impl LatencyWindow {
    fn record(&mut self, micros: u64) {
        if self.ring.len() < LATENCY_WINDOW {
            self.ring.push(micros);
        } else {
            self.ring[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// Everything one request mutates, updated and read atomically together.
#[derive(Default)]
struct Counters {
    queries: u64,
    errors: u64,
    rows: u64,
    /// Queries whose SQL normalized to a template with ≥ 1 extracted
    /// constant (the parameterized-prepared-statement path).
    normalized: u64,
    /// Normalized queries whose template hit the plan cache — repeated
    /// query *shapes* served without re-optimization, even though the
    /// literal SQL text had never been seen before.
    template_hits: u64,
    /// Per-request admission outcomes (see the module docs): cleared
    /// both rings / rejected overloaded at either ring / rejected
    /// because the deadline expired before execution began.
    admitted: u64,
    rejected_overloaded: u64,
    rejected_deadline: u64,
    latencies: LatencyWindow,
}

/// Registry-backed mirrors of the request-path counters: the same
/// increments the mutex-guarded [`Counters`] receive, replayed onto
/// [`raven_obs`] handles so the unified metrics surface (Prometheus
/// exposition, cross-tenant merges) sees them without taking the lock.
/// The mutex remains the source of truth for torn-proof snapshots; the
/// mirror trades that consistency for lock-free reads.
struct RegistryMirror {
    queries: Arc<Counter>,
    errors: Arc<Counter>,
    rows: Arc<Counter>,
    normalized: Arc<Counter>,
    template_hits: Arc<Counter>,
    admitted: Arc<Counter>,
    rejected_overloaded: Arc<Counter>,
    rejected_deadline: Arc<Counter>,
    /// Log2 latency histogram — unlike the bounded percentile window it
    /// never forgets, and merges exactly across tenants.
    latency_us: Arc<Histogram>,
}

impl RegistryMirror {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        RegistryMirror {
            queries: registry.counter("queries_total"),
            errors: registry.counter("errors_total"),
            rows: registry.counter("rows_total"),
            normalized: registry.counter("normalized_total"),
            template_hits: registry.counter("template_hits_total"),
            admitted: registry.counter("admitted_total"),
            rejected_overloaded: registry.counter("rejected_overloaded_total"),
            rejected_deadline: registry.counter("rejected_deadline_total"),
            latency_us: registry.histogram("query_latency_us"),
        }
    }
}

/// Live counters updated on every query of one tenant.
pub struct ServerStats {
    started: Instant,
    counters: Mutex<Counters>,
    mirror: RegistryMirror,
}

impl Default for ServerStats {
    fn default() -> Self {
        // A private registry: the mirror writes land somewhere harmless
        // when the caller doesn't care about the unified surface.
        ServerStats::with_registry(&MetricsRegistry::new())
    }
}

impl ServerStats {
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// A recorder whose counters are additionally mirrored into
    /// `registry` (cheap relaxed atomics on the already-locked path), so
    /// one tenant's [`MetricsRegistry`] carries its request outcomes and
    /// latency histogram alongside the batcher's metrics.
    pub fn with_registry(registry: &MetricsRegistry) -> Self {
        ServerStats {
            started: Instant::now(),
            counters: Mutex::new(Counters::default()),
            mirror: RegistryMirror::from_registry(registry),
        }
    }

    /// Record one served query — count, row total, and latency land in
    /// one critical section, so no snapshot can see a torn request.
    pub fn record_query(&self, latency: Duration, rows: usize) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        {
            let mut counters = self.counters.lock();
            counters.queries += 1;
            counters.rows += rows as u64;
            counters.latencies.record(micros);
        }
        self.mirror.queries.inc();
        self.mirror.rows.add(rows as u64);
        self.mirror.latency_us.observe(micros);
    }

    pub fn record_error(&self) {
        self.counters.lock().errors += 1;
        self.mirror.errors.inc();
    }

    /// The request cleared both admission rings and will execute.
    pub fn record_admitted(&self) {
        self.counters.lock().admitted += 1;
        self.mirror.admitted.inc();
    }

    /// The request was turned away before execution — by either ring.
    /// Deadline expiries land in `rejected_deadline`; everything else
    /// (queue full, wait timed out) in `rejected_overloaded`.
    pub fn record_rejection(&self, error: &ServerError) {
        let mut counters = self.counters.lock();
        match error {
            ServerError::DeadlineExceeded(_) => {
                counters.rejected_deadline += 1;
                self.mirror.rejected_deadline.inc();
            }
            _ => {
                counters.rejected_overloaded += 1;
                self.mirror.rejected_overloaded.inc();
            }
        }
    }

    /// A query was rewritten to a parameterized template; `cache_hit`
    /// says whether that template was already prepared.
    pub fn record_normalized(&self, cache_hit: bool) {
        let mut counters = self.counters.lock();
        counters.normalized += 1;
        self.mirror.normalized.inc();
        if cache_hit {
            counters.template_hits += 1;
            self.mirror.template_hits.inc();
        }
    }

    /// The recent-latency window's raw samples (microseconds) — what the
    /// cross-tenant aggregate merges before recomputing percentiles.
    pub fn latency_samples(&self) -> Vec<u64> {
        self.counters.lock().latencies.ring.clone()
    }

    pub fn snapshot(
        &self,
        plan_cache: PlanCacheStats,
        result_cache: ResultCacheStats,
        session_cache: (u64, u64),
        batcher: BatcherStats,
    ) -> StatsSnapshot {
        let (mut snapshot, samples) =
            self.snapshot_with_samples(plan_cache, result_cache, session_cache, batcher);
        snapshot.latency = LatencySummary::from_samples(samples);
        snapshot
    }

    /// The counters plus the raw latency samples, read under the
    /// **same** lock acquisition — so a cross-tenant aggregate merging
    /// many windows sees each tenant's counters and samples mutually
    /// consistent (a query recorded between two separate reads would
    /// desynchronize them). The returned snapshot's `latency` field is
    /// left at its default: summarizing is a sort of up to the full
    /// window, and the aggregate path recomputes percentiles over the
    /// *merged* samples anyway — callers that want this one window's
    /// percentiles use [`ServerStats::snapshot`].
    pub fn snapshot_with_samples(
        &self,
        plan_cache: PlanCacheStats,
        result_cache: ResultCacheStats,
        session_cache: (u64, u64),
        batcher: BatcherStats,
    ) -> (StatsSnapshot, Vec<u64>) {
        let uptime = self.started.elapsed();
        // One lock acquisition for every request-path counter: the
        // snapshot is internally consistent by construction.
        let counters = self.counters.lock();
        let samples = counters.latencies.ring.clone();
        let snapshot = StatsSnapshot {
            uptime,
            queries: counters.queries,
            errors: counters.errors,
            rows: counters.rows,
            queries_per_sec: if uptime.as_secs_f64() > 0.0 {
                counters.queries as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            normalized: counters.normalized,
            template_hits: counters.template_hits,
            latency: LatencySummary::default(),
            plan_cache,
            result_cache,
            session_cache,
            batcher,
            admission: AdmissionStats {
                admitted: counters.admitted,
                rejected_overloaded: counters.rejected_overloaded,
                rejected_deadline: counters.rejected_deadline,
            },
        };
        (snapshot, samples)
    }
}

/// A point-in-time view of everything one tenant (or, after
/// [`StatsSnapshot::absorb`], the whole server) measures.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    pub uptime: Duration,
    pub queries: u64,
    pub errors: u64,
    pub rows: u64,
    pub queries_per_sec: f64,
    /// Queries rewritten to a parameterized template (≥ 1 constant
    /// extracted by [`mod@crate::normalize`]).
    pub normalized: u64,
    /// Normalized queries that hit an already-prepared template plan.
    pub template_hits: u64,
    pub latency: LatencySummary,
    pub plan_cache: PlanCacheStats,
    /// Deterministic result memoization (execution skipped on hits).
    pub result_cache: ResultCacheStats,
    /// Inference-session cache `(hits, misses)` from the scorer.
    pub session_cache: (u64, u64),
    pub batcher: BatcherStats,
    /// Per-request admission outcomes (admitted / typed rejections) —
    /// tenant-ring and global-ring rejections both land here, attributed
    /// to the tenant that sent the request.
    pub admission: AdmissionStats,
}

impl StatsSnapshot {
    /// Fold another tenant's snapshot into this one: counters summed,
    /// uptime maxed. The caller recomputes `latency` from the merged
    /// sample windows and `queries_per_sec` afterwards — both are
    /// nonlinear and cannot be summed fieldwise.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        self.uptime = self.uptime.max(other.uptime);
        self.queries += other.queries;
        self.errors += other.errors;
        self.rows += other.rows;
        self.normalized += other.normalized;
        self.template_hits += other.template_hits;
        self.plan_cache += other.plan_cache;
        self.result_cache += other.result_cache;
        self.session_cache.0 += other.session_cache.0;
        self.session_cache.1 += other.session_cache.1;
        self.batcher.absorb(&other.batcher);
        self.admission += other.admission;
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries: {} ({} errors), rows: {}, {:.1} q/s over {:.1?}",
            self.queries, self.errors, self.rows, self.queries_per_sec, self.uptime
        )?;
        writeln!(
            f,
            "latency: p50 {:?}, p95 {:?}, p99 {:?}, max {:?}",
            self.latency.p50, self.latency.p95, self.latency.p99, self.latency.max
        )?;
        writeln!(f, "plan cache: {}", self.plan_cache)?;
        writeln!(f, "result cache: {}", self.result_cache)?;
        writeln!(
            f,
            "parameterized templates: {} normalized queries, {} template hits",
            self.normalized, self.template_hits
        )?;
        writeln!(
            f,
            "inference-session cache: {} hits / {} misses",
            self.session_cache.0, self.session_cache.1
        )?;
        writeln!(
            f,
            "micro-batcher: {} requests in {} batches (mean {:.1} rows, max {}, \
             ~{:.0} µs/row scorer cost, {} shed, {} expired)",
            self.batcher.requests,
            self.batcher.batches,
            self.batcher.mean_batch_size(),
            self.batcher.max_batch_seen,
            self.batcher.ewma_row_micros,
            self.batcher.shed,
            self.batcher.expired,
        )?;
        write!(
            f,
            "admission: {} admitted, {} rejected overloaded, {} rejected past deadline",
            self.admission.admitted,
            self.admission.rejected_overloaded,
            self.admission.rejected_deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(stats: &ServerStats) -> StatsSnapshot {
        stats.snapshot(
            PlanCacheStats::default(),
            ResultCacheStats::default(),
            (0, 0),
            BatcherStats::default(),
        )
    }

    #[test]
    fn percentiles_over_window() {
        let stats = ServerStats::new();
        for i in 1..=100u64 {
            stats.record_query(Duration::from_micros(i * 10), 1);
        }
        let snap = snap(&stats);
        assert_eq!(snap.queries, 100);
        assert_eq!(snap.rows, 100);
        assert_eq!(snap.latency.max, Duration::from_micros(1000));
        assert!(snap.latency.p50 >= Duration::from_micros(400));
        assert!(snap.latency.p50 <= Duration::from_micros(600));
        assert!(snap.latency.p99 >= snap.latency.p95);
        assert!(snap.latency.p95 >= snap.latency.p50);
        let shown = snap.to_string();
        assert!(shown.contains("plan cache"));
        assert!(shown.contains("result cache"));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut w = LatencyWindow::default();
        for i in 0..(LATENCY_WINDOW as u64 + 10) {
            w.record(i);
        }
        assert_eq!(w.ring.len(), LATENCY_WINDOW);
        // The first 10 samples were overwritten.
        assert!(!w.ring.contains(&5));
    }

    #[test]
    fn admission_outcomes_are_exclusive_buckets() {
        let stats = ServerStats::new();
        stats.record_admitted();
        stats.record_admitted();
        stats.record_rejection(&ServerError::Overloaded("full".into()));
        stats.record_rejection(&ServerError::DeadlineExceeded("late".into()));
        let s = snap(&stats);
        assert_eq!(s.admission.admitted, 2);
        assert_eq!(s.admission.rejected_overloaded, 1);
        assert_eq!(s.admission.rejected_deadline, 1);
    }

    #[test]
    fn absorb_sums_counters_and_from_samples_merges_windows() {
        let a = ServerStats::new();
        let b = ServerStats::new();
        a.record_query(Duration::from_micros(100), 2);
        a.record_admitted();
        b.record_query(Duration::from_micros(300), 3);
        b.record_admitted();
        b.record_error();
        let mut merged = snap(&a);
        merged.absorb(&snap(&b));
        assert_eq!(merged.queries, 2);
        assert_eq!(merged.rows, 5);
        assert_eq!(merged.errors, 1);
        assert_eq!(merged.admission.admitted, 2);
        let mut samples = a.latency_samples();
        samples.extend(b.latency_samples());
        let latency = LatencySummary::from_samples(samples);
        assert_eq!(latency.max, Duration::from_micros(300));
        assert_eq!(latency.mean, Duration::from_micros(200));
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn registry_mirror_tracks_the_counters() {
        let registry = MetricsRegistry::new();
        let stats = ServerStats::with_registry(&registry);
        stats.record_query(Duration::from_micros(250), 3);
        stats.record_query(Duration::from_micros(90), 2);
        stats.record_error();
        stats.record_admitted();
        stats.record_rejection(&ServerError::DeadlineExceeded("late".into()));
        stats.record_normalized(true);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["queries_total"], 2);
        assert_eq!(snap.counters["rows_total"], 5);
        assert_eq!(snap.counters["errors_total"], 1);
        assert_eq!(snap.counters["admitted_total"], 1);
        assert_eq!(snap.counters["rejected_deadline_total"], 1);
        assert_eq!(snap.counters["normalized_total"], 1);
        assert_eq!(snap.counters["template_hits_total"], 1);
        let hist = &snap.histograms["query_latency_us"];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 340);
    }

    /// Regression: a snapshot racing `record_query` must never observe a
    /// half-recorded request. Each recorded query adds exactly one row,
    /// so `queries == rows` is an invariant of every consistent state —
    /// the old field-by-field atomic snapshot could be caught between
    /// the two increments and break it.
    #[test]
    fn snapshot_is_consistent_under_concurrent_recording() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let stats = Arc::new(ServerStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let stats = stats.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        stats.record_query(Duration::from_micros(1), 1);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for _ in 0..2_000 {
            let s = snap(&stats);
            assert_eq!(
                s.queries, s.rows,
                "snapshot observed a torn request: {} queries vs {} rows",
                s.queries, s.rows
            );
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let final_snap = snap(&stats);
        assert_eq!(final_snap.queries, total, "no recorded query lost");
        assert_eq!(final_snap.rows, total);
    }
}
