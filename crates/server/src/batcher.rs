//! Micro-batched point scoring with SLO-aware flushing.
//!
//! Serving workloads are dominated by single-row "score this one entity"
//! requests, but every scoring substrate in Raven is dramatically cheaper
//! per row when invoked on a batch (the paper's §5 observation v: batch
//! inference gains ~an order of magnitude). The micro-batcher closes the
//! gap: concurrent single-row requests are queued, coalesced for up to a
//! flush window (or until a batch fills), grouped by model, and scored
//! with **one** pipeline invocation per model per flush.
//!
//! The flush window is deadline-aware. Each request may carry a deadline;
//! the worker sheds requests whose deadline expired while they queued
//! (typed [`ServerError::DeadlineExceeded`], before the scoring batch is
//! built — an expired row never reaches the scorer), and under the
//! [`BatchPolicy::Adaptive`] policy the window itself is computed each
//! loop iteration from the observed cost EWMAs versus the oldest queued
//! request's remaining slack:
//!
//! ```text
//! predicted_us = ewma_invocation_us + pending × ewma_row_us
//! window       = clamp(min(oldest_slack − predicted, predicted), min_wait, max_wait)
//! ```
//!
//! The `predicted` term alone bounds how long a wait is *worth* (waiting
//! longer than the invocation it amortizes is pure latency); the slack
//! term bounds how long a wait is *affordable* before the predicted
//! invocation cost eats the oldest request's deadline. Enqueue is guarded
//! the same way: when even an immediate flush is predicted to miss the
//! request's deadline, `score` rejects typed instead of queueing a doomed
//! request ([admit-or-shed]); every shed/expired outcome lands in the
//! registry (`batcher_shed_total`, `batcher_expired_total`) so the
//! counters reconcile exactly:
//! `requests == rows scored + bad_arity + shed + expired + failed`.
//!
//! [admit-or-shed]: MicroBatcher::score_with_deadline

use crate::error::{Result, ServerError};
use parking_lot::Mutex;
use raven_core::ModelStore;
use raven_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanRecorder};
use raven_relational::CancelToken;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a partial batch's flush window is sized.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchPolicy {
    /// Flush a partial batch a fixed interval after its first request
    /// arrived — the pre-adaptive behavior, kept for predictable-latency
    /// deployments and benchmarks.
    Fixed {
        /// Wait this long after a batch's first request before flushing.
        flush_interval: Duration,
    },
    /// Recompute the window every loop iteration from the registry cost
    /// EWMAs versus the oldest queued deadline (see the module docs for
    /// the formula), clamped to `[min_wait, max_wait]`. A batch never
    /// waits longer than `max_wait` in total.
    Adaptive {
        /// Floor: always willing to wait at least this long (coalescing
        /// opportunity even when the scorer measures near-free).
        min_wait: Duration,
        /// Ceiling: never hold a partial batch longer than this.
        max_wait: Duration,
    },
}

/// Micro-batching knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// How the partial-batch flush window is sized.
    pub policy: BatchPolicy,
}

impl BatchConfig {
    /// A fixed flush window (the pre-adaptive configuration shape).
    pub fn fixed(max_batch: usize, flush_interval: Duration) -> Self {
        BatchConfig {
            max_batch,
            policy: BatchPolicy::Fixed { flush_interval },
        }
    }

    /// An adaptive window clamped to `[min_wait, max_wait]`.
    pub fn adaptive(max_batch: usize, min_wait: Duration, max_wait: Duration) -> Self {
        BatchConfig {
            max_batch,
            policy: BatchPolicy::Adaptive { min_wait, max_wait },
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        // Adaptive by default: the old fixed 1 ms becomes the ceiling,
        // so a measured-cheap scorer flushes almost immediately while an
        // expensive one may still hold the full window.
        BatchConfig::adaptive(64, Duration::ZERO, Duration::from_millis(1))
    }
}

/// Counters exposed by [`MicroBatcher::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherStats {
    /// Single-row requests accepted (every `score` call, counted before
    /// the outcome is known).
    pub requests: u64,
    /// Scorer invocations issued (per model per flush).
    pub batches: u64,
    /// Rows scored across all batches.
    pub batched_rows: u64,
    /// Largest single scorer invocation.
    pub max_batch_seen: u64,
    /// Requests rejected at enqueue: the cost model predicted a deadline
    /// miss even for an immediate flush.
    pub shed: u64,
    /// Requests whose deadline expired while queued, shed at flush time
    /// before the scoring batch was built.
    pub expired: u64,
    /// Requests rejected for a feature-count mismatch.
    pub bad_arity: u64,
    /// Requests that failed before scoring (model not in the store).
    pub failed: u64,
    /// Total wall time spent inside scorer invocations (µs).
    pub score_micros: u64,
    /// Exponentially-weighted observed cost of one scorer *invocation*
    /// (µs) — the fixed overhead adaptive batching amortizes.
    pub ewma_invocation_micros: f64,
    /// Exponentially-weighted observed cost per scored *row* (µs) — the
    /// marginal cost that bounds how long a flush window is worth
    /// holding. Together with `ewma_invocation_micros` this is the input
    /// the adaptive flush policy sizes its window from.
    pub ewma_row_micros: f64,
    /// The adaptive policy's most recently chosen window (µs); zero
    /// until the first adaptive sizing decision.
    pub window_micros: f64,
}

impl BatcherStats {
    /// Mean rows per scorer invocation (1.0 = no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_rows as f64 / self.batches as f64
        }
    }

    /// Fold another batcher's counters into this one (the cross-tenant
    /// aggregate). EWMA costs merge weighted by work done, so an idle
    /// tenant's zeros do not drag the estimate toward zero; high-water
    /// marks and the live window take the max.
    pub fn absorb(&mut self, other: &BatcherStats) {
        let (self_rows, other_rows) = (self.batched_rows as f64, other.batched_rows as f64);
        if self_rows + other_rows > 0.0 {
            self.ewma_row_micros = (self.ewma_row_micros * self_rows
                + other.ewma_row_micros * other_rows)
                / (self_rows + other_rows);
        }
        let (self_batches, other_batches) = (self.batches as f64, other.batches as f64);
        if self_batches + other_batches > 0.0 {
            self.ewma_invocation_micros = (self.ewma_invocation_micros * self_batches
                + other.ewma_invocation_micros * other_batches)
                / (self_batches + other_batches);
        }
        self.requests += other.requests;
        self.batches += other.batches;
        self.batched_rows += other.batched_rows;
        self.max_batch_seen = self.max_batch_seen.max(other.max_batch_seen);
        self.shed += other.shed;
        self.expired += other.expired;
        self.bad_arity += other.bad_arity;
        self.failed += other.failed;
        self.score_micros += other.score_micros;
        self.window_micros = self.window_micros.max(other.window_micros);
    }
}

/// EWMA smoothing factor for observed scorer cost: ~the last 10
/// invocations dominate. The cost estimate itself — "how long does a
/// batch of N take?" ≈ `invocation + N × row` — is what the adaptive
/// flush policy and the enqueue-time shed decision size against.
const COST_EWMA_ALPHA: f64 = 0.2;

/// Cost predictions are capped at one hour: the EWMAs are observed
/// wall-clock micros and should never be near this, but a cap keeps the
/// arithmetic safe to convert into a `Duration`.
const MAX_PREDICTED_US: f64 = 3.6e9;

/// How often a deadline- or cancel-aware caller wakes to poll its token
/// while waiting for the batched reply.
const CANCEL_POLL: Duration = Duration::from_millis(10);

/// Predicted wall cost (µs) of flushing `rows` rows right now, from the
/// observed EWMAs. Unseeded (zero) or degenerate gauges predict zero, so
/// a cold batcher never sheds a request with any slack at all.
fn predicted_cost_us(ewma_invocation_us: f64, ewma_row_us: f64, rows: u64) -> f64 {
    let sane = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
    (sane(ewma_invocation_us) + rows as f64 * sane(ewma_row_us)).clamp(0.0, MAX_PREDICTED_US)
}

/// The adaptive policy's window decision, pure so it can be property-
/// tested: how long a partial batch of `pending` rows may keep waiting,
/// given the oldest queued request's remaining slack (`None` when no
/// queued request carries a deadline) and the observed cost EWMAs.
///
/// `min(slack − predicted, predicted)` — a wait is *affordable* only
/// while the predicted invocation cost still fits inside the oldest
/// deadline's slack, and *worthwhile* only up to about the invocation
/// cost it amortizes — then clamped to the configured `[min, max]`.
pub fn adaptive_flush_window(
    min_wait: Duration,
    max_wait: Duration,
    pending: usize,
    oldest_slack: Option<Duration>,
    ewma_invocation_us: f64,
    ewma_row_us: f64,
) -> Duration {
    let max_wait = max_wait.max(min_wait);
    let predicted_us = predicted_cost_us(ewma_invocation_us, ewma_row_us, pending as u64);
    let predicted = Duration::from_secs_f64(predicted_us / 1e6);
    let worthwhile = predicted;
    let affordable = match oldest_slack {
        Some(slack) => slack.saturating_sub(predicted),
        None => Duration::MAX,
    };
    worthwhile.min(affordable).clamp(min_wait, max_wait)
}

/// Registry-backed batcher instrumentation. Every handle is an `Arc`
/// over atomics obtained once at construction, so the flush loop records
/// lock-free; the same series are readable from the tenant's metrics
/// surface (`raven_batcher_*`).
struct Counters {
    requests: Arc<Counter>,
    batches: Arc<Counter>,
    batched_rows: Arc<Counter>,
    score_micros: Arc<Counter>,
    /// Enqueue-time rejections: predicted deadline miss.
    shed: Arc<Counter>,
    /// Flush-time rejections: deadline expired while queued.
    expired: Arc<Counter>,
    /// Feature-count mismatches (individually rejected, rest batch).
    bad_arity: Arc<Counter>,
    /// Requests that failed before scoring (model not found).
    failed: Arc<Counter>,
    /// Rows per scorer invocation (mean/percentiles of coalescing).
    batch_size: Arc<Histogram>,
    /// Wall micros per scorer invocation.
    invocation_us: Arc<Histogram>,
    /// EWMA of per-invocation / per-row cost in µs (fractional: fast
    /// in-process invocations finish in well under 1 µs and must not
    /// round to a zero cost).
    ewma_invocation_us: Arc<Gauge>,
    ewma_row_us: Arc<Gauge>,
    /// Largest single invocation — an exact high-water mark (updated via
    /// [`Gauge::set_max`]), which a log2 histogram cannot recover.
    max_batch: Arc<Gauge>,
    /// The adaptive policy's most recently chosen window (µs).
    window_us: Arc<Gauge>,
    /// Requests sitting in the channel right now — the `N` the
    /// enqueue-time shed decision prices an immediate flush at. Not a
    /// registry series: it is transient scheduling state, not telemetry.
    queue_depth: AtomicU64,
}

impl Counters {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        Counters {
            requests: registry.counter("batcher_requests_total"),
            batches: registry.counter("batcher_batches_total"),
            batched_rows: registry.counter("batcher_rows_total"),
            score_micros: registry.counter("batcher_score_micros_total"),
            shed: registry.counter("batcher_shed_total"),
            expired: registry.counter("batcher_expired_total"),
            bad_arity: registry.counter("batcher_bad_arity_total"),
            failed: registry.counter("batcher_failed_total"),
            batch_size: registry.histogram("batcher_batch_size"),
            invocation_us: registry.histogram("batcher_invocation_us"),
            ewma_invocation_us: registry.gauge("batcher_ewma_invocation_us"),
            ewma_row_us: registry.gauge("batcher_ewma_row_us"),
            max_batch: registry.gauge("batcher_max_batch"),
            window_us: registry.gauge("batcher_window_us"),
            queue_depth: AtomicU64::new(0),
        }
    }
}

impl Default for Counters {
    fn default() -> Self {
        Counters::from_registry(&MetricsRegistry::new())
    }
}

struct Request {
    model: String,
    row: Vec<f64>,
    reply: mpsc::Sender<Result<f64>>,
    /// When the request entered the queue — the worker turns this into a
    /// `batcher-queue` span on the request's trace.
    enqueued: Instant,
    /// Absolute SLO deadline: the worker sheds this request at flush
    /// time if it has already passed, and the adaptive window never
    /// holds a batch past the oldest queued deadline's slack.
    deadline: Option<Instant>,
    trace: SpanRecorder,
}

/// A background coalescing loop over a shared [`ModelStore`].
///
/// `score` blocks the calling thread until its row's prediction comes
/// back from a batched scorer invocation; any number of threads may call
/// it concurrently. Dropping the batcher drains the queue and joins the
/// worker.
pub struct MicroBatcher {
    tx: Mutex<Option<mpsc::Sender<Request>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<Counters>,
}

impl MicroBatcher {
    /// A batcher with a private metrics registry (tests, standalone use).
    pub fn new(store: Arc<ModelStore>, config: BatchConfig) -> Self {
        MicroBatcher::with_registry(store, config, &MetricsRegistry::new())
    }

    /// A batcher whose instrumentation lands in `registry` — the serving
    /// layer passes each tenant's registry so batcher cost observations
    /// are readable from the tenant's metrics surface.
    pub fn with_registry(
        store: Arc<ModelStore>,
        config: BatchConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let counters = Arc::new(Counters::from_registry(registry));
        let worker_counters = counters.clone();
        let worker = std::thread::Builder::new()
            .name("raven-microbatcher".into())
            .spawn(move || batch_loop(rx, store, config, worker_counters))
            .expect("spawn micro-batcher worker");
        MicroBatcher {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            counters,
        }
    }

    /// Score one raw feature row (values in the model pipeline's step
    /// order) against the latest version of `model`. Blocks until the
    /// batched invocation containing this row completes.
    pub fn score(&self, model: &str, row: Vec<f64>) -> Result<f64> {
        self.score_inner(model, row, None, None, &SpanRecorder::disabled())
    }

    /// [`MicroBatcher::score`] with a span recorder: a sampled request
    /// gets `batcher-queue` (time from enqueue to flush) and
    /// `batcher-score` (its share of the batched invocation) spans,
    /// recorded by the worker thread.
    pub fn score_traced(&self, model: &str, row: Vec<f64>, trace: &SpanRecorder) -> Result<f64> {
        self.score_inner(model, row, None, None, trace)
    }

    /// The SLO-aware variant (mirroring `Scorer::score_cancellable`):
    /// the request is admitted only if the cost model predicts it can be
    /// scored before `deadline`, is shed typed at flush time if the
    /// deadline expires while it queues, and the caller waits with a
    /// timeout instead of indefinitely. A `cancel` token lets the caller
    /// abandon the wait early (the row may still be scored; its reply is
    /// dropped). Both `None` make this identical to [`Self::score_traced`].
    pub fn score_with_deadline(
        &self,
        model: &str,
        row: Vec<f64>,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
        trace: &SpanRecorder,
    ) -> Result<f64> {
        self.score_inner(model, row, deadline, cancel, trace)
    }

    fn score_inner(
        &self,
        model: &str,
        row: Vec<f64>,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
        trace: &SpanRecorder,
    ) -> Result<f64> {
        // Counted before the enqueue: the worker can flush a row and bump
        // `batched_rows` the instant it is sent, and no metrics snapshot
        // may ever observe `batched_rows > requests`.
        self.counters.requests.inc();
        // Admit-or-shed: if even an immediate flush of everything queued
        // (plus this row) is predicted to blow the deadline, reject now —
        // a doomed request must not occupy queue slots and scorer time.
        if let Some(at) = deadline {
            let slack = at.saturating_duration_since(Instant::now());
            let depth = self.counters.queue_depth.load(Ordering::Relaxed);
            let predicted_us = predicted_cost_us(
                self.counters.ewma_invocation_us.get(),
                self.counters.ewma_row_us.get(),
                depth + 1,
            );
            if slack.as_secs_f64() * 1e6 <= predicted_us {
                self.counters.shed.inc();
                return Err(ServerError::DeadlineExceeded(format!(
                    "shed at enqueue: predicted batch cost {predicted_us:.0} µs \
                     exceeds remaining deadline slack {:.0} µs ({depth} queued)",
                    slack.as_secs_f64() * 1e6,
                )));
            }
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let tx = self.tx.lock();
            let tx = tx.as_ref().ok_or(ServerError::ShuttingDown)?;
            self.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
            tx.send(Request {
                model: model.to_string(),
                row,
                reply: reply_tx,
                enqueued: Instant::now(),
                deadline,
                trace: trace.clone(),
            })
            .map_err(|_| ServerError::ShuttingDown)?;
        }
        if deadline.is_none() && cancel.is_none() {
            return reply_rx.recv().map_err(|_| ServerError::ShuttingDown)?;
        }
        // Deadline- or cancel-aware wait: sliced `recv_timeout` so a
        // cancelled token is noticed within CANCEL_POLL even when the
        // deadline is far (or absent). The worker's flush-time shed is
        // the authoritative `expired` accounting; returning here merely
        // stops the caller from waiting on a reply it can no longer use.
        loop {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(ServerError::DeadlineExceeded(
                        "request cancelled while waiting for its batched score".into(),
                    ));
                }
            }
            let mut slice = CANCEL_POLL;
            if let Some(at) = deadline {
                let now = Instant::now();
                if now >= at {
                    return Err(ServerError::DeadlineExceeded(format!(
                        "deadline exceeded by {:?} waiting for the batched score",
                        now.saturating_duration_since(at)
                    )));
                }
                slice = slice.min(at - now);
            }
            match reply_rx.recv_timeout(slice) {
                Ok(outcome) => return outcome,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(ServerError::ShuttingDown),
            }
        }
    }

    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            requests: self.counters.requests.get(),
            batches: self.counters.batches.get(),
            batched_rows: self.counters.batched_rows.get(),
            max_batch_seen: self.counters.max_batch.get() as u64,
            shed: self.counters.shed.get(),
            expired: self.counters.expired.get(),
            bad_arity: self.counters.bad_arity.get(),
            failed: self.counters.failed.get(),
            score_micros: self.counters.score_micros.get(),
            ewma_invocation_micros: self.counters.ewma_invocation_us.get(),
            ewma_row_micros: self.counters.ewma_row_us.get(),
            window_micros: self.counters.window_us.get(),
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        *self.tx.lock() = None; // disconnect → worker drains and exits
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

/// When the current partial batch should flush, per the policy. Called
/// every coalescing iteration so the adaptive window tracks the queue as
/// it grows: more pending rows → larger predicted cost → tighter
/// affordable wait against the oldest deadline.
fn flush_at(
    policy: &BatchPolicy,
    pending: &[Request],
    batch_started: Instant,
    now: Instant,
    counters: &Counters,
) -> Instant {
    match policy {
        BatchPolicy::Fixed { flush_interval } => batch_started + *flush_interval,
        BatchPolicy::Adaptive { min_wait, max_wait } => {
            let oldest_slack = pending
                .iter()
                .filter_map(|r| r.deadline)
                .min()
                .map(|at| at.saturating_duration_since(now));
            let window = adaptive_flush_window(
                *min_wait,
                *max_wait,
                pending.len(),
                oldest_slack,
                counters.ewma_invocation_us.get(),
                counters.ewma_row_us.get(),
            );
            counters.window_us.set(window.as_secs_f64() * 1e6);
            // However the window slides as requests arrive, a batch never
            // waits more than max_wait in total.
            (now + window).min(batch_started + *max_wait)
        }
    }
}

fn batch_loop(
    rx: mpsc::Receiver<Request>,
    store: Arc<ModelStore>,
    config: BatchConfig,
    counters: Arc<Counters>,
) {
    let max_batch = config.max_batch.max(1);
    let take = |req: Request| {
        counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
        req
    };
    // The residue of a saturated drain, carried back as the next batch's
    // seed so it still gets a (policy-sized) coalescing window instead of
    // flushing alone.
    let mut seed: Vec<Request> = Vec::new();
    loop {
        let mut pending = std::mem::take(&mut seed);
        if pending.is_empty() {
            match rx.recv() {
                Ok(first) => pending.push(take(first)),
                Err(_) => break,
            }
        }
        // Greedily soak up whatever is already queued: requests that were
        // waiting while we flushed join the batch without spending any of
        // its window.
        while pending.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => pending.push(take(req)),
                Err(_) => break,
            }
        }
        let batch_started = Instant::now();
        while pending.len() < max_batch {
            let now = Instant::now();
            let until = flush_at(&config.policy, &pending, batch_started, now, &counters);
            if now >= until {
                break;
            }
            match rx.recv_timeout(until - now) {
                Ok(req) => pending.push(take(req)),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let filled = pending.len() >= max_batch;
        flush(pending, &store, &counters);
        if !filled {
            continue;
        }
        // The batch filled before its window closed, so the queue may
        // hold a backlog. Drain full batches back to back; a partial
        // residue becomes the next iteration's seed — it re-enters the
        // timed coalescing loop above, where the policy decides how long
        // it may keep waiting.
        loop {
            let mut backlog = Vec::new();
            while backlog.len() < max_batch {
                match rx.try_recv() {
                    Ok(req) => backlog.push(take(req)),
                    Err(_) => break,
                }
            }
            if backlog.len() < max_batch {
                seed = backlog;
                break;
            }
            flush(backlog, &store, &counters);
        }
    }
}

/// Score a flush's worth of requests: shed the already-expired, then one
/// scorer invocation per model. The expiry check happens *before* the
/// scoring batch is built, so a row whose deadline passed while it
/// queued never reaches the scorer.
fn flush(pending: Vec<Request>, store: &ModelStore, counters: &Counters) {
    let now = Instant::now();
    let (live, dead): (Vec<Request>, Vec<Request>) = pending
        .into_iter()
        .partition(|r| r.deadline.is_none_or(|at| now < at));
    for req in dead {
        counters.expired.inc();
        req.trace.record(
            "batcher-queue",
            req.enqueued,
            now.saturating_duration_since(req.enqueued),
        );
        let _ = req.reply.send(Err(ServerError::DeadlineExceeded(format!(
            "deadline expired after {:?} in the batch queue",
            now.saturating_duration_since(req.enqueued)
        ))));
    }
    // Group by model, preserving arrival order within each group.
    let mut groups: Vec<(String, Vec<Request>)> = Vec::new();
    for req in live {
        match groups.iter_mut().find(|(m, _)| *m == req.model) {
            Some((_, g)) => g.push(req),
            None => groups.push((req.model.clone(), vec![req])),
        }
    }
    for (model, group) in groups {
        score_group(&model, group, store, counters);
    }
}

fn score_group(model: &str, group: Vec<Request>, store: &ModelStore, counters: &Counters) {
    // Queue time ends here: the flush has picked this request up. A
    // disabled recorder makes `record` a no-op, so untraced requests
    // (the overwhelming majority under 1-in-N sampling) pay nothing.
    let dequeued = Instant::now();
    for req in &group {
        req.trace.record(
            "batcher-queue",
            req.enqueued,
            dequeued.saturating_duration_since(req.enqueued),
        );
    }
    let pipeline = match store.get(model) {
        Ok(p) => p,
        Err(e) => {
            let err = ServerError::Store(e.to_string());
            for req in group {
                counters.failed.inc();
                let _ = req.reply.send(Err(err.clone()));
            }
            return;
        }
    };
    let width = pipeline.steps().len();
    // Rows with the wrong arity get individual errors; the rest batch.
    let (good, bad): (Vec<Request>, Vec<Request>) =
        group.into_iter().partition(|r| r.row.len() == width);
    for req in bad {
        counters.bad_arity.inc();
        let _ = req.reply.send(Err(ServerError::BadRequest(format!(
            "model '{model}' takes {width} features, request has {}",
            req.row.len()
        ))));
    }
    if good.is_empty() {
        return;
    }
    let rows = good.len();
    let mut flat = Vec::with_capacity(rows * width);
    for req in &good {
        flat.extend_from_slice(&req.row);
    }
    counters.batches.inc();
    counters.batched_rows.add(rows as u64);
    counters.max_batch.set_max(rows as f64);
    counters.batch_size.observe(rows as u64);
    let score_started = Instant::now();
    let outcome = pipeline.predict_raw(&flat, rows);
    let elapsed = score_started.elapsed();
    counters
        .score_micros
        .add(elapsed.as_micros().min(u64::MAX as u128) as u64);
    counters.invocation_us.observe_micros(elapsed);
    let micros = elapsed.as_secs_f64() * 1e6;
    counters.ewma_invocation_us.ewma(micros, COST_EWMA_ALPHA);
    counters
        .ewma_row_us
        .ewma(micros / rows as f64, COST_EWMA_ALPHA);
    for req in &good {
        req.trace.record("batcher-score", score_started, elapsed);
    }
    match outcome {
        Ok(scores) => {
            for (req, score) in good.into_iter().zip(scores) {
                let _ = req.reply.send(Ok(score));
            }
        }
        Err(e) => {
            let err = ServerError::Scoring(e.to_string());
            for req in good {
                let _ = req.reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};

    fn store_with_linear(name: &str, w: &[f64], b: f64) -> Arc<ModelStore> {
        let store = Arc::new(ModelStore::new());
        let steps = (0..w.len())
            .map(|i| FeatureStep::new(format!("f{i}"), Transform::Identity))
            .collect();
        let pipeline = Pipeline::new(
            steps,
            Estimator::Linear(LinearModel::new(w.to_vec(), b, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        store.store(name, pipeline);
        store
    }

    fn raw_request(
        model: &str,
        row: Vec<f64>,
        deadline: Option<Instant>,
    ) -> (Request, mpsc::Receiver<Result<f64>>) {
        let (reply_tx, reply_rx) = mpsc::channel();
        (
            Request {
                model: model.into(),
                row,
                reply: reply_tx,
                enqueued: Instant::now(),
                deadline,
                trace: SpanRecorder::disabled(),
            },
            reply_rx,
        )
    }

    #[test]
    fn scores_match_direct_pipeline() {
        let store = store_with_linear("m", &[2.0, -1.0], 0.5);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        assert_eq!(batcher.score("m", vec![3.0, 1.0]).unwrap(), 5.5);
        assert_eq!(batcher.score("m", vec![0.0, 0.0]).unwrap(), 0.5);
    }

    #[test]
    fn concurrent_requests_coalesce() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = Arc::new(MicroBatcher::new(
            store,
            // Wide fixed window: all threads' rows land in very few
            // flushes regardless of measured cost.
            BatchConfig::fixed(64, Duration::from_millis(50)),
        ));
        let n = 24;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = batcher.clone();
                std::thread::spawn(move || b.score("m", vec![i as f64]).unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), i as f64);
        }
        let stats = batcher.stats();
        assert_eq!(stats.requests, n as u64);
        assert_eq!(stats.batched_rows, n as u64);
        assert!(
            stats.batches < n as u64,
            "no coalescing: {} batches for {n} requests",
            stats.batches
        );
        assert!(stats.mean_batch_size() > 1.0);
        assert!(stats.max_batch_seen >= 2);
    }

    #[test]
    fn bad_requests_fail_individually() {
        let store = store_with_linear("m", &[1.0, 1.0], 0.0);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        assert!(matches!(
            batcher.score("m", vec![1.0]),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            batcher.score("ghost", vec![1.0, 2.0]),
            Err(ServerError::Store(_))
        ));
        // The queue still works afterwards.
        assert_eq!(batcher.score("m", vec![1.0, 2.0]).unwrap(), 3.0);
        // Every outcome landed in exactly one bucket.
        let stats = batcher.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.bad_arity, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.batched_rows, 1);
    }

    #[test]
    fn backlog_beyond_one_batch_drains_without_waiting_the_timer() {
        // Regression: a queue holding more than `max_batch` requests used
        // to flush one batch and leave the residue waiting out a fresh
        // flush window. Pre-fill the queue before the worker runs so the
        // scenario is deterministic, with a window ceiling (5 s) far
        // beyond what the test tolerates (1 s per reply) — the adaptive
        // policy must size the residue's actual wait from the measured
        // (tiny) scorer cost, not the ceiling.
        let store = store_with_linear("m", &[1.0], 0.0);
        let (tx, rx) = mpsc::channel::<Request>();
        let mut replies = Vec::new();
        for i in 0..6 {
            let (req, reply_rx) = raw_request("m", vec![i as f64], None);
            tx.send(req).unwrap();
            replies.push(reply_rx);
        }
        let counters = Arc::new(Counters::default());
        let worker_counters = counters.clone();
        let worker = std::thread::spawn(move || {
            batch_loop(
                rx,
                store,
                BatchConfig::adaptive(4, Duration::ZERO, Duration::from_secs(5)),
                worker_counters,
            )
        });
        for (i, reply) in replies.iter().enumerate() {
            let scored = reply
                .recv_timeout(Duration::from_secs(1))
                .expect("residue must flush promptly, not at the window ceiling")
                .unwrap();
            assert_eq!(scored, i as f64);
        }
        drop(tx);
        worker.join().unwrap();
        // One full batch of 4, one drained residue of 2.
        assert_eq!(counters.batches.get(), 2);
        assert_eq!(counters.batched_rows.get(), 6);
        assert_eq!(counters.max_batch.get(), 4.0);
    }

    #[test]
    fn expired_while_queued_shed_before_scoring() {
        // Two requests whose deadline already passed and two live ones,
        // pre-filled so one flush sees all four: the expired pair must
        // come back DeadlineExceeded without their rows ever entering
        // the scoring batch.
        let store = store_with_linear("m", &[1.0], 0.0);
        let (tx, rx) = mpsc::channel::<Request>();
        let long_dead = Instant::now() - Duration::from_millis(5);
        let (dead_a, dead_a_rx) = raw_request("m", vec![1.0], Some(long_dead));
        let (dead_b, dead_b_rx) = raw_request("m", vec![2.0], Some(long_dead));
        let (live_a, live_a_rx) = raw_request("m", vec![3.0], None);
        let (live_b, live_b_rx) = raw_request(
            "m",
            vec![4.0],
            Some(Instant::now() + Duration::from_secs(60)),
        );
        for req in [dead_a, live_a, dead_b, live_b] {
            tx.send(req).unwrap();
        }
        drop(tx);
        let counters = Arc::new(Counters::default());
        let worker_counters = counters.clone();
        batch_loop(
            rx,
            store,
            BatchConfig::adaptive(64, Duration::ZERO, Duration::from_millis(1)),
            worker_counters,
        );
        for dead_rx in [dead_a_rx, dead_b_rx] {
            assert!(matches!(
                dead_rx.recv().unwrap(),
                Err(ServerError::DeadlineExceeded(_))
            ));
        }
        assert_eq!(live_a_rx.recv().unwrap().unwrap(), 3.0);
        assert_eq!(live_b_rx.recv().unwrap().unwrap(), 4.0);
        // The expired rows never reached the scorer: the one invocation
        // held exactly the two live rows.
        assert_eq!(counters.expired.get(), 2);
        assert_eq!(counters.batched_rows.get(), 2);
        assert_eq!(counters.max_batch.get(), 2.0);
    }

    #[test]
    fn enqueue_shed_fires_on_predicted_miss_and_never_without_deadline() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let registry = MetricsRegistry::new();
        let batcher = MicroBatcher::with_registry(store, BatchConfig::default(), &registry);
        // Teach the cost model that an invocation takes 50 ms: any
        // deadline with less slack than that is a predicted miss.
        registry.gauge("batcher_ewma_invocation_us").set(50_000.0);
        registry.gauge("batcher_ewma_row_us").set(10.0);
        let tight = Instant::now() + Duration::from_millis(1);
        let err = batcher
            .score_with_deadline("m", vec![1.0], Some(tight), None, &SpanRecorder::disabled())
            .unwrap_err();
        assert!(
            matches!(err, ServerError::DeadlineExceeded(ref msg) if msg.contains("shed at enqueue")),
            "expected an enqueue shed, got {err:?}"
        );
        // With no deadline the same predicted cost never sheds.
        assert_eq!(batcher.score("m", vec![2.0]).unwrap(), 2.0);
        // A deadline with slack beyond the prediction is admitted too.
        let roomy = Instant::now() + Duration::from_secs(60);
        assert_eq!(
            batcher
                .score_with_deadline("m", vec![3.0], Some(roomy), None, &SpanRecorder::disabled())
                .unwrap(),
            3.0
        );
        let stats = batcher.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.batched_rows, 2);
        // The shed is visible on the metrics surface.
        assert_eq!(registry.snapshot().counters["batcher_shed_total"], 1);
    }

    #[test]
    fn cancel_token_abandons_the_wait() {
        let store = store_with_linear("m", &[1.0], 0.0);
        // A long fixed window so the request sits queued while we cancel.
        let batcher = Arc::new(MicroBatcher::new(
            store,
            BatchConfig::fixed(64, Duration::from_secs(5)),
        ));
        let token = CancelToken::new();
        let waiter = {
            let batcher = batcher.clone();
            let token = token.clone();
            std::thread::spawn(move || {
                batcher.score_with_deadline(
                    "m",
                    vec![1.0],
                    None,
                    Some(&token),
                    &SpanRecorder::disabled(),
                )
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        let outcome = waiter.join().unwrap();
        assert!(
            matches!(outcome, Err(ServerError::DeadlineExceeded(_))),
            "cancel must abandon the wait, got {outcome:?}"
        );
    }

    #[test]
    fn requests_never_lag_batched_rows() {
        // Regression for the enqueue/count race: `requests` used to be
        // incremented after the send, so a flush could bump
        // `batched_rows` first and a snapshot could observe
        // requests < batched_rows. Hammer scores from several threads
        // while a reader asserts the invariant on every snapshot.
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = Arc::new(MicroBatcher::new(
            store,
            BatchConfig::adaptive(8, Duration::ZERO, Duration::from_micros(200)),
        ));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let b = batcher.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        b.score("m", vec![(t * 500 + i) as f64]).unwrap();
                    }
                })
            })
            .collect();
        let reader = {
            let b = batcher.clone();
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let s = b.stats();
                    assert!(
                        s.requests >= s.batched_rows,
                        "snapshot saw batched_rows {} > requests {}",
                        s.batched_rows,
                        s.requests
                    );
                    std::hint::spin_loop();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        let s = batcher.stats();
        assert_eq!(s.requests, 2_000);
        assert_eq!(s.batched_rows, 2_000);
    }

    #[test]
    fn adaptive_window_formula() {
        let min = Duration::ZERO;
        let max = Duration::from_millis(4);
        // Cold gauges: no evidence a wait is worthwhile → the floor.
        assert_eq!(adaptive_flush_window(min, max, 1, None, 0.0, 0.0), min);
        // Cheap rows, no deadlines: the window is about the invocation
        // cost being amortized (here 500 µs + 2×10 µs), inside [min, max].
        let w = adaptive_flush_window(min, max, 2, None, 500.0, 10.0);
        assert_eq!(w, Duration::from_micros(520));
        // Expensive invocations without deadlines hit the ceiling.
        assert_eq!(adaptive_flush_window(min, max, 2, None, 1e6, 10.0), max);
        // A near deadline tightens the window below the worthwhile bound:
        // slack 1 ms − predicted 520 µs = 480 µs affordable.
        let w = adaptive_flush_window(min, max, 2, Some(Duration::from_millis(1)), 500.0, 10.0);
        assert_eq!(w, Duration::from_micros(480));
        // Slack already consumed by the predicted cost → flush now.
        let w = adaptive_flush_window(min, max, 2, Some(Duration::from_micros(100)), 500.0, 10.0);
        assert_eq!(w, min);
        // Degenerate gauges (NaN/negative) are treated as unseeded.
        let w = adaptive_flush_window(min, max, 4, None, f64::NAN, -3.0);
        assert_eq!(w, min);
        // min > max is tolerated: the floor wins.
        let w = adaptive_flush_window(
            Duration::from_millis(2),
            Duration::from_millis(1),
            1,
            None,
            1e6,
            0.0,
        );
        assert_eq!(w, Duration::from_millis(2));
    }

    #[test]
    fn ewma_cost_gauges_converge_and_track_shifts() {
        // The old bespoke CostEstimator's contract, now carried by the
        // registry gauges the flush loop feeds.
        let c = Counters::default();
        let record = |rows: u64, elapsed: Duration| {
            let micros = elapsed.as_secs_f64() * 1e6;
            c.ewma_invocation_us.ewma(micros, COST_EWMA_ALPHA);
            c.ewma_row_us.ewma(micros / rows as f64, COST_EWMA_ALPHA);
        };
        // First sample seeds directly — no warm-up bias from zero.
        record(10, Duration::from_micros(1_000));
        assert_eq!(c.ewma_row_us.get(), 100.0);
        assert_eq!(c.ewma_invocation_us.get(), 1_000.0);
        // A steady workload keeps the estimate steady.
        for _ in 0..50 {
            record(10, Duration::from_micros(1_000));
        }
        assert!((c.ewma_row_us.get() - 100.0).abs() < 1e-9);
        // The scorer gets 4x slower (model swap, cold cache): the EWMA
        // converges to the new cost within a few dozen invocations.
        for _ in 0..50 {
            record(10, Duration::from_micros(4_000));
        }
        assert!(
            (c.ewma_row_us.get() - 400.0).abs() < 5.0,
            "row cost must track the shift, got {}",
            c.ewma_row_us.get()
        );
        assert!((c.ewma_invocation_us.get() - 4_000.0).abs() < 50.0);
    }

    #[test]
    fn scorer_cost_lands_in_stats_and_registry() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let registry = MetricsRegistry::new();
        let batcher = MicroBatcher::with_registry(store, BatchConfig::default(), &registry);
        for i in 0..8 {
            batcher.score("m", vec![i as f64]).unwrap();
        }
        let stats = batcher.stats();
        assert!(
            stats.ewma_row_micros > 0.0,
            "observed per-row cost must be exposed: {stats:?}"
        );
        assert!(stats.ewma_invocation_micros >= stats.ewma_row_micros);
        // Aggregation: merging with an idle batcher's zeros must not
        // drag the cost estimate down.
        let mut merged = stats;
        merged.absorb(&BatcherStats::default());
        assert_eq!(merged.ewma_row_micros, stats.ewma_row_micros);
        assert_eq!(merged.requests, stats.requests);
        assert_eq!(merged.max_batch_seen, stats.max_batch_seen);
        // The same observations are readable from the metrics surface —
        // including the high-water batch size, which used to be a raw
        // atomic invisible to the registry.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["batcher_requests_total"], 8);
        assert_eq!(snap.counters["batcher_rows_total"], stats.batched_rows);
        let sizes = &snap.histograms["batcher_batch_size"];
        assert_eq!(sizes.sum, stats.batched_rows);
        assert_eq!(sizes.count, stats.batches);
        assert_eq!(snap.gauges["batcher_ewma_row_us"], stats.ewma_row_micros);
        assert_eq!(
            snap.gauges["batcher_max_batch"],
            stats.max_batch_seen as f64
        );
    }

    #[test]
    fn traced_point_score_records_queue_and_invocation_spans() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        let trace = SpanRecorder::enabled();
        assert_eq!(batcher.score_traced("m", vec![2.0], &trace).unwrap(), 2.0);
        let spans = trace.into_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["batcher-queue", "batcher-score"]);
    }

    #[test]
    fn model_update_visible_to_next_flush() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = MicroBatcher::new(store.clone(), BatchConfig::default());
        assert_eq!(batcher.score("m", vec![4.0]).unwrap(), 4.0);
        // v2 doubles the weight; the batcher resolves latest-per-flush.
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("f0", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        store.store("m", pipeline);
        assert_eq!(batcher.score("m", vec![4.0]).unwrap(), 8.0);
    }
}
