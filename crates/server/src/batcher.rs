//! Micro-batched point scoring.
//!
//! Serving workloads are dominated by single-row "score this one entity"
//! requests, but every scoring substrate in Raven is dramatically cheaper
//! per row when invoked on a batch (the paper's §5 observation v: batch
//! inference gains ~an order of magnitude). The micro-batcher closes the
//! gap: concurrent single-row requests are queued, coalesced for up to a
//! flush window (or until a batch fills), grouped by model, and scored
//! with **one** pipeline invocation per model per flush.

use crate::error::{Result, ServerError};
use parking_lot::Mutex;
use raven_core::ModelStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first request arrived.
    pub flush_interval: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            flush_interval: Duration::from_millis(1),
        }
    }
}

/// Counters exposed by [`MicroBatcher::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherStats {
    /// Single-row requests accepted.
    pub requests: u64,
    /// Scorer invocations issued (per model per flush).
    pub batches: u64,
    /// Rows scored across all batches.
    pub batched_rows: u64,
    /// Largest single scorer invocation.
    pub max_batch_seen: u64,
    /// Total wall time spent inside scorer invocations (µs).
    pub score_micros: u64,
    /// Exponentially-weighted observed cost of one scorer *invocation*
    /// (µs) — the fixed overhead adaptive batching amortizes.
    pub ewma_invocation_micros: f64,
    /// Exponentially-weighted observed cost per scored *row* (µs) — the
    /// marginal cost that bounds how long a flush window is worth
    /// holding. Together with `ewma_invocation_micros` this is the input
    /// an adaptive flush policy sizes its window from.
    pub ewma_row_micros: f64,
}

impl BatcherStats {
    /// Mean rows per scorer invocation (1.0 = no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_rows as f64 / self.batches as f64
        }
    }

    /// Mean wall time per scorer invocation (µs) over the whole run
    /// (the EWMA fields weight recent invocations instead).
    pub fn mean_invocation_micros(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.score_micros as f64 / self.batches as f64
        }
    }

    /// Mean wall time per scored row (µs) over the whole run.
    pub fn mean_row_micros(&self) -> f64 {
        if self.batched_rows == 0 {
            0.0
        } else {
            self.score_micros as f64 / self.batched_rows as f64
        }
    }

    /// Fold another batcher's counters into this one (the cross-tenant
    /// aggregate). EWMA costs merge weighted by work done, so an idle
    /// tenant's zeros do not drag the estimate toward zero.
    pub fn absorb(&mut self, other: &BatcherStats) {
        let (self_rows, other_rows) = (self.batched_rows as f64, other.batched_rows as f64);
        if self_rows + other_rows > 0.0 {
            self.ewma_row_micros = (self.ewma_row_micros * self_rows
                + other.ewma_row_micros * other_rows)
                / (self_rows + other_rows);
        }
        let (self_batches, other_batches) = (self.batches as f64, other.batches as f64);
        if self_batches + other_batches > 0.0 {
            self.ewma_invocation_micros = (self.ewma_invocation_micros * self_batches
                + other.ewma_invocation_micros * other_batches)
                / (self_batches + other_batches);
        }
        self.requests += other.requests;
        self.batches += other.batches;
        self.batched_rows += other.batched_rows;
        self.max_batch_seen = self.max_batch_seen.max(other.max_batch_seen);
        self.score_micros += other.score_micros;
    }
}

/// Observed scorer-cost estimator — the groundwork for adaptive
/// micro-batching (sizing the flush window from measured cost instead of
/// a fixed config value). Each scorer invocation feeds `(rows, elapsed)`;
/// the estimator keeps exponentially-weighted averages of the
/// per-invocation and per-row cost, so a future flush policy can ask
/// "how long does a batch of N take?" ≈ `invocation + N × row` and hold
/// the window only while the queueing delay it adds is smaller than the
/// invocation overhead it saves.
#[derive(Default)]
pub(crate) struct CostEstimator {
    /// EWMA of per-invocation micros, stored as f64 bits for lock-free
    /// updates (the flush loop is single-threaded per batcher, but stats
    /// readers race it).
    invocation_micros: AtomicU64,
    row_micros: AtomicU64,
}

/// EWMA smoothing factor: ~the last 10 invocations dominate.
const COST_EWMA_ALPHA: f64 = 0.2;

impl CostEstimator {
    /// Record one scorer invocation of `rows` rows taking `elapsed`.
    /// Fractional microseconds: fast in-process invocations routinely
    /// finish in well under 1 µs and must not round to a zero cost.
    fn record(&self, rows: usize, elapsed: Duration) {
        let micros = elapsed.as_secs_f64() * 1e6;
        ewma_update(&self.invocation_micros, micros);
        if rows > 0 {
            ewma_update(&self.row_micros, micros / rows as f64);
        }
    }

    fn invocation_micros(&self) -> f64 {
        f64::from_bits(self.invocation_micros.load(Ordering::Relaxed))
    }

    fn row_micros(&self) -> f64 {
        f64::from_bits(self.row_micros.load(Ordering::Relaxed))
    }
}

/// CAS-loop EWMA over an `AtomicU64` holding f64 bits. The first sample
/// seeds the average directly (an EWMA from zero would need ~1/α samples
/// to approach the true cost).
fn ewma_update(cell: &AtomicU64, sample: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(current);
        let next = if old == 0.0 {
            sample
        } else {
            old + COST_EWMA_ALPHA * (sample - old)
        };
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_rows: AtomicU64,
    max_batch_seen: AtomicU64,
    score_micros: AtomicU64,
    cost: CostEstimator,
}

struct Request {
    model: String,
    row: Vec<f64>,
    reply: mpsc::Sender<Result<f64>>,
}

/// A background coalescing loop over a shared [`ModelStore`].
///
/// `score` blocks the calling thread until its row's prediction comes
/// back from a batched scorer invocation; any number of threads may call
/// it concurrently. Dropping the batcher drains the queue and joins the
/// worker.
pub struct MicroBatcher {
    tx: Mutex<Option<mpsc::Sender<Request>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<Counters>,
}

impl MicroBatcher {
    pub fn new(store: Arc<ModelStore>, config: BatchConfig) -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let counters = Arc::new(Counters::default());
        let worker_counters = counters.clone();
        let worker = std::thread::Builder::new()
            .name("raven-microbatcher".into())
            .spawn(move || batch_loop(rx, store, config, worker_counters))
            .expect("spawn micro-batcher worker");
        MicroBatcher {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            counters,
        }
    }

    /// Score one raw feature row (values in the model pipeline's step
    /// order) against the latest version of `model`. Blocks until the
    /// batched invocation containing this row completes.
    pub fn score(&self, model: &str, row: Vec<f64>) -> Result<f64> {
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let tx = self.tx.lock();
            let tx = tx.as_ref().ok_or(ServerError::ShuttingDown)?;
            tx.send(Request {
                model: model.to_string(),
                row,
                reply: reply_tx,
            })
            .map_err(|_| ServerError::ShuttingDown)?;
        }
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        reply_rx.recv().map_err(|_| ServerError::ShuttingDown)?
    }

    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_rows: self.counters.batched_rows.load(Ordering::Relaxed),
            max_batch_seen: self.counters.max_batch_seen.load(Ordering::Relaxed),
            score_micros: self.counters.score_micros.load(Ordering::Relaxed),
            ewma_invocation_micros: self.counters.cost.invocation_micros(),
            ewma_row_micros: self.counters.cost.row_micros(),
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        *self.tx.lock() = None; // disconnect → worker drains and exits
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

fn batch_loop(
    rx: mpsc::Receiver<Request>,
    store: Arc<ModelStore>,
    config: BatchConfig,
    counters: Arc<Counters>,
) {
    let max_batch = config.max_batch.max(1);
    while let Ok(first) = rx.recv() {
        let deadline = Instant::now() + config.flush_interval;
        let mut pending = vec![first];
        while pending.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(req) => pending.push(req),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let filled = pending.len() >= max_batch;
        flush(pending, &store, &counters);
        if !filled {
            continue;
        }
        // The batch filled before its window closed, so the queue may
        // hold a backlog. Drain it now — full batches back to back, then
        // the partial residue — rather than making requests that already
        // waited out a saturated flush wait for a fresh timer tick too.
        loop {
            let mut backlog = Vec::new();
            while backlog.len() < max_batch {
                match rx.try_recv() {
                    Ok(req) => backlog.push(req),
                    Err(_) => break,
                }
            }
            if backlog.is_empty() {
                break;
            }
            let full = backlog.len() >= max_batch;
            flush(backlog, &store, &counters);
            if !full {
                break;
            }
        }
    }
}

/// Score a flush's worth of requests: one scorer invocation per model.
fn flush(pending: Vec<Request>, store: &ModelStore, counters: &Counters) {
    // Group by model, preserving arrival order within each group.
    let mut groups: Vec<(String, Vec<Request>)> = Vec::new();
    for req in pending {
        match groups.iter_mut().find(|(m, _)| *m == req.model) {
            Some((_, g)) => g.push(req),
            None => groups.push((req.model.clone(), vec![req])),
        }
    }
    for (model, group) in groups {
        score_group(&model, group, store, counters);
    }
}

fn score_group(model: &str, group: Vec<Request>, store: &ModelStore, counters: &Counters) {
    let pipeline = match store.get(model) {
        Ok(p) => p,
        Err(e) => {
            let err = ServerError::Store(e.to_string());
            for req in group {
                let _ = req.reply.send(Err(err.clone()));
            }
            return;
        }
    };
    let width = pipeline.steps().len();
    // Rows with the wrong arity get individual errors; the rest batch.
    let (good, bad): (Vec<Request>, Vec<Request>) =
        group.into_iter().partition(|r| r.row.len() == width);
    for req in bad {
        let _ = req.reply.send(Err(ServerError::BadRequest(format!(
            "model '{model}' takes {width} features, request has {}",
            req.row.len()
        ))));
    }
    if good.is_empty() {
        return;
    }
    let rows = good.len();
    let mut flat = Vec::with_capacity(rows * width);
    for req in &good {
        flat.extend_from_slice(&req.row);
    }
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .batched_rows
        .fetch_add(rows as u64, Ordering::Relaxed);
    counters
        .max_batch_seen
        .fetch_max(rows as u64, Ordering::Relaxed);
    let score_started = Instant::now();
    let outcome = pipeline.predict_raw(&flat, rows);
    let elapsed = score_started.elapsed();
    counters.score_micros.fetch_add(
        elapsed.as_micros().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    counters.cost.record(rows, elapsed);
    match outcome {
        Ok(scores) => {
            for (req, score) in good.into_iter().zip(scores) {
                let _ = req.reply.send(Ok(score));
            }
        }
        Err(e) => {
            let err = ServerError::Scoring(e.to_string());
            for req in good {
                let _ = req.reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};

    fn store_with_linear(name: &str, w: &[f64], b: f64) -> Arc<ModelStore> {
        let store = Arc::new(ModelStore::new());
        let steps = (0..w.len())
            .map(|i| FeatureStep::new(format!("f{i}"), Transform::Identity))
            .collect();
        let pipeline = Pipeline::new(
            steps,
            Estimator::Linear(LinearModel::new(w.to_vec(), b, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        store.store(name, pipeline);
        store
    }

    #[test]
    fn scores_match_direct_pipeline() {
        let store = store_with_linear("m", &[2.0, -1.0], 0.5);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        assert_eq!(batcher.score("m", vec![3.0, 1.0]).unwrap(), 5.5);
        assert_eq!(batcher.score("m", vec![0.0, 0.0]).unwrap(), 0.5);
    }

    #[test]
    fn concurrent_requests_coalesce() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = Arc::new(MicroBatcher::new(
            store,
            BatchConfig {
                max_batch: 64,
                // Wide window: all threads' rows land in very few flushes.
                flush_interval: Duration::from_millis(50),
            },
        ));
        let n = 24;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = batcher.clone();
                std::thread::spawn(move || b.score("m", vec![i as f64]).unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), i as f64);
        }
        let stats = batcher.stats();
        assert_eq!(stats.requests, n as u64);
        assert_eq!(stats.batched_rows, n as u64);
        assert!(
            stats.batches < n as u64,
            "no coalescing: {} batches for {n} requests",
            stats.batches
        );
        assert!(stats.mean_batch_size() > 1.0);
        assert!(stats.max_batch_seen >= 2);
    }

    #[test]
    fn bad_requests_fail_individually() {
        let store = store_with_linear("m", &[1.0, 1.0], 0.0);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        assert!(matches!(
            batcher.score("m", vec![1.0]),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            batcher.score("ghost", vec![1.0, 2.0]),
            Err(ServerError::Store(_))
        ));
        // The queue still works afterwards.
        assert_eq!(batcher.score("m", vec![1.0, 2.0]).unwrap(), 3.0);
    }

    #[test]
    fn backlog_beyond_one_batch_drains_without_waiting_the_timer() {
        // Regression: a queue holding more than `max_batch` requests used
        // to flush one batch and leave the residue waiting out a fresh
        // flush window. Pre-fill the queue before the worker runs so the
        // scenario is deterministic, with a window (5 s) far beyond what
        // the test tolerates (1 s per reply).
        let store = store_with_linear("m", &[1.0], 0.0);
        let (tx, rx) = mpsc::channel::<Request>();
        let mut replies = Vec::new();
        for i in 0..6 {
            let (reply_tx, reply_rx) = mpsc::channel();
            tx.send(Request {
                model: "m".into(),
                row: vec![i as f64],
                reply: reply_tx,
            })
            .unwrap();
            replies.push(reply_rx);
        }
        let counters = Arc::new(Counters::default());
        let worker_counters = counters.clone();
        let worker = std::thread::spawn(move || {
            batch_loop(
                rx,
                store,
                BatchConfig {
                    max_batch: 4,
                    flush_interval: Duration::from_secs(5),
                },
                worker_counters,
            )
        });
        for (i, reply) in replies.iter().enumerate() {
            let scored = reply
                .recv_timeout(Duration::from_secs(1))
                .expect("residue must flush immediately, not at the next timer tick")
                .unwrap();
            assert_eq!(scored, i as f64);
        }
        drop(tx);
        worker.join().unwrap();
        // One full batch of 4, one drained residue of 2.
        assert_eq!(counters.batches.load(Ordering::Relaxed), 2);
        assert_eq!(counters.batched_rows.load(Ordering::Relaxed), 6);
        assert_eq!(counters.max_batch_seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn cost_estimator_converges_and_tracks_shifts() {
        let est = CostEstimator::default();
        // First sample seeds directly — no warm-up bias from zero.
        est.record(10, Duration::from_micros(1_000));
        assert_eq!(est.row_micros(), 100.0);
        assert_eq!(est.invocation_micros(), 1_000.0);
        // A steady workload keeps the estimate steady.
        for _ in 0..50 {
            est.record(10, Duration::from_micros(1_000));
        }
        assert!((est.row_micros() - 100.0).abs() < 1e-9);
        // The scorer gets 4x slower (model swap, cold cache): the EWMA
        // converges to the new cost within a few dozen invocations.
        for _ in 0..50 {
            est.record(10, Duration::from_micros(4_000));
        }
        assert!(
            (est.row_micros() - 400.0).abs() < 5.0,
            "row cost must track the shift, got {}",
            est.row_micros()
        );
        assert!((est.invocation_micros() - 4_000.0).abs() < 50.0);
        // Zero-row invocations update invocation cost, never row cost.
        let before = est.row_micros();
        est.record(0, Duration::from_micros(9_999));
        assert_eq!(est.row_micros(), before);
    }

    #[test]
    fn scorer_cost_lands_in_stats() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        for i in 0..8 {
            batcher.score("m", vec![i as f64]).unwrap();
        }
        let stats = batcher.stats();
        assert!(
            stats.ewma_row_micros > 0.0,
            "observed per-row cost must be exposed: {stats:?}"
        );
        assert!(stats.ewma_invocation_micros >= stats.ewma_row_micros);
        assert!(stats.mean_invocation_micros() >= stats.mean_row_micros());
        // Aggregation: merging with an idle batcher's zeros must not
        // drag the cost estimate down.
        let mut merged = stats;
        merged.absorb(&BatcherStats::default());
        assert_eq!(merged.ewma_row_micros, stats.ewma_row_micros);
        assert_eq!(merged.requests, stats.requests);
    }

    #[test]
    fn model_update_visible_to_next_flush() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = MicroBatcher::new(store.clone(), BatchConfig::default());
        assert_eq!(batcher.score("m", vec![4.0]).unwrap(), 4.0);
        // v2 doubles the weight; the batcher resolves latest-per-flush.
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("f0", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        store.store("m", pipeline);
        assert_eq!(batcher.score("m", vec![4.0]).unwrap(), 8.0);
    }
}
