//! Micro-batched point scoring.
//!
//! Serving workloads are dominated by single-row "score this one entity"
//! requests, but every scoring substrate in Raven is dramatically cheaper
//! per row when invoked on a batch (the paper's §5 observation v: batch
//! inference gains ~an order of magnitude). The micro-batcher closes the
//! gap: concurrent single-row requests are queued, coalesced for up to a
//! flush window (or until a batch fills), grouped by model, and scored
//! with **one** pipeline invocation per model per flush.

use crate::error::{Result, ServerError};
use parking_lot::Mutex;
use raven_core::ModelStore;
use raven_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanRecorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Flush as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first request arrived.
    pub flush_interval: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            flush_interval: Duration::from_millis(1),
        }
    }
}

/// Counters exposed by [`MicroBatcher::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatcherStats {
    /// Single-row requests accepted.
    pub requests: u64,
    /// Scorer invocations issued (per model per flush).
    pub batches: u64,
    /// Rows scored across all batches.
    pub batched_rows: u64,
    /// Largest single scorer invocation.
    pub max_batch_seen: u64,
    /// Total wall time spent inside scorer invocations (µs).
    pub score_micros: u64,
    /// Exponentially-weighted observed cost of one scorer *invocation*
    /// (µs) — the fixed overhead adaptive batching amortizes.
    pub ewma_invocation_micros: f64,
    /// Exponentially-weighted observed cost per scored *row* (µs) — the
    /// marginal cost that bounds how long a flush window is worth
    /// holding. Together with `ewma_invocation_micros` this is the input
    /// an adaptive flush policy sizes its window from.
    pub ewma_row_micros: f64,
}

impl BatcherStats {
    /// Mean rows per scorer invocation (1.0 = no coalescing happened).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_rows as f64 / self.batches as f64
        }
    }

    /// Fold another batcher's counters into this one (the cross-tenant
    /// aggregate). EWMA costs merge weighted by work done, so an idle
    /// tenant's zeros do not drag the estimate toward zero.
    pub fn absorb(&mut self, other: &BatcherStats) {
        let (self_rows, other_rows) = (self.batched_rows as f64, other.batched_rows as f64);
        if self_rows + other_rows > 0.0 {
            self.ewma_row_micros = (self.ewma_row_micros * self_rows
                + other.ewma_row_micros * other_rows)
                / (self_rows + other_rows);
        }
        let (self_batches, other_batches) = (self.batches as f64, other.batches as f64);
        if self_batches + other_batches > 0.0 {
            self.ewma_invocation_micros = (self.ewma_invocation_micros * self_batches
                + other.ewma_invocation_micros * other_batches)
                / (self_batches + other_batches);
        }
        self.requests += other.requests;
        self.batches += other.batches;
        self.batched_rows += other.batched_rows;
        self.max_batch_seen = self.max_batch_seen.max(other.max_batch_seen);
        self.score_micros += other.score_micros;
    }
}

/// EWMA smoothing factor for observed scorer cost: ~the last 10
/// invocations dominate. The cost estimate itself — "how long does a
/// batch of N take?" ≈ `invocation + N × row` — is the groundwork for
/// adaptive micro-batching (sizing the flush window from measured cost
/// instead of a fixed config value).
const COST_EWMA_ALPHA: f64 = 0.2;

/// Registry-backed batcher instrumentation. Every handle is an `Arc`
/// over atomics obtained once at construction, so the flush loop records
/// lock-free; the same series are readable from the tenant's metrics
/// surface (`raven_batcher_*`). This replaces the bespoke
/// `CostEstimator`: the CAS-loop EWMA lives in [`raven_obs::Gauge`] now.
struct Counters {
    requests: Arc<Counter>,
    batches: Arc<Counter>,
    batched_rows: Arc<Counter>,
    score_micros: Arc<Counter>,
    /// Rows per scorer invocation (mean/percentiles of coalescing).
    batch_size: Arc<Histogram>,
    /// Wall micros per scorer invocation.
    invocation_us: Arc<Histogram>,
    /// EWMA of per-invocation / per-row cost in µs (fractional: fast
    /// in-process invocations finish in well under 1 µs and must not
    /// round to a zero cost).
    ewma_invocation_us: Arc<Gauge>,
    ewma_row_us: Arc<Gauge>,
    /// Largest single invocation — an exact high-water mark, which a
    /// log2 histogram cannot recover.
    max_batch_seen: AtomicU64,
}

impl Counters {
    fn from_registry(registry: &MetricsRegistry) -> Self {
        Counters {
            requests: registry.counter("batcher_requests_total"),
            batches: registry.counter("batcher_batches_total"),
            batched_rows: registry.counter("batcher_rows_total"),
            score_micros: registry.counter("batcher_score_micros_total"),
            batch_size: registry.histogram("batcher_batch_size"),
            invocation_us: registry.histogram("batcher_invocation_us"),
            ewma_invocation_us: registry.gauge("batcher_ewma_invocation_us"),
            ewma_row_us: registry.gauge("batcher_ewma_row_us"),
            max_batch_seen: AtomicU64::new(0),
        }
    }
}

impl Default for Counters {
    fn default() -> Self {
        Counters::from_registry(&MetricsRegistry::new())
    }
}

struct Request {
    model: String,
    row: Vec<f64>,
    reply: mpsc::Sender<Result<f64>>,
    /// When the request entered the queue — the worker turns this into a
    /// `batcher-queue` span on the request's trace.
    enqueued: Instant,
    trace: SpanRecorder,
}

/// A background coalescing loop over a shared [`ModelStore`].
///
/// `score` blocks the calling thread until its row's prediction comes
/// back from a batched scorer invocation; any number of threads may call
/// it concurrently. Dropping the batcher drains the queue and joins the
/// worker.
pub struct MicroBatcher {
    tx: Mutex<Option<mpsc::Sender<Request>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<Counters>,
}

impl MicroBatcher {
    /// A batcher with a private metrics registry (tests, standalone use).
    pub fn new(store: Arc<ModelStore>, config: BatchConfig) -> Self {
        MicroBatcher::with_registry(store, config, &MetricsRegistry::new())
    }

    /// A batcher whose instrumentation lands in `registry` — the serving
    /// layer passes each tenant's registry so batcher cost observations
    /// are readable from the tenant's metrics surface.
    pub fn with_registry(
        store: Arc<ModelStore>,
        config: BatchConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let counters = Arc::new(Counters::from_registry(registry));
        let worker_counters = counters.clone();
        let worker = std::thread::Builder::new()
            .name("raven-microbatcher".into())
            .spawn(move || batch_loop(rx, store, config, worker_counters))
            .expect("spawn micro-batcher worker");
        MicroBatcher {
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            counters,
        }
    }

    /// Score one raw feature row (values in the model pipeline's step
    /// order) against the latest version of `model`. Blocks until the
    /// batched invocation containing this row completes.
    pub fn score(&self, model: &str, row: Vec<f64>) -> Result<f64> {
        self.score_traced(model, row, &SpanRecorder::disabled())
    }

    /// [`MicroBatcher::score`] with a span recorder: a sampled request
    /// gets `batcher-queue` (time from enqueue to flush) and
    /// `batcher-score` (its share of the batched invocation) spans,
    /// recorded by the worker thread.
    pub fn score_traced(&self, model: &str, row: Vec<f64>, trace: &SpanRecorder) -> Result<f64> {
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let tx = self.tx.lock();
            let tx = tx.as_ref().ok_or(ServerError::ShuttingDown)?;
            tx.send(Request {
                model: model.to_string(),
                row,
                reply: reply_tx,
                enqueued: Instant::now(),
                trace: trace.clone(),
            })
            .map_err(|_| ServerError::ShuttingDown)?;
        }
        self.counters.requests.inc();
        reply_rx.recv().map_err(|_| ServerError::ShuttingDown)?
    }

    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            requests: self.counters.requests.get(),
            batches: self.counters.batches.get(),
            batched_rows: self.counters.batched_rows.get(),
            max_batch_seen: self.counters.max_batch_seen.load(Ordering::Relaxed),
            score_micros: self.counters.score_micros.get(),
            ewma_invocation_micros: self.counters.ewma_invocation_us.get(),
            ewma_row_micros: self.counters.ewma_row_us.get(),
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        *self.tx.lock() = None; // disconnect → worker drains and exits
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

fn batch_loop(
    rx: mpsc::Receiver<Request>,
    store: Arc<ModelStore>,
    config: BatchConfig,
    counters: Arc<Counters>,
) {
    let max_batch = config.max_batch.max(1);
    while let Ok(first) = rx.recv() {
        let deadline = Instant::now() + config.flush_interval;
        let mut pending = vec![first];
        while pending.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(req) => pending.push(req),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let filled = pending.len() >= max_batch;
        flush(pending, &store, &counters);
        if !filled {
            continue;
        }
        // The batch filled before its window closed, so the queue may
        // hold a backlog. Drain it now — full batches back to back, then
        // the partial residue — rather than making requests that already
        // waited out a saturated flush wait for a fresh timer tick too.
        loop {
            let mut backlog = Vec::new();
            while backlog.len() < max_batch {
                match rx.try_recv() {
                    Ok(req) => backlog.push(req),
                    Err(_) => break,
                }
            }
            if backlog.is_empty() {
                break;
            }
            let full = backlog.len() >= max_batch;
            flush(backlog, &store, &counters);
            if !full {
                break;
            }
        }
    }
}

/// Score a flush's worth of requests: one scorer invocation per model.
fn flush(pending: Vec<Request>, store: &ModelStore, counters: &Counters) {
    // Group by model, preserving arrival order within each group.
    let mut groups: Vec<(String, Vec<Request>)> = Vec::new();
    for req in pending {
        match groups.iter_mut().find(|(m, _)| *m == req.model) {
            Some((_, g)) => g.push(req),
            None => groups.push((req.model.clone(), vec![req])),
        }
    }
    for (model, group) in groups {
        score_group(&model, group, store, counters);
    }
}

fn score_group(model: &str, group: Vec<Request>, store: &ModelStore, counters: &Counters) {
    // Queue time ends here: the flush has picked this request up. A
    // disabled recorder makes `record` a no-op, so untraced requests
    // (the overwhelming majority under 1-in-N sampling) pay nothing.
    let dequeued = Instant::now();
    for req in &group {
        req.trace.record(
            "batcher-queue",
            req.enqueued,
            dequeued.saturating_duration_since(req.enqueued),
        );
    }
    let pipeline = match store.get(model) {
        Ok(p) => p,
        Err(e) => {
            let err = ServerError::Store(e.to_string());
            for req in group {
                let _ = req.reply.send(Err(err.clone()));
            }
            return;
        }
    };
    let width = pipeline.steps().len();
    // Rows with the wrong arity get individual errors; the rest batch.
    let (good, bad): (Vec<Request>, Vec<Request>) =
        group.into_iter().partition(|r| r.row.len() == width);
    for req in bad {
        let _ = req.reply.send(Err(ServerError::BadRequest(format!(
            "model '{model}' takes {width} features, request has {}",
            req.row.len()
        ))));
    }
    if good.is_empty() {
        return;
    }
    let rows = good.len();
    let mut flat = Vec::with_capacity(rows * width);
    for req in &good {
        flat.extend_from_slice(&req.row);
    }
    counters.batches.inc();
    counters.batched_rows.add(rows as u64);
    counters
        .max_batch_seen
        .fetch_max(rows as u64, Ordering::Relaxed);
    counters.batch_size.observe(rows as u64);
    let score_started = Instant::now();
    let outcome = pipeline.predict_raw(&flat, rows);
    let elapsed = score_started.elapsed();
    counters
        .score_micros
        .add(elapsed.as_micros().min(u64::MAX as u128) as u64);
    counters.invocation_us.observe_micros(elapsed);
    let micros = elapsed.as_secs_f64() * 1e6;
    counters.ewma_invocation_us.ewma(micros, COST_EWMA_ALPHA);
    counters
        .ewma_row_us
        .ewma(micros / rows as f64, COST_EWMA_ALPHA);
    for req in &good {
        req.trace.record("batcher-score", score_started, elapsed);
    }
    match outcome {
        Ok(scores) => {
            for (req, score) in good.into_iter().zip(scores) {
                let _ = req.reply.send(Ok(score));
            }
        }
        Err(e) => {
            let err = ServerError::Scoring(e.to_string());
            for req in good {
                let _ = req.reply.send(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel, Pipeline};

    fn store_with_linear(name: &str, w: &[f64], b: f64) -> Arc<ModelStore> {
        let store = Arc::new(ModelStore::new());
        let steps = (0..w.len())
            .map(|i| FeatureStep::new(format!("f{i}"), Transform::Identity))
            .collect();
        let pipeline = Pipeline::new(
            steps,
            Estimator::Linear(LinearModel::new(w.to_vec(), b, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        store.store(name, pipeline);
        store
    }

    #[test]
    fn scores_match_direct_pipeline() {
        let store = store_with_linear("m", &[2.0, -1.0], 0.5);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        assert_eq!(batcher.score("m", vec![3.0, 1.0]).unwrap(), 5.5);
        assert_eq!(batcher.score("m", vec![0.0, 0.0]).unwrap(), 0.5);
    }

    #[test]
    fn concurrent_requests_coalesce() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = Arc::new(MicroBatcher::new(
            store,
            BatchConfig {
                max_batch: 64,
                // Wide window: all threads' rows land in very few flushes.
                flush_interval: Duration::from_millis(50),
            },
        ));
        let n = 24;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = batcher.clone();
                std::thread::spawn(move || b.score("m", vec![i as f64]).unwrap())
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), i as f64);
        }
        let stats = batcher.stats();
        assert_eq!(stats.requests, n as u64);
        assert_eq!(stats.batched_rows, n as u64);
        assert!(
            stats.batches < n as u64,
            "no coalescing: {} batches for {n} requests",
            stats.batches
        );
        assert!(stats.mean_batch_size() > 1.0);
        assert!(stats.max_batch_seen >= 2);
    }

    #[test]
    fn bad_requests_fail_individually() {
        let store = store_with_linear("m", &[1.0, 1.0], 0.0);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        assert!(matches!(
            batcher.score("m", vec![1.0]),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            batcher.score("ghost", vec![1.0, 2.0]),
            Err(ServerError::Store(_))
        ));
        // The queue still works afterwards.
        assert_eq!(batcher.score("m", vec![1.0, 2.0]).unwrap(), 3.0);
    }

    #[test]
    fn backlog_beyond_one_batch_drains_without_waiting_the_timer() {
        // Regression: a queue holding more than `max_batch` requests used
        // to flush one batch and leave the residue waiting out a fresh
        // flush window. Pre-fill the queue before the worker runs so the
        // scenario is deterministic, with a window (5 s) far beyond what
        // the test tolerates (1 s per reply).
        let store = store_with_linear("m", &[1.0], 0.0);
        let (tx, rx) = mpsc::channel::<Request>();
        let mut replies = Vec::new();
        for i in 0..6 {
            let (reply_tx, reply_rx) = mpsc::channel();
            tx.send(Request {
                model: "m".into(),
                row: vec![i as f64],
                reply: reply_tx,
                enqueued: Instant::now(),
                trace: SpanRecorder::disabled(),
            })
            .unwrap();
            replies.push(reply_rx);
        }
        let counters = Arc::new(Counters::default());
        let worker_counters = counters.clone();
        let worker = std::thread::spawn(move || {
            batch_loop(
                rx,
                store,
                BatchConfig {
                    max_batch: 4,
                    flush_interval: Duration::from_secs(5),
                },
                worker_counters,
            )
        });
        for (i, reply) in replies.iter().enumerate() {
            let scored = reply
                .recv_timeout(Duration::from_secs(1))
                .expect("residue must flush immediately, not at the next timer tick")
                .unwrap();
            assert_eq!(scored, i as f64);
        }
        drop(tx);
        worker.join().unwrap();
        // One full batch of 4, one drained residue of 2.
        assert_eq!(counters.batches.get(), 2);
        assert_eq!(counters.batched_rows.get(), 6);
        assert_eq!(counters.max_batch_seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn ewma_cost_gauges_converge_and_track_shifts() {
        // The old bespoke CostEstimator's contract, now carried by the
        // registry gauges the flush loop feeds.
        let c = Counters::default();
        let record = |rows: u64, elapsed: Duration| {
            let micros = elapsed.as_secs_f64() * 1e6;
            c.ewma_invocation_us.ewma(micros, COST_EWMA_ALPHA);
            c.ewma_row_us.ewma(micros / rows as f64, COST_EWMA_ALPHA);
        };
        // First sample seeds directly — no warm-up bias from zero.
        record(10, Duration::from_micros(1_000));
        assert_eq!(c.ewma_row_us.get(), 100.0);
        assert_eq!(c.ewma_invocation_us.get(), 1_000.0);
        // A steady workload keeps the estimate steady.
        for _ in 0..50 {
            record(10, Duration::from_micros(1_000));
        }
        assert!((c.ewma_row_us.get() - 100.0).abs() < 1e-9);
        // The scorer gets 4x slower (model swap, cold cache): the EWMA
        // converges to the new cost within a few dozen invocations.
        for _ in 0..50 {
            record(10, Duration::from_micros(4_000));
        }
        assert!(
            (c.ewma_row_us.get() - 400.0).abs() < 5.0,
            "row cost must track the shift, got {}",
            c.ewma_row_us.get()
        );
        assert!((c.ewma_invocation_us.get() - 4_000.0).abs() < 50.0);
    }

    #[test]
    fn scorer_cost_lands_in_stats_and_registry() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let registry = MetricsRegistry::new();
        let batcher = MicroBatcher::with_registry(store, BatchConfig::default(), &registry);
        for i in 0..8 {
            batcher.score("m", vec![i as f64]).unwrap();
        }
        let stats = batcher.stats();
        assert!(
            stats.ewma_row_micros > 0.0,
            "observed per-row cost must be exposed: {stats:?}"
        );
        assert!(stats.ewma_invocation_micros >= stats.ewma_row_micros);
        // Aggregation: merging with an idle batcher's zeros must not
        // drag the cost estimate down.
        let mut merged = stats;
        merged.absorb(&BatcherStats::default());
        assert_eq!(merged.ewma_row_micros, stats.ewma_row_micros);
        assert_eq!(merged.requests, stats.requests);
        // The same observations are readable from the metrics surface.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["batcher_requests_total"], 8);
        assert_eq!(snap.counters["batcher_rows_total"], stats.batched_rows);
        let sizes = &snap.histograms["batcher_batch_size"];
        assert_eq!(sizes.sum, stats.batched_rows);
        assert_eq!(sizes.count, stats.batches);
        assert_eq!(snap.gauges["batcher_ewma_row_us"], stats.ewma_row_micros);
    }

    #[test]
    fn traced_point_score_records_queue_and_invocation_spans() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = MicroBatcher::new(store, BatchConfig::default());
        let trace = SpanRecorder::enabled();
        assert_eq!(batcher.score_traced("m", vec![2.0], &trace).unwrap(), 2.0);
        let spans = trace.into_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["batcher-queue", "batcher-score"]);
    }

    #[test]
    fn model_update_visible_to_next_flush() {
        let store = store_with_linear("m", &[1.0], 0.0);
        let batcher = MicroBatcher::new(store.clone(), BatchConfig::default());
        assert_eq!(batcher.score("m", vec![4.0]).unwrap(), 4.0);
        // v2 doubles the weight; the batcher resolves latest-per-flush.
        let pipeline = Pipeline::new(
            vec![FeatureStep::new("f0", Transform::Identity)],
            Estimator::Linear(LinearModel::new(vec![2.0], 0.0, LinearKind::Regression).unwrap()),
        )
        .unwrap();
        store.store("m", pipeline);
        assert_eq!(batcher.score("m", vec![4.0]).unwrap(), 8.0);
    }
}
