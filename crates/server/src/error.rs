//! Serving-layer errors.

use raven_core::session::SessionError;
use std::fmt;

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// SQL parse/bind failure.
    Sql(String),
    /// Cross-optimizer failure.
    Optimizer(String),
    /// Plan execution failure.
    Execution(String),
    /// Catalog/data failure.
    Data(String),
    /// Model-store failure (unknown model, corrupt bytes, …).
    Store(String),
    /// Scoring failure inside a batched invocation.
    Scoring(String),
    /// Malformed request (e.g. wrong feature arity).
    BadRequest(String),
    /// The server is shutting down; the request was not served.
    ShuttingDown,
    /// Admission control rejected the request: the execution semaphore
    /// and its bounded queue are full (or the wait timed out). The
    /// request was never executed; retry with backoff.
    Overloaded(String),
    /// The request's deadline expired — while queued for admission or
    /// mid-execution (the executor's cancellation token fired).
    DeadlineExceeded(String),
    /// A malformed or incompatible wire frame (bad version, truncated
    /// payload, unknown kind).
    Protocol(String),
    /// A transport-level failure (connect/read/write on the socket).
    Network(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Sql(m) => write!(f, "sql error: {m}"),
            ServerError::Optimizer(m) => write!(f, "optimizer error: {m}"),
            ServerError::Execution(m) => write!(f, "execution error: {m}"),
            ServerError::Data(m) => write!(f, "data error: {m}"),
            ServerError::Store(m) => write!(f, "model store error: {m}"),
            ServerError::Scoring(m) => write!(f, "scoring error: {m}"),
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Overloaded(m) => write!(f, "overloaded: {m}"),
            ServerError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            ServerError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServerError::Network(m) => write!(f, "network error: {m}"),
        }
    }
}

impl ServerError {
    /// The variant's inner message, without the `Display` prefix — what
    /// error frames carry, so a client-side reconstruction through
    /// [`crate::proto::ErrorCode::into_error`] round-trips exactly
    /// instead of stacking prefixes.
    pub fn detail(&self) -> String {
        match self {
            ServerError::Sql(m)
            | ServerError::Optimizer(m)
            | ServerError::Execution(m)
            | ServerError::Data(m)
            | ServerError::Store(m)
            | ServerError::Scoring(m)
            | ServerError::BadRequest(m)
            | ServerError::Overloaded(m)
            | ServerError::DeadlineExceeded(m)
            | ServerError::Protocol(m)
            | ServerError::Network(m) => m.clone(),
            ServerError::ShuttingDown => "server is shutting down".into(),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Sql(m) | SessionError::Python(m) => ServerError::Sql(m),
            SessionError::Optimizer(m) => ServerError::Optimizer(m),
            SessionError::Execution(m) => ServerError::Execution(m),
            SessionError::Data(m) => ServerError::Data(m),
            SessionError::Store(m) => ServerError::Store(m),
            SessionError::Cancelled => ServerError::DeadlineExceeded("execution cancelled".into()),
        }
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
