//! Serving-layer errors.

use raven_core::session::SessionError;
use std::fmt;

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// SQL parse/bind failure.
    Sql(String),
    /// Cross-optimizer failure.
    Optimizer(String),
    /// Plan execution failure.
    Execution(String),
    /// Catalog/data failure.
    Data(String),
    /// Model-store failure (unknown model, corrupt bytes, …).
    Store(String),
    /// Scoring failure inside a batched invocation.
    Scoring(String),
    /// Malformed request (e.g. wrong feature arity).
    BadRequest(String),
    /// The server is shutting down; the request was not served.
    ShuttingDown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Sql(m) => write!(f, "sql error: {m}"),
            ServerError::Optimizer(m) => write!(f, "optimizer error: {m}"),
            ServerError::Execution(m) => write!(f, "execution error: {m}"),
            ServerError::Data(m) => write!(f, "data error: {m}"),
            ServerError::Store(m) => write!(f, "model store error: {m}"),
            ServerError::Scoring(m) => write!(f, "scoring error: {m}"),
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Sql(m) | SessionError::Python(m) => ServerError::Sql(m),
            SessionError::Optimizer(m) => ServerError::Optimizer(m),
            SessionError::Execution(m) => ServerError::Execution(m),
            SessionError::Data(m) => ServerError::Data(m),
            SessionError::Store(m) => ServerError::Store(m),
        }
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
