//! Constant → placeholder extraction: the serving-side half of
//! parameterized prepared statements.
//!
//! Production traffic is overwhelmingly *template-shaped*: millions of
//! requests that differ only in the literal constants they carry
//! (`WHERE d.age > 30` vs. `WHERE d.age > 31`). A plan cache keyed on
//! exact SQL text re-optimizes every one of them. [`normalize`] rewrites
//! incoming SQL at the token level — each literal becomes a `?`
//! positional placeholder and its value is captured — so the cache keys
//! on the shared template and every constant variant hits the same
//! prepared plan, which executes via [`raven_ir::Plan::bind_parameters`].
//!
//! Positions where a literal is *structural* rather than data are left
//! untouched:
//!
//! * `DECLARE @var ... = '<model>'` bodies (the string names a model);
//! * `MODEL = '<name>'` inside `PREDICT(...)`;
//! * `LIMIT n` (the parser requires a literal row count, and a different
//!   limit is a genuinely different plan);
//! * negative literals fold their sign into the captured value, so
//!   `x > -5` normalizes to `x > ?` with parameter `-5`.
//!
//! Because the template is re-rendered from the token stream, queries
//! that differ only in whitespace or comments also share one cache
//! entry.
//!
//! ```
//! use raven_server::normalize::normalize;
//! use raven_data::Value;
//!
//! let n = normalize("SELECT a FROM t WHERE a > 30 AND dest = 'JFK'").unwrap();
//! assert_eq!(n.template, "SELECT a FROM t WHERE a > ? AND dest = ?");
//! assert_eq!(n.params, vec![Value::Int64(30), Value::Utf8("JFK".into())]);
//! // A different constant produces the SAME template:
//! let m = normalize("SELECT a FROM t WHERE a > 31 AND dest = 'LAX'").unwrap();
//! assert_eq!(m.template, n.template);
//! ```

use raven_data::Value;
use raven_sql::lexer::{lex, Token};

/// A query rewritten to its parameterized template.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedQuery {
    /// The SQL text with literals replaced by `?` placeholders,
    /// re-rendered from tokens (whitespace/comment-insensitive).
    pub template: String,
    /// The extracted constants, in placeholder order.
    pub params: Vec<Value>,
}

impl NormalizedQuery {
    /// True if at least one literal was extracted (if not, the template
    /// still canonicalizes whitespace but adds no sharing beyond that).
    pub fn has_params(&self) -> bool {
        !self.params.is_empty()
    }
}

/// Canonicalize SQL text without extracting anything: lex and re-render,
/// so whitespace/comment variants (and client-written templates) key the
/// plan cache identically to the templates [`normalize`] produces.
/// Returns `None` when the text does not lex.
pub fn canonicalize(sql: &str) -> Option<String> {
    Some(render(&lex(sql).ok()?))
}

/// Normalize `sql` into a parameterized template plus its constants.
/// Returns `None` when the text does not lex — the caller then falls
/// back to the exact-text path and lets preparation report the error —
/// or when it already contains `?` placeholders: mixing caller-supplied
/// placeholders with extracted constants would scramble positional
/// indices, so such text is served as written (placeholder-bearing SQL
/// belongs on the `QueryParams` path, which carries the values).
pub fn normalize(sql: &str) -> Option<NormalizedQuery> {
    let tokens = lex(sql).ok()?;
    if tokens.contains(&Token::Placeholder) {
        return None;
    }
    let mut out: Vec<Token> = Vec::with_capacity(tokens.len());
    let mut params = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        // Structural regions: copy verbatim, extracting nothing.
        if tok.is_kw("declare") {
            i = copy_declare(&tokens, i, &mut out);
            continue;
        }
        if tok.is_kw("model")
            && matches!(tokens.get(i + 1), Some(Token::Eq))
            && matches!(tokens.get(i + 2), Some(Token::Str(_)))
        {
            out.extend_from_slice(&tokens[i..i + 3]);
            i += 3;
            continue;
        }
        if tok.is_kw("limit") {
            out.push(tok.clone());
            if let Some(n @ Token::Int(_)) = tokens.get(i + 1) {
                out.push(n.clone());
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        // A minus is a sign (not subtraction) unless the previous token
        // can end an operand; fold it into the captured value.
        if *tok == Token::Minus && !ends_operand(out.last()) {
            match tokens.get(i + 1) {
                Some(Token::Int(v)) => {
                    out.push(Token::Placeholder);
                    params.push(Value::Int64(-v));
                    i += 2;
                    continue;
                }
                Some(Token::Float(v)) => {
                    out.push(Token::Placeholder);
                    params.push(Value::Float64(-v));
                    i += 2;
                    continue;
                }
                _ => {}
            }
        }
        match tok {
            Token::Int(v) => {
                out.push(Token::Placeholder);
                params.push(Value::Int64(*v));
            }
            Token::Float(v) => {
                out.push(Token::Placeholder);
                params.push(Value::Float64(*v));
            }
            Token::Str(s) => {
                out.push(Token::Placeholder);
                params.push(Value::Utf8(s.clone()));
            }
            other => out.push(other.clone()),
        }
        i += 1;
    }
    Some(NormalizedQuery {
        template: render(&out),
        params,
    })
}

/// Copy a `DECLARE @var ... = <value>` region verbatim: everything up to
/// and including the assigned value (a string literal, or a parenthesized
/// subselect scanned to its matching close).
fn copy_declare(tokens: &[Token], mut i: usize, out: &mut Vec<Token>) -> usize {
    // DECLARE keyword + everything up to '='.
    while i < tokens.len() {
        let t = &tokens[i];
        out.push(t.clone());
        i += 1;
        if *t == Token::Eq {
            break;
        }
    }
    match tokens.get(i) {
        Some(t @ Token::Str(_)) => {
            out.push(t.clone());
            i + 1
        }
        Some(Token::LParen) => {
            let mut depth = 0usize;
            while i < tokens.len() {
                let t = &tokens[i];
                match t {
                    Token::LParen => depth += 1,
                    Token::RParen => depth -= 1,
                    _ => {}
                }
                out.push(t.clone());
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            i
        }
        _ => i,
    }
}

/// Can this token end an operand? If so, a following `-` is subtraction;
/// otherwise it is a sign.
fn ends_operand(prev: Option<&Token>) -> bool {
    match prev {
        Some(Token::Ident(word)) => !is_expression_keyword(word),
        Some(Token::Int(_) | Token::Float(_) | Token::Str(_) | Token::RParen) => true,
        _ => false,
    }
}

/// Keywords after which a minus must be a sign (`WHERE -5 < x`,
/// `AND x > -5`, …). Identifiers that are column names return false.
fn is_expression_keyword(word: &str) -> bool {
    [
        "select", "where", "and", "or", "not", "on", "when", "then", "else", "by", "all",
    ]
    .iter()
    .any(|k| word.eq_ignore_ascii_case(k))
}

/// Render tokens back to SQL text. `Token`'s `Display` re-escapes string
/// quotes, so the rendered template re-lexes to the same stream; a plain
/// space between every pair of tokens keeps rendering trivially correct
/// (the lexer is whitespace-insensitive).
fn render(tokens: &[Token]) -> String {
    let mut s = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 && needs_space(&tokens[i - 1], t) {
            s.push(' ');
        }
        s.push_str(&t.to_string());
    }
    s
}

/// Elide the space only where gluing tokens could merge them into one
/// (identifier-like next to identifier-like); everywhere else a space is
/// harmless and keeps this simple.
fn needs_space(prev: &Token, next: &Token) -> bool {
    !matches!(next, Token::Comma | Token::Semicolon | Token::Dot) && !matches!(prev, Token::Dot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(sql: &str) -> NormalizedQuery {
        normalize(sql).expect("lexes")
    }

    #[test]
    fn extracts_numeric_and_string_literals() {
        let n = norm("SELECT * FROM t WHERE age > 30 AND score <= 1.5 AND dest = 'JFK'");
        assert_eq!(
            n.params,
            vec![
                Value::Int64(30),
                Value::Float64(1.5),
                Value::Utf8("JFK".into())
            ]
        );
        assert_eq!(n.template.matches('?').count(), 3);
        assert!(!n.template.contains("30"));
        assert!(!n.template.contains("JFK"));
    }

    #[test]
    fn distinct_constants_share_a_template() {
        let a = norm("SELECT * FROM t WHERE age > 30");
        let b = norm("SELECT * FROM t WHERE age > 31");
        assert_eq!(a.template, b.template);
        assert_ne!(a.params, b.params);
    }

    #[test]
    fn whitespace_and_comments_canonicalize() {
        let a = norm("SELECT * FROM t WHERE age > 30");
        let b = norm("SELECT   * -- a comment\n FROM t \n WHERE age > 99");
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn model_names_and_declares_are_preserved() {
        let n = norm(
            "DECLARE @m varbinary(max) = (SELECT model FROM models WHERE name = 'stay'); \
             SELECT p.s FROM PREDICT(MODEL = @m, DATA = t AS d) WITH (s FLOAT) AS p \
             WHERE p.s > 7",
        );
        assert!(n.template.contains("'stay'"), "{}", n.template);
        assert_eq!(n.params, vec![Value::Int64(7)]);

        let n = norm(
            "SELECT p.s FROM PREDICT(MODEL = 'stay', DATA = t AS d) WITH (s FLOAT) AS p \
             WHERE p.s > 7",
        );
        assert!(n.template.contains("MODEL = 'stay'"), "{}", n.template);
        assert_eq!(n.params, vec![Value::Int64(7)]);
    }

    #[test]
    fn limit_stays_literal() {
        let n = norm("SELECT * FROM t WHERE x > 5 ORDER BY x DESC LIMIT 10");
        assert!(n.template.contains("LIMIT 10"), "{}", n.template);
        assert_eq!(n.params, vec![Value::Int64(5)]);
    }

    #[test]
    fn negative_literals_fold_their_sign() {
        let n = norm("SELECT * FROM t WHERE x > -5 AND y < -1.5");
        assert_eq!(n.params, vec![Value::Int64(-5), Value::Float64(-1.5)]);
        assert!(!n.template.contains('-'), "{}", n.template);
        // Subtraction between operands is NOT a sign.
        let n = norm("SELECT * FROM t WHERE x - 5 > y");
        assert_eq!(n.params, vec![Value::Int64(5)]);
        assert!(n.template.contains("x - ?"), "{}", n.template);
    }

    #[test]
    fn quotes_in_strings_survive_the_roundtrip() {
        let n = norm("DECLARE @m = 'it''s'; SELECT * FROM t WHERE x = 1");
        assert!(n.template.contains("'it''s'"), "{}", n.template);
        // The re-rendered template lexes back to the same stream.
        assert!(raven_sql::lexer::lex(&n.template).is_ok());
    }

    #[test]
    fn unlexable_input_returns_none() {
        assert!(normalize("SELECT # nope").is_none());
    }

    #[test]
    fn placeholder_bearing_input_is_not_renormalized() {
        // Extracting `5` here would collide with the caller's `?` over
        // positional indices — decline, so the caller serves it as-is.
        assert!(normalize("SELECT * FROM t WHERE a > ? AND b = 5").is_none());
        assert!(normalize("SELECT * FROM t WHERE a > ?").is_none());
        // But canonicalization still works on templates.
        assert_eq!(
            canonicalize("SELECT  *  FROM t   WHERE a > ?").unwrap(),
            canonicalize("SELECT * FROM t WHERE a > ?").unwrap()
        );
    }

    #[test]
    fn literal_free_queries_have_no_params() {
        let n = norm("SELECT a, b FROM t ORDER BY a");
        assert!(!n.has_params());
        assert_eq!(n.template, "SELECT a, b FROM t ORDER BY a");
    }
}
