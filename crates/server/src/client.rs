//! A blocking client for the framed-TCP protocol — the counterpart of
//! [`crate::net`], used by the examples, benches, and the integration
//! test harness.
//!
//! One client owns one connection and speaks the synchronous protocol:
//! write a request frame, read the response frame. Error frames come
//! back as the same typed [`ServerError`] the server produced —
//! `Overloaded`, `DeadlineExceeded`, `Sql`, … — so callers can branch on
//! overload vs. failure without string matching.

use crate::error::{Result, ServerError};
use crate::proto::{self, Request, Response, WireStats};
use raven_data::Table;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The reply to a successful [`RavenClient::query`].
#[derive(Debug, Clone)]
pub struct ClientQueryReply {
    /// The materialized result rows.
    pub table: Table,
    /// Whether the server served a cached plan.
    pub cache_hit: bool,
    /// Server-side end-to-end latency.
    pub server_time: Duration,
}

/// A blocking connection to a [`crate::net::RavenServer`], bound to one
/// tenant namespace ([`crate::tenant::DEFAULT_TENANT`] unless rebound
/// with [`RavenClient::for_tenant`]).
pub struct RavenClient {
    stream: TcpStream,
    tenant: String,
}

impl RavenClient {
    /// Connect to a serving endpoint (requests run in the default
    /// tenant).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RavenClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServerError::Network(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(RavenClient {
            stream,
            tenant: crate::tenant::DEFAULT_TENANT.to_string(),
        })
    }

    /// Rebind this connection to `tenant`: every subsequent request
    /// (prepare, query, score, stats) runs in that namespace. The tenant
    /// is created server-side on first use:
    ///
    /// ```no_run
    /// use raven_server::RavenClient;
    ///
    /// let mut client = RavenClient::connect("127.0.0.1:4741")?.for_tenant("team-a");
    /// let reply = client.query("SELECT * FROM patients")?; // team-a's `patients`
    /// # let _ = reply;
    /// # Ok::<(), raven_server::ServerError>(())
    /// ```
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// The tenant this connection's requests run in.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Bound how long any single reply may take (`None` = wait forever).
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ServerError::Network(e.to_string()))
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response> {
        proto::write_frame(&mut self.stream, &request.encode())?;
        let body = proto::read_frame(&mut self.stream)?;
        match Response::decode(&body)? {
            Response::Error { code, message } => Err(code.into_error(message)),
            response => Ok(response),
        }
    }

    /// Warm the server's plan cache for `sql` (in this client's tenant)
    /// without executing it. Returns `(cache_hit, server-side prepare
    /// time)`.
    pub fn prepare(&mut self, sql: &str) -> Result<(bool, Duration)> {
        let request = Request::Prepare {
            sql: sql.into(),
            tenant: self.tenant.clone(),
        };
        match self.roundtrip(&request)? {
            Response::Prepared {
                cache_hit,
                prepare_micros,
            } => Ok((cache_hit, Duration::from_micros(prepare_micros))),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute `sql` and fetch the full result table.
    pub fn query(&mut self, sql: &str) -> Result<ClientQueryReply> {
        self.query_with_deadline(sql, None)
    }

    /// Execute `sql` with a server-enforced deadline covering admission
    /// queueing and execution. Expiry returns
    /// [`ServerError::DeadlineExceeded`]; a saturated server returns
    /// [`ServerError::Overloaded`].
    pub fn query_with_deadline(
        &mut self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<ClientQueryReply> {
        let request = Request::Query {
            sql: sql.into(),
            tenant: self.tenant.clone(),
            deadline,
        };
        match self.roundtrip(&request)? {
            Response::Rows {
                cache_hit,
                total_micros,
                table,
            } => Ok(ClientQueryReply {
                table: unwrap_table(table),
                cache_hit,
                server_time: Duration::from_micros(total_micros),
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute a parameterized template (`?` placeholders) with
    /// positional argument values. The server prepares the template once
    /// and substitutes the values per request, so calling this in a loop
    /// with different constants pays parse → bind → optimize exactly
    /// once:
    ///
    /// ```no_run
    /// use raven_server::RavenClient;
    /// use raven_data::Value;
    ///
    /// let mut client = RavenClient::connect("127.0.0.1:4741")?;
    /// for age in [30, 40, 50] {
    ///     let reply = client.query_params(
    ///         "SELECT * FROM patients WHERE age > ?",
    ///         vec![Value::Int64(age)],
    ///         None,
    ///     )?;
    ///     println!("age > {age}: {} rows", reply.table.num_rows());
    /// }
    /// # Ok::<(), raven_server::ServerError>(())
    /// ```
    pub fn query_params(
        &mut self,
        template: &str,
        params: Vec<raven_data::Value>,
        deadline: Option<Duration>,
    ) -> Result<ClientQueryReply> {
        let request = Request::QueryParams {
            template: template.into(),
            tenant: self.tenant.clone(),
            params,
            deadline,
        };
        match self.roundtrip(&request)? {
            Response::Rows {
                cache_hit,
                total_micros,
                table,
            } => Ok(ClientQueryReply {
                table: unwrap_table(table),
                cache_hit,
                server_time: Duration::from_micros(total_micros),
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Score one raw feature row through this tenant's micro-batcher.
    pub fn score(&mut self, model: &str, row: Vec<f64>) -> Result<f64> {
        let request = Request::Score {
            model: model.into(),
            tenant: self.tenant.clone(),
            row,
        };
        match self.roundtrip(&request)? {
            Response::Score { value } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch this tenant's observability counters — including the
    /// result-cache triple (`result_hits` / `result_misses` /
    /// `result_invalidations`; see [`WireStats::result_hit_rate`]) that
    /// says how much of the repeat traffic skipped execution entirely,
    /// and (protocol v4) the tenant's recent latency percentiles.
    pub fn stats(&mut self) -> Result<WireStats> {
        let tenant = self.tenant.clone();
        self.stats_for(&tenant)
    }

    /// Fetch another tenant's counters without rebinding the connection
    /// (a server observing its tenants from one socket). A tenant that
    /// does not exist yet reports zeros — observing never creates.
    pub fn stats_for(&mut self, tenant: &str) -> Result<WireStats> {
        let request = Request::Stats {
            tenant: tenant.into(),
        };
        match self.roundtrip(&request)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the cross-tenant aggregate counters (sums across every
    /// tenant; latency percentiles over the merged windows).
    pub fn stats_aggregate(&mut self) -> Result<WireStats> {
        self.stats_for("")
    }

    /// Fetch this tenant's unified metrics as Prometheus-style text
    /// exposition — every series prefixed `raven_` and labeled with the
    /// tenant. Protocol v5.
    pub fn metrics(&mut self) -> Result<String> {
        let tenant = self.tenant.clone();
        self.metrics_for(&tenant)
    }

    /// Fetch another tenant's metrics without rebinding the connection.
    /// A tenant that does not exist yet reports an empty exposition —
    /// observing never creates.
    pub fn metrics_for(&mut self, tenant: &str) -> Result<String> {
        let request = Request::Metrics {
            tenant: tenant.into(),
        };
        match self.roundtrip(&request)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the exactly-merged cross-tenant aggregate metrics (counters
    /// and histogram buckets summed; no tenant label).
    pub fn metrics_aggregate(&mut self) -> Result<String> {
        self.metrics_for("")
    }

    /// Fetch up to `limit` most recent slow-query traces for this
    /// tenant, newest first. Sampled slow requests carry a full span
    /// tree (per-stage latency breakdown, [`raven_obs::Trace::render`]);
    /// unsampled ones are captured spanless. Protocol v5.
    pub fn slow_queries(&mut self, limit: u32) -> Result<Vec<raven_obs::Trace>> {
        let tenant = self.tenant.clone();
        self.slow_queries_for(&tenant, limit)
    }

    /// Fetch slow-query traces for another tenant — or, with `tenant`
    /// empty, every tenant's interleaved in capture order.
    pub fn slow_queries_for(&mut self, tenant: &str, limit: u32) -> Result<Vec<raven_obs::Trace>> {
        let request = Request::Traces {
            tenant: tenant.into(),
            limit,
        };
        match self.roundtrip(&request)? {
            Response::Traces { traces } => Ok(traces),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down; returns once it acknowledges.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A freshly decoded response table has exactly one owner, so this is a
/// move, not a copy; the fallback clone only runs if that ever changes.
fn unwrap_table(table: std::sync::Arc<Table>) -> Table {
    std::sync::Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone())
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::Protocol(format!("unexpected response frame: {response:?}"))
}
