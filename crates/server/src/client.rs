//! Blocking clients for the framed-TCP protocol — the counterpart of
//! [`crate::net`], used by the examples, benches, and the integration
//! test harness.
//!
//! [`RavenClient`] is the serial client: write a request frame, read its
//! reply. Against a v6 server a query reply usually arrives as a stream
//! of bounded [`Response::RowsChunk`] frames closed by a
//! [`Response::RowsEnd`]; the client reassembles them into one table and
//! checks the row count against the trailer, so callers see exactly the
//! `Table` a monolithic `Rows` frame would have carried. Pin an older
//! protocol version with [`RavenClient::at_version`] to get the
//! historical single-frame exchange (compat tests use this as the
//! oracle).
//!
//! [`PipelinedClient`] keeps up to the server's per-connection budget of
//! requests in flight at once, matching out-of-order replies to requests
//! by the v6 header id — the client half of the pipelined protocol.
//!
//! Error frames come back as the same typed [`ServerError`] the server
//! produced — `Overloaded`, `DeadlineExceeded`, `Sql`, … — so callers
//! can branch on overload vs. failure without string matching.

use crate::error::{Result, ServerError};
use crate::proto::{self, Request, Response, WireStats};
use raven_data::Table;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The reply to a successful [`RavenClient::query`].
#[derive(Debug, Clone)]
pub struct ClientQueryReply {
    /// The materialized result rows (reassembled when streamed).
    pub table: Table,
    /// Whether the server served a cached plan.
    pub cache_hit: bool,
    /// Server-side end-to-end latency.
    pub server_time: Duration,
    /// `RowsChunk` frames the result arrived in; `0` for a monolithic
    /// pre-v6 `Rows` reply.
    pub chunks: usize,
}

/// A blocking connection to a [`crate::net::RavenServer`], bound to one
/// tenant namespace ([`crate::tenant::DEFAULT_TENANT`] unless rebound
/// with [`RavenClient::for_tenant`]).
pub struct RavenClient {
    stream: TcpStream,
    tenant: String,
    version: u8,
}

impl RavenClient {
    /// Connect to a serving endpoint (requests run in the default
    /// tenant, at the current protocol version).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RavenClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServerError::Network(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(RavenClient {
            stream,
            tenant: crate::tenant::DEFAULT_TENANT.to_string(),
            version: proto::PROTOCOL_VERSION,
        })
    }

    /// Rebind this connection to `tenant`: every subsequent request
    /// (prepare, query, score, stats) runs in that namespace. The tenant
    /// is created server-side on first use:
    ///
    /// ```no_run
    /// use raven_server::RavenClient;
    ///
    /// let mut client = RavenClient::connect("127.0.0.1:4741")?.for_tenant("team-a");
    /// let reply = client.query("SELECT * FROM patients")?; // team-a's `patients`
    /// # let _ = reply;
    /// # Ok::<(), raven_server::ServerError>(())
    /// ```
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Speak an older protocol version on this connection (clamped to
    /// the supported `3..=6` range). A pre-v6 client gets pre-v6
    /// behavior end to end: no request ids, monolithic `Rows` replies,
    /// one frame in flight — the oracle configuration for the
    /// differential and compat suites.
    pub fn at_version(mut self, version: u8) -> Self {
        self.version = version.clamp(proto::MIN_PROTOCOL_VERSION, proto::PROTOCOL_VERSION);
        self
    }

    /// The protocol version this connection speaks.
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The tenant this connection's requests run in.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Bound how long any single reply may take (`None` = wait forever).
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ServerError::Network(e.to_string()))
    }

    fn read_reply(&mut self) -> Result<(Response, u32)> {
        let body = proto::read_frame(&mut self.stream)?;
        let (response, _version, request_id) = Response::decode_framed(&body)?;
        Ok((response, request_id))
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response> {
        proto::write_frame(
            &mut self.stream,
            &request.encode_for_version(self.version, 0),
        )?;
        match self.read_reply()?.0 {
            Response::Error { code, message } => Err(code.into_error(message)),
            response => Ok(response),
        }
    }

    /// Send a query-shaped request and collect its (possibly streamed)
    /// reply into one [`ClientQueryReply`].
    fn query_roundtrip(&mut self, request: &Request) -> Result<ClientQueryReply> {
        proto::write_frame(
            &mut self.stream,
            &request.encode_for_version(self.version, 0),
        )?;
        let mut parts: Vec<Table> = Vec::new();
        loop {
            match self.read_reply()?.0 {
                Response::Rows {
                    cache_hit,
                    total_micros,
                    table,
                } => {
                    // Pre-v6 monolithic reply (or a v6 server answering
                    // a pinned older client) — nothing to reassemble.
                    return Ok(ClientQueryReply {
                        table: unwrap_table(table),
                        cache_hit,
                        server_time: Duration::from_micros(total_micros),
                        chunks: 0,
                    });
                }
                Response::RowsChunk { table } => parts.push(unwrap_table(table)),
                Response::RowsEnd {
                    cache_hit,
                    total_micros,
                    total_rows,
                } => return assemble(parts, cache_hit, total_micros, total_rows),
                Response::Error { code, message } => return Err(code.into_error(message)),
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Warm the server's plan cache for `sql` (in this client's tenant)
    /// without executing it. Returns `(cache_hit, server-side prepare
    /// time)`.
    pub fn prepare(&mut self, sql: &str) -> Result<(bool, Duration)> {
        let request = Request::Prepare {
            sql: sql.into(),
            tenant: self.tenant.clone(),
        };
        match self.roundtrip(&request)? {
            Response::Prepared {
                cache_hit,
                prepare_micros,
            } => Ok((cache_hit, Duration::from_micros(prepare_micros))),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute `sql` and fetch the full result table.
    pub fn query(&mut self, sql: &str) -> Result<ClientQueryReply> {
        self.query_with_deadline(sql, None)
    }

    /// Execute `sql` with a server-enforced deadline covering admission
    /// queueing, execution, and (v6) result streaming. Expiry returns
    /// [`ServerError::DeadlineExceeded`]; a saturated server returns
    /// [`ServerError::Overloaded`].
    pub fn query_with_deadline(
        &mut self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<ClientQueryReply> {
        let request = Request::Query {
            sql: sql.into(),
            tenant: self.tenant.clone(),
            deadline,
        };
        self.query_roundtrip(&request)
    }

    /// Execute a parameterized template (`?` placeholders) with
    /// positional argument values. The server prepares the template once
    /// and substitutes the values per request, so calling this in a loop
    /// with different constants pays parse → bind → optimize exactly
    /// once:
    ///
    /// ```no_run
    /// use raven_server::RavenClient;
    /// use raven_data::Value;
    ///
    /// let mut client = RavenClient::connect("127.0.0.1:4741")?;
    /// for age in [30, 40, 50] {
    ///     let reply = client.query_params(
    ///         "SELECT * FROM patients WHERE age > ?",
    ///         vec![Value::Int64(age)],
    ///         None,
    ///     )?;
    ///     println!("age > {age}: {} rows", reply.table.num_rows());
    /// }
    /// # Ok::<(), raven_server::ServerError>(())
    /// ```
    pub fn query_params(
        &mut self,
        template: &str,
        params: Vec<raven_data::Value>,
        deadline: Option<Duration>,
    ) -> Result<ClientQueryReply> {
        let request = Request::QueryParams {
            template: template.into(),
            tenant: self.tenant.clone(),
            params,
            deadline,
        };
        self.query_roundtrip(&request)
    }

    /// Score one raw feature row through this tenant's micro-batcher.
    pub fn score(&mut self, model: &str, row: Vec<f64>) -> Result<f64> {
        let request = Request::Score {
            model: model.into(),
            tenant: self.tenant.clone(),
            row,
        };
        match self.roundtrip(&request)? {
            Response::Score { value } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch this tenant's observability counters — including the
    /// result-cache triple (`result_hits` / `result_misses` /
    /// `result_invalidations`; see [`WireStats::result_hit_rate`]) that
    /// says how much of the repeat traffic skipped execution entirely,
    /// and (protocol v4) the tenant's recent latency percentiles.
    pub fn stats(&mut self) -> Result<WireStats> {
        let tenant = self.tenant.clone();
        self.stats_for(&tenant)
    }

    /// Fetch another tenant's counters without rebinding the connection
    /// (a server observing its tenants from one socket). A tenant that
    /// does not exist yet reports zeros — observing never creates.
    pub fn stats_for(&mut self, tenant: &str) -> Result<WireStats> {
        let request = Request::Stats {
            tenant: tenant.into(),
        };
        match self.roundtrip(&request)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the cross-tenant aggregate counters (sums across every
    /// tenant; latency percentiles over the merged windows).
    pub fn stats_aggregate(&mut self) -> Result<WireStats> {
        self.stats_for("")
    }

    /// Fetch this tenant's unified metrics as Prometheus-style text
    /// exposition — every series prefixed `raven_` and labeled with the
    /// tenant. Protocol v5.
    pub fn metrics(&mut self) -> Result<String> {
        let tenant = self.tenant.clone();
        self.metrics_for(&tenant)
    }

    /// Fetch another tenant's metrics without rebinding the connection.
    /// A tenant that does not exist yet reports an empty exposition —
    /// observing never creates.
    pub fn metrics_for(&mut self, tenant: &str) -> Result<String> {
        let request = Request::Metrics {
            tenant: tenant.into(),
        };
        match self.roundtrip(&request)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the exactly-merged cross-tenant aggregate metrics (counters
    /// and histogram buckets summed; no tenant label).
    pub fn metrics_aggregate(&mut self) -> Result<String> {
        self.metrics_for("")
    }

    /// Fetch up to `limit` most recent slow-query traces for this
    /// tenant, newest first. Sampled slow requests carry a full span
    /// tree (per-stage latency breakdown, [`raven_obs::Trace::render`]);
    /// unsampled ones are captured spanless. Protocol v5.
    pub fn slow_queries(&mut self, limit: u32) -> Result<Vec<raven_obs::Trace>> {
        let tenant = self.tenant.clone();
        self.slow_queries_for(&tenant, limit)
    }

    /// Fetch slow-query traces for another tenant — or, with `tenant`
    /// empty, every tenant's interleaved in capture order.
    pub fn slow_queries_for(&mut self, tenant: &str, limit: u32) -> Result<Vec<raven_obs::Trace>> {
        let request = Request::Traces {
            tenant: tenant.into(),
            limit,
        };
        match self.roundtrip(&request)? {
            Response::Traces { traces } => Ok(traces),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down; returns once it acknowledges.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A pipelined v6 connection: submit up to the server's per-connection
/// in-flight budget of queries without waiting, then receive replies as
/// they complete — in whatever order the server finishes them, matched
/// by request id.
///
/// ```no_run
/// use raven_server::PipelinedClient;
///
/// let mut client = PipelinedClient::connect("127.0.0.1:4741")?;
/// let a = client.submit("SELECT * FROM patients", None)?;
/// let b = client.submit("SELECT * FROM visits", None)?;
/// while client.in_flight() > 0 {
///     let (id, reply) = client.recv()?;
///     let rows = reply?.table.num_rows();
///     println!("{} done: {rows} rows", if id == a { "patients" } else { "visits" });
/// }
/// # let _ = b;
/// # Ok::<(), raven_server::ServerError>(())
/// ```
pub struct PipelinedClient {
    /// Reply side: buffered, so one `read(2)` can drain many frames —
    /// a full in-flight window's replies usually cost a syscall or two.
    reader: BufReader<TcpStream>,
    /// Request side (same socket, second handle).
    writer: TcpStream,
    /// Encoded frames submitted but not yet written to the socket.
    /// Flushed in one write when a reply is awaited (or on [`Self::flush`]),
    /// so a burst of submits costs one syscall, not one per request.
    pending: Vec<u8>,
    tenant: String,
    next_id: u32,
    /// Ids submitted and not yet fully answered.
    outstanding: usize,
    /// Chunks received so far for streams still missing their `RowsEnd`.
    partial: HashMap<u32, Vec<Table>>,
}

impl PipelinedClient {
    /// Connect a pipelined connection (default tenant).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<PipelinedClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServerError::Network(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| ServerError::Network(format!("clone socket: {e}")))?;
        Ok(PipelinedClient {
            reader: BufReader::with_capacity(256 * 1024, reader),
            writer: stream,
            pending: Vec::new(),
            tenant: crate::tenant::DEFAULT_TENANT.to_string(),
            next_id: 0,
            outstanding: 0,
            partial: HashMap::new(),
        })
    }

    /// Rebind this connection to `tenant`.
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Requests submitted whose replies have not yet been received.
    pub fn in_flight(&self) -> usize {
        self.outstanding
    }

    /// Bound how long any single [`PipelinedClient::recv`] may block
    /// (`None` = wait forever).
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| ServerError::Network(e.to_string()))
    }

    /// Submit `sql` without waiting for the reply; returns the request
    /// id its reply will carry.
    pub fn submit(&mut self, sql: &str, deadline: Option<Duration>) -> Result<u32> {
        let request = Request::Query {
            sql: sql.into(),
            tenant: self.tenant.clone(),
            deadline,
        };
        self.send(&request)
    }

    /// Submit a parameterized template without waiting for the reply.
    pub fn submit_params(
        &mut self,
        template: &str,
        params: Vec<raven_data::Value>,
        deadline: Option<Duration>,
    ) -> Result<u32> {
        let request = Request::QueryParams {
            template: template.into(),
            tenant: self.tenant.clone(),
            params,
            deadline,
        };
        self.send(&request)
    }

    fn send(&mut self, request: &Request) -> Result<u32> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.pending
            .extend_from_slice(&request.encode_for_version(proto::PROTOCOL_VERSION, id));
        self.outstanding += 1;
        Ok(id)
    }

    /// Write every buffered submit to the socket. [`Self::recv`] calls
    /// this automatically; call it directly to push requests out while
    /// deliberately not reading replies yet.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.writer
            .write_all(&self.pending)
            .and_then(|_| self.writer.flush())
            .map_err(|e| ServerError::Network(format!("flush submits: {e}")))?;
        self.pending.clear();
        Ok(())
    }

    /// Block until the next request finishes, in server completion
    /// order. The outer `Err` is a transport or framing failure (the
    /// connection is no longer usable); the inner per-request `Result`
    /// carries the same typed [`ServerError`]s the serial client
    /// returns.
    pub fn recv(&mut self) -> Result<(u32, Result<ClientQueryReply>)> {
        self.flush()?;
        loop {
            let body = proto::read_frame(&mut self.reader)?;
            let (response, _version, id) = Response::decode_framed(&body)?;
            match response {
                Response::RowsChunk { table } => {
                    self.partial
                        .entry(id)
                        .or_default()
                        .push(unwrap_table(table));
                }
                Response::RowsEnd {
                    cache_hit,
                    total_micros,
                    total_rows,
                } => {
                    let parts = self.partial.remove(&id).unwrap_or_default();
                    self.outstanding = self.outstanding.saturating_sub(1);
                    return Ok((id, assemble(parts, cache_hit, total_micros, total_rows)));
                }
                Response::Error { code, message } => {
                    // A mid-stream error (deadline expiry, shutdown)
                    // aborts the stream: drop any chunks received.
                    self.partial.remove(&id);
                    self.outstanding = self.outstanding.saturating_sub(1);
                    return Ok((id, Err(code.into_error(message))));
                }
                other => {
                    self.outstanding = self.outstanding.saturating_sub(1);
                    return Ok((id, Err(unexpected(&other))));
                }
            }
        }
    }

    /// Receive every outstanding reply, returned sorted by request id.
    pub fn drain(&mut self) -> Result<Vec<(u32, Result<ClientQueryReply>)>> {
        let mut replies = Vec::with_capacity(self.outstanding);
        while self.outstanding > 0 {
            replies.push(self.recv()?);
        }
        replies.sort_by_key(|(id, _)| *id);
        Ok(replies)
    }
}

/// Reassemble a chunk stream and validate it against the trailer.
fn assemble(
    parts: Vec<Table>,
    cache_hit: bool,
    total_micros: u64,
    total_rows: u64,
) -> Result<ClientQueryReply> {
    let chunks = parts.len();
    if chunks == 0 {
        return Err(ServerError::Protocol(
            "RowsEnd without any RowsChunk (a streamed result always has \
             at least the schema-bearing first chunk)"
                .into(),
        ));
    }
    let mut parts = parts;
    let table = if chunks == 1 {
        // Single-chunk results (the common case for point queries) skip
        // the concat copy entirely.
        parts.pop().unwrap()
    } else {
        Table::concat(&parts)
            .map_err(|e| ServerError::Protocol(format!("chunk reassembly failed: {e}")))?
    };
    if table.num_rows() as u64 != total_rows {
        return Err(ServerError::Protocol(format!(
            "chunked result carried {} rows but the trailer promised {total_rows}",
            table.num_rows()
        )));
    }
    Ok(ClientQueryReply {
        table,
        cache_hit,
        server_time: Duration::from_micros(total_micros),
        chunks,
    })
}

/// A freshly decoded response table has exactly one owner, so this is a
/// move, not a copy; the fallback clone only runs if that ever changes.
/// Streamed results never hit the fallback: each chunk decodes into its
/// own table and [`Table::concat`] builds a fresh single-owner result,
/// which is what makes shared (result-cache) tables safe to stream.
fn unwrap_table(table: std::sync::Arc<Table>) -> Table {
    std::sync::Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone())
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::Protocol(format!("unexpected response frame: {response:?}"))
}
