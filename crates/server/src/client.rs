//! A blocking client for the framed-TCP protocol — the counterpart of
//! [`crate::net`], used by the examples, benches, and the integration
//! test harness.
//!
//! One client owns one connection and speaks the synchronous protocol:
//! write a request frame, read the response frame. Error frames come
//! back as the same typed [`ServerError`] the server produced —
//! `Overloaded`, `DeadlineExceeded`, `Sql`, … — so callers can branch on
//! overload vs. failure without string matching.

use crate::error::{Result, ServerError};
use crate::proto::{self, Request, Response, WireStats};
use raven_data::Table;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The reply to a successful [`RavenClient::query`].
#[derive(Debug, Clone)]
pub struct ClientQueryReply {
    /// The materialized result rows.
    pub table: Table,
    /// Whether the server served a cached plan.
    pub cache_hit: bool,
    /// Server-side end-to-end latency.
    pub server_time: Duration,
}

/// A blocking connection to a [`crate::net::RavenServer`].
pub struct RavenClient {
    stream: TcpStream,
}

impl RavenClient {
    /// Connect to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RavenClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServerError::Network(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(RavenClient { stream })
    }

    /// Bound how long any single reply may take (`None` = wait forever).
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| ServerError::Network(e.to_string()))
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response> {
        proto::write_frame(&mut self.stream, &request.encode())?;
        let body = proto::read_frame(&mut self.stream)?;
        match Response::decode(&body)? {
            Response::Error { code, message } => Err(code.into_error(message)),
            response => Ok(response),
        }
    }

    /// Warm the server's plan cache for `sql` without executing it.
    /// Returns `(cache_hit, server-side prepare time)`.
    pub fn prepare(&mut self, sql: &str) -> Result<(bool, Duration)> {
        match self.roundtrip(&Request::Prepare { sql: sql.into() })? {
            Response::Prepared {
                cache_hit,
                prepare_micros,
            } => Ok((cache_hit, Duration::from_micros(prepare_micros))),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute `sql` and fetch the full result table.
    pub fn query(&mut self, sql: &str) -> Result<ClientQueryReply> {
        self.query_with_deadline(sql, None)
    }

    /// Execute `sql` with a server-enforced deadline covering admission
    /// queueing and execution. Expiry returns
    /// [`ServerError::DeadlineExceeded`]; a saturated server returns
    /// [`ServerError::Overloaded`].
    pub fn query_with_deadline(
        &mut self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<ClientQueryReply> {
        let request = Request::Query {
            sql: sql.into(),
            deadline,
        };
        match self.roundtrip(&request)? {
            Response::Rows {
                cache_hit,
                total_micros,
                table,
            } => Ok(ClientQueryReply {
                table: unwrap_table(table),
                cache_hit,
                server_time: Duration::from_micros(total_micros),
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute a parameterized template (`?` placeholders) with
    /// positional argument values. The server prepares the template once
    /// and substitutes the values per request, so calling this in a loop
    /// with different constants pays parse → bind → optimize exactly
    /// once:
    ///
    /// ```no_run
    /// use raven_server::RavenClient;
    /// use raven_data::Value;
    ///
    /// let mut client = RavenClient::connect("127.0.0.1:4741")?;
    /// for age in [30, 40, 50] {
    ///     let reply = client.query_params(
    ///         "SELECT * FROM patients WHERE age > ?",
    ///         vec![Value::Int64(age)],
    ///         None,
    ///     )?;
    ///     println!("age > {age}: {} rows", reply.table.num_rows());
    /// }
    /// # Ok::<(), raven_server::ServerError>(())
    /// ```
    pub fn query_params(
        &mut self,
        template: &str,
        params: Vec<raven_data::Value>,
        deadline: Option<Duration>,
    ) -> Result<ClientQueryReply> {
        let request = Request::QueryParams {
            template: template.into(),
            params,
            deadline,
        };
        match self.roundtrip(&request)? {
            Response::Rows {
                cache_hit,
                total_micros,
                table,
            } => Ok(ClientQueryReply {
                table: unwrap_table(table),
                cache_hit,
                server_time: Duration::from_micros(total_micros),
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Score one raw feature row through the server's micro-batcher.
    pub fn score(&mut self, model: &str, row: Vec<f64>) -> Result<f64> {
        let request = Request::Score {
            model: model.into(),
            row,
        };
        match self.roundtrip(&request)? {
            Response::Score { value } => Ok(value),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's observability counters — including the
    /// result-cache triple (`result_hits` / `result_misses` /
    /// `result_invalidations`; see [`WireStats::result_hit_rate`]) that
    /// says how much of the repeat traffic skipped execution entirely.
    pub fn stats(&mut self) -> Result<WireStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down; returns once it acknowledges.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A freshly decoded response table has exactly one owner, so this is a
/// move, not a copy; the fallback clone only runs if that ever changes.
fn unwrap_table(table: std::sync::Arc<Table>) -> Table {
    std::sync::Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone())
}

fn unexpected(response: &Response) -> ServerError {
    ServerError::Protocol(format!("unexpected response frame: {response:?}"))
}
