//! The framed wire protocol spoken by [`crate::net`] and
//! [`crate::client`].
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! v3–v5: [len: u32 LE] [version: u8] [kind: u8] [payload]
//! v6:    [len: u32 LE] [version: u8] [kind: u8] [request_id: u32 LE] [payload]
//! ```
//!
//! `len` counts everything after itself (version + kind + request id +
//! payload) and is capped at [`MAX_FRAME_LEN`]; a peer announcing more
//! is rejected before any allocation happens. `version` is
//! [`PROTOCOL_VERSION`] or any still-supported earlier version
//! (≥ [`MIN_PROTOCOL_VERSION`]); anything else produces a typed error,
//! never a misparse.
//!
//! Version 6 added **pipelining**: the `request_id` names which request
//! a reply answers, so a client may keep many requests in flight on one
//! connection and the server may answer them out of order. Pre-v6
//! frames carry no id (decoded as id `0`) and implicitly promise
//! one-in-flight, in-order service — which the server preserves for
//! them. Ids are chosen by the client; the only rule is that an id may
//! not be reused while still in flight on its connection (the server
//! answers a duplicate with a typed `Protocol` error).
//!
//! # Frame kinds and payload layout (version 6)
//!
//! Request kinds live below `0x80`, response kinds at or above it, and
//! `0xEE` is the error frame. All integers are little-endian; `f64`s are
//! IEEE bit patterns; a *string* is `u32` length + UTF-8 bytes; a
//! *value* is a [`DataType`] tag byte (`0` Int64, `1` Float64, `2` Bool,
//! `3` Utf8) followed by its payload; a *deadline* is `u64` microseconds
//! with `0` meaning none; a *tenant* is a string naming the namespace
//! the request runs in.
//!
//! | kind | frame | payload layout |
//! |------|-------|----------------|
//! | `0x01` | [`Request::Prepare`] | sql: string · tenant |
//! | `0x02` | [`Request::Query`] | sql: string · tenant · deadline |
//! | `0x03` | [`Request::Score`] | model: string · tenant · row: `u32` count + `f64`s |
//! | `0x04` | [`Request::Stats`] | tenant (empty = aggregate across tenants) |
//! | `0x05` | [`Request::Shutdown`] | *(empty)* |
//! | `0x06` | [`Request::QueryParams`] | template: string · tenant · params: `u32` count + values · deadline |
//! | `0x07` | [`Request::Metrics`] | tenant (empty = aggregate across tenants) |
//! | `0x08` | [`Request::Traces`] | tenant (empty = aggregate) · limit: `u32` |
//! | `0x81` | [`Response::Prepared`] | cache_hit: `u8` · prepare_micros: `u64` |
//! | `0x82` | [`Response::Rows`] | cache_hit: `u8` · total_micros: `u64` · table |
//! | `0x83` | [`Response::Score`] | value: `f64` |
//! | `0x84` | [`Response::Stats`] | the [`WireStats`] counters, each `u64`, in declaration order |
//! | `0x85` | [`Response::ShutdownAck`] | *(empty)* |
//! | `0x86` | [`Response::Metrics`] | text: string (Prometheus-style exposition) |
//! | `0x87` | [`Response::Traces`] | `u32` count, then per trace (see below) |
//! | `0x88` | [`Response::RowsChunk`] | table (one bounded slice of the result; v6+) |
//! | `0x89` | [`Response::RowsEnd`] | cache_hit: `u8` · total_micros: `u64` · total_rows: `u64` (v6+) |
//! | `0xEE` | [`Response::Error`] | code: `u16` [`ErrorCode`] · message: string |
//!
//! A *trace* in a `Traces` reply is: tenant: string · sql: string ·
//! seq: `u64` · total_us: `u64` · slow: `u8` · `u32` span count, then
//! per span: name: string · parent: `u32` (`u32::MAX` marks a root) ·
//! start_us: `u64` · duration_us: `u64`.
//!
//! # Version 3 / 4 / 5 compatibility
//!
//! Version 3 frames (pre-tenancy) carry no tenant field anywhere: the
//! decoder accepts them and maps every request to the
//! [`crate::tenant::DEFAULT_TENANT`] namespace (including `Stats`, which
//! in a v3 world *was* the whole server). The v3 `Stats` reply also
//! lacks the trailing latency-percentile counters. Version 4 peers
//! predate the observability frames: `Metrics` (0x07) and `Traces`
//! (0x08) requests are rejected as [`ProtoError::BadKind`] below
//! version 5 — same as any unknown kind — so older decoders never face
//! a payload they cannot parse. Version 5 peers predate pipelining:
//! their frames carry no request id, and the streaming reply kinds
//! `RowsChunk` (0x88) / `RowsEnd` (0x89) are likewise
//! [`ProtoError::BadKind`] below version 6 — a ≤v5 peer always gets its
//! result as one monolithic `Rows` frame. The server replies with the
//! version the request arrived in, so a v3/v4/v5 client round-trips
//! its own bytes end to end. Encoding always emits
//! [`PROTOCOL_VERSION`] unless an explicit version is passed
//! ([`Response::encode_for_version`], [`Request::encode_for_version`]).
//!
//! Result tables ship column-major: `u32` row count, `u32` column count,
//! then per column its name, a [`DataType`] tag, and the values. Decoding
//! is total — truncated, oversized, or garbage frames return
//! [`ProtoError`]s, they never panic — and strict: trailing bytes after
//! a well-formed payload are an error, not ignored.
//!
//! # Example: a request round-trip, byte-exact
//!
//! ```
//! use raven_server::proto::{read_frame, Request, PROTOCOL_VERSION};
//! use raven_data::Value;
//! use std::io::Cursor;
//!
//! let request = Request::QueryParams {
//!     template: "SELECT a FROM t WHERE a > ?".into(),
//!     tenant: "default".into(),
//!     params: vec![Value::Int64(30)],
//!     deadline: None,
//! };
//! let wire = request.encode();
//! assert_eq!(wire[4], PROTOCOL_VERSION);
//! assert_eq!(wire[5], 0x06);
//! let body = read_frame(&mut Cursor::new(&wire)).unwrap();
//! assert_eq!(Request::decode(&body).unwrap(), request);
//! ```

use crate::error::ServerError;
use raven_data::{Column, DataType, Field, Schema, Table, Value};
use raven_obs::{Span, Trace};
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Wire protocol version carried in every frame. Version 2 added the
/// `QueryParams` request frame (0x06) and the template counters in the
/// `Stats` reply; version 3 added the result-cache counters
/// (`result_hits` / `result_misses` / `result_invalidations`) to the
/// `Stats` reply; version 4 added the *tenant* field to
/// `Prepare`/`Query`/`QueryParams`/`Score`/`Stats` requests and the
/// latency-percentile counters to the `Stats` reply; version 5 added
/// the observability frames — `Metrics` (0x07) and `Traces` (0x08)
/// requests with their `0x86`/`0x87` replies; version 6 added the
/// `request_id` header field (pipelining with out-of-order replies)
/// and the streamed-result frames `RowsChunk` (0x88) / `RowsEnd`
/// (0x89).
pub const PROTOCOL_VERSION: u8 = 6;

/// Oldest version still decoded. Version-3 peers predate tenancy and
/// are served in the default tenant; see the module docs.
pub const MIN_PROTOCOL_VERSION: u8 = 3;

/// Upper bound on `len` (version + kind + payload), rejected before
/// allocation. Large enough for multi-million-row result tables, small
/// enough that a garbage length prefix cannot OOM the server.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

// Request frame kinds (< 0x80).
const KIND_PREPARE: u8 = 0x01;
const KIND_QUERY: u8 = 0x02;
const KIND_SCORE: u8 = 0x03;
const KIND_STATS: u8 = 0x04;
const KIND_SHUTDOWN: u8 = 0x05;
const KIND_QUERY_PARAMS: u8 = 0x06;
const KIND_METRICS: u8 = 0x07;
const KIND_TRACES: u8 = 0x08;

// Response frame kinds (>= 0x80).
const KIND_PREPARED: u8 = 0x81;
const KIND_ROWS: u8 = 0x82;
const KIND_SCORED: u8 = 0x83;
const KIND_STATS_REPLY: u8 = 0x84;
const KIND_SHUTDOWN_ACK: u8 = 0x85;
const KIND_METRICS_REPLY: u8 = 0x86;
const KIND_TRACES_REPLY: u8 = 0x87;
const KIND_ROWS_CHUNK: u8 = 0x88;
const KIND_ROWS_END: u8 = 0x89;
const KIND_ERROR: u8 = 0xEE;

/// `parent` sentinel in a wire-encoded span: this span is a root stage.
const SPAN_ROOT: u32 = u32::MAX;

/// Decode/transport failures. Everything a hostile or confused peer can
/// send lands in one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The stream ended inside a frame, or a payload field overran it.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is too short to
    /// hold the version and kind bytes).
    BadLength(u32),
    /// The frame's version byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown frame kind for the decoder that was asked.
    BadKind(u8),
    /// Structurally invalid payload (bad UTF-8, bad type tag, trailing
    /// garbage, inconsistent column lengths, …).
    Malformed(String),
    /// Socket-level read/write failure.
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Eof => write!(f, "connection closed"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (want {PROTOCOL_VERSION})"
                )
            }
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for ServerError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(m) => ServerError::Network(m),
            ProtoError::Eof => ServerError::Network("connection closed".into()),
            e => ServerError::Protocol(e.to_string()),
        }
    }
}

/// Typed error codes carried by error frames, mirroring [`ServerError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    Sql = 1,
    Optimizer = 2,
    Execution = 3,
    Data = 4,
    Store = 5,
    Scoring = 6,
    BadRequest = 7,
    ShuttingDown = 8,
    Overloaded = 9,
    DeadlineExceeded = 10,
    Protocol = 11,
    Network = 12,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Sql,
            2 => ErrorCode::Optimizer,
            3 => ErrorCode::Execution,
            4 => ErrorCode::Data,
            5 => ErrorCode::Store,
            6 => ErrorCode::Scoring,
            7 => ErrorCode::BadRequest,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Overloaded,
            10 => ErrorCode::DeadlineExceeded,
            11 => ErrorCode::Protocol,
            12 => ErrorCode::Network,
            _ => return None,
        })
    }

    /// Reconstruct the typed [`ServerError`] this code was built from.
    pub fn into_error(self, message: String) -> ServerError {
        match self {
            ErrorCode::Sql => ServerError::Sql(message),
            ErrorCode::Optimizer => ServerError::Optimizer(message),
            ErrorCode::Execution => ServerError::Execution(message),
            ErrorCode::Data => ServerError::Data(message),
            ErrorCode::Store => ServerError::Store(message),
            ErrorCode::Scoring => ServerError::Scoring(message),
            ErrorCode::BadRequest => ServerError::BadRequest(message),
            ErrorCode::ShuttingDown => ServerError::ShuttingDown,
            ErrorCode::Overloaded => ServerError::Overloaded(message),
            ErrorCode::DeadlineExceeded => ServerError::DeadlineExceeded(message),
            ErrorCode::Protocol => ServerError::Protocol(message),
            ErrorCode::Network => ServerError::Network(message),
        }
    }
}

impl From<&ServerError> for ErrorCode {
    fn from(e: &ServerError) -> Self {
        match e {
            ServerError::Sql(_) => ErrorCode::Sql,
            ServerError::Optimizer(_) => ErrorCode::Optimizer,
            ServerError::Execution(_) => ErrorCode::Execution,
            ServerError::Data(_) => ErrorCode::Data,
            ServerError::Store(_) => ErrorCode::Store,
            ServerError::Scoring(_) => ErrorCode::Scoring,
            ServerError::BadRequest(_) => ErrorCode::BadRequest,
            ServerError::ShuttingDown => ErrorCode::ShuttingDown,
            ServerError::Overloaded(_) => ErrorCode::Overloaded,
            ServerError::DeadlineExceeded(_) => ErrorCode::DeadlineExceeded,
            ServerError::Protocol(_) => ErrorCode::Protocol,
            ServerError::Network(_) => ErrorCode::Network,
        }
    }
}

/// A client-to-server frame. Every request that touches serving state
/// names the tenant (namespace) it runs in; version-3 peers, which
/// predate the field, are decoded into [`crate::tenant::DEFAULT_TENANT`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse → bind → optimize `sql` into the tenant's plan cache
    /// without executing it (statement warm-up).
    Prepare { sql: String, tenant: String },
    /// Execute `sql` end to end; `deadline` bounds queueing + execution.
    Query {
        sql: String,
        tenant: String,
        deadline: Option<Duration>,
    },
    /// Execute a parameterized template: SQL containing `?` placeholders
    /// plus the positional argument values. The server prepares the
    /// template once (plan cache) and substitutes the values per request
    /// — distinct constants share one optimization.
    QueryParams {
        template: String,
        tenant: String,
        params: Vec<Value>,
        deadline: Option<Duration>,
    },
    /// Micro-batched point scoring of one raw feature row.
    Score {
        model: String,
        tenant: String,
        row: Vec<f64>,
    },
    /// Fetch observability counters: one tenant's when `tenant` names
    /// it, the cross-tenant aggregate when `tenant` is empty.
    Stats { tenant: String },
    /// Fetch the unified metric registry as Prometheus-style text
    /// exposition: one tenant's (labeled) when `tenant` names it, the
    /// exactly-merged cross-tenant aggregate when `tenant` is empty.
    /// Version 5+.
    Metrics { tenant: String },
    /// Fetch the `limit` most recent slow-query traces, newest first:
    /// one tenant's slow ring, or every tenant's interleaved in capture
    /// order when `tenant` is empty. Version 5+.
    Traces { tenant: String, limit: u32 },
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// A server-to-client frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// Reply to [`Request::Prepare`].
    Prepared {
        cache_hit: bool,
        prepare_micros: u64,
    },
    /// Reply to [`Request::Query`]: the materialized result table.
    /// Shared (`Arc`) so the server can frame a cached result without
    /// deep-copying it per connection. ≤v5 peers always get this; v6
    /// peers get the same rows streamed as [`Response::RowsChunk`]s.
    Rows {
        cache_hit: bool,
        total_micros: u64,
        table: Arc<Table>,
    },
    /// One bounded slice of a streamed `Rows` result (v6+). Every chunk
    /// carries the schema, so a zero-row result still round-trips its
    /// shape; the client concatenates chunks until [`Response::RowsEnd`].
    RowsChunk { table: Arc<Table> },
    /// Terminates a streamed `Rows` result (v6+), carrying what the
    /// monolithic frame's header would have: the cache verdict, the
    /// server-side latency, and the total row count (which must equal
    /// the sum of the chunks — the client checks).
    RowsEnd {
        cache_hit: bool,
        total_micros: u64,
        total_rows: u64,
    },
    /// Reply to [`Request::Score`].
    Score { value: f64 },
    /// Reply to [`Request::Stats`].
    Stats(WireStats),
    /// Reply to [`Request::Metrics`]: Prometheus-style text exposition
    /// of the requested scope's metric registry.
    Metrics { text: String },
    /// Reply to [`Request::Traces`]: captured slow-query traces, newest
    /// first, spans in recording order (parents index into the vector).
    Traces { traces: Vec<Trace> },
    /// Reply to [`Request::Shutdown`].
    ShutdownAck,
    /// Any request can fail with a typed error instead of its reply.
    Error { code: ErrorCode, message: String },
}

impl PartialEq for Response {
    fn eq(&self, other: &Self) -> bool {
        use Response::*;
        match (self, other) {
            (
                Prepared {
                    cache_hit: a,
                    prepare_micros: b,
                },
                Prepared {
                    cache_hit: c,
                    prepare_micros: d,
                },
            ) => a == c && b == d,
            (
                Rows {
                    cache_hit: a,
                    total_micros: b,
                    table: t1,
                },
                Rows {
                    cache_hit: c,
                    total_micros: d,
                    table: t2,
                },
            ) => a == c && b == d && t1 == t2,
            (RowsChunk { table: t1 }, RowsChunk { table: t2 }) => t1 == t2,
            (
                RowsEnd {
                    cache_hit: a,
                    total_micros: b,
                    total_rows: c,
                },
                RowsEnd {
                    cache_hit: d,
                    total_micros: e,
                    total_rows: f,
                },
            ) => a == d && b == e && c == f,
            (Score { value: a }, Score { value: b }) => a == b,
            (Stats(a), Stats(b)) => a == b,
            (Metrics { text: a }, Metrics { text: b }) => a == b,
            (Traces { traces: a }, Traces { traces: b }) => a == b,
            (ShutdownAck, ShutdownAck) => true,
            (
                Error {
                    code: a,
                    message: b,
                },
                Error {
                    code: c,
                    message: d,
                },
            ) => a == c && b == d,
            _ => false,
        }
    }
}

/// The observability counters a [`Request::Stats`] round-trip returns —
/// a flattened, wire-stable subset of [`crate::StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    pub queries: u64,
    pub errors: u64,
    pub rows: u64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub preparations: u64,
    pub invalidations: u64,
    /// Queries rewritten to a parameterized template (constants
    /// extracted) before the plan-cache lookup.
    pub normalized: u64,
    /// Normalized queries whose template plan was already cached.
    pub template_hits: u64,
    /// Requests answered from the deterministic result cache — the
    /// repeats that skipped execution entirely.
    pub result_hits: u64,
    /// Cacheable requests that had to execute (first sight of their
    /// fingerprint, or its entry was evicted/invalidated).
    pub result_misses: u64,
    /// Memoized results dropped by model/table updates.
    pub result_invalidations: u64,
    pub batch_requests: u64,
    pub batches: u64,
    pub admitted: u64,
    pub rejected_overloaded: u64,
    pub rejected_deadline: u64,
    /// Recent-window latency percentiles in microseconds (version 4+;
    /// zero when talking to or decoding from a v3 peer). Scoped like the
    /// rest of the frame: one tenant's window, or the merged window for
    /// an aggregate `Stats` request.
    pub latency_p50_micros: u64,
    pub latency_p95_micros: u64,
    pub latency_p99_micros: u64,
}

impl WireStats {
    /// Result-cache hit fraction in `[0, 1]` over cacheable requests
    /// (0 before any).
    pub fn result_hit_rate(&self) -> f64 {
        let total = self.result_hits + self.result_misses;
        if total == 0 {
            0.0
        } else {
            self.result_hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// Payload cursor helpers.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("invalid utf-8 in string".into()))
    }

    /// A `u32` element count validated against the bytes actually left
    /// (each element needs at least `min_elem_bytes`), so a garbage
    /// count cannot trigger a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, ProtoError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Every payload byte must be consumed: trailing garbage is an error.
    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f64(out, x);
    }
}

// A scalar parameter value: [`DataType`] tag byte + payload.
fn put_value(out: &mut Vec<u8>, v: &Value) {
    out.push(dtype_tag(v.data_type()));
    match v {
        Value::Int64(x) => put_u64(out, *x as u64),
        Value::Float64(x) => put_f64(out, *x),
        Value::Bool(b) => out.push(*b as u8),
        Value::Utf8(s) => put_string(out, s),
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value, ProtoError> {
    match r.u8()? {
        0 => Ok(Value::Int64(r.i64()?)),
        1 => Ok(Value::Float64(r.f64()?)),
        2 => Ok(Value::Bool(decode_bool(r.u8()?)?)),
        3 => Ok(Value::Utf8(r.string()?)),
        tag => Err(ProtoError::Malformed(format!("bad value tag {tag}"))),
    }
}

// ---------------------------------------------------------------------
// Table encoding.

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Bool => 2,
        DataType::Utf8 => 3,
    }
}

fn encode_table(out: &mut Vec<u8>, table: &Table) {
    encode_table_range(out, table, 0, table.num_rows());
}

/// Encode rows `offset..offset + len` of `table`, column-major, straight
/// from the (possibly shared) table — chunked streaming never clones or
/// re-slices the result, it just walks ranges of the original columns.
fn encode_table_range(out: &mut Vec<u8>, table: &Table, offset: usize, len: usize) {
    let batch = table.batch();
    put_u32(out, len as u32);
    put_u32(out, batch.schema().len() as u32);
    for (field, col) in batch.schema().fields().iter().zip(batch.columns()) {
        put_string(out, &field.name);
        out.push(dtype_tag(field.dtype));
        match col.as_ref() {
            Column::Int64(v) => v[offset..offset + len]
                .iter()
                .for_each(|&x| put_u64(out, x as u64)),
            Column::Float64(v) => v[offset..offset + len]
                .iter()
                .for_each(|&x| put_f64(out, x)),
            Column::Bool(v) => v[offset..offset + len]
                .iter()
                .for_each(|&x| out.push(x as u8)),
            Column::Utf8(v) => v[offset..offset + len]
                .iter()
                .for_each(|s| put_string(out, s)),
        }
    }
}

fn decode_table(r: &mut Reader<'_>) -> Result<Table, ProtoError> {
    let rows = r.u32()? as usize;
    let cols = r.count(5)?; // name len + dtype tag at minimum per column
    let mut fields = Vec::with_capacity(cols);
    let mut columns = Vec::with_capacity(cols);
    for _ in 0..cols {
        let name = r.string()?;
        let tag = r.u8()?;
        let (dtype, column) = match tag {
            0 => {
                if rows.saturating_mul(8) > r.remaining() {
                    return Err(ProtoError::Truncated);
                }
                let v = (0..rows).map(|_| r.i64()).collect::<Result<Vec<_>, _>>()?;
                (DataType::Int64, Column::Int64(v))
            }
            1 => {
                if rows.saturating_mul(8) > r.remaining() {
                    return Err(ProtoError::Truncated);
                }
                let v = (0..rows).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
                (DataType::Float64, Column::Float64(v))
            }
            2 => {
                let v = r
                    .take(rows)?
                    .iter()
                    .map(|&b| match b {
                        0 => Ok(false),
                        1 => Ok(true),
                        b => Err(ProtoError::Malformed(format!("bad bool byte {b}"))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                (DataType::Bool, Column::Bool(v))
            }
            3 => {
                if rows.saturating_mul(4) > r.remaining() {
                    return Err(ProtoError::Truncated);
                }
                let v = (0..rows)
                    .map(|_| r.string())
                    .collect::<Result<Vec<_>, _>>()?;
                (DataType::Utf8, Column::Utf8(v))
            }
            tag => return Err(ProtoError::Malformed(format!("bad dtype tag {tag}"))),
        };
        fields.push(Field::new(name, dtype));
        columns.push(column);
    }
    Table::try_new(Schema::new(fields).into_shared(), columns)
        .map_err(|e| ProtoError::Malformed(e.to_string()))
}

// ---------------------------------------------------------------------
// Frame encode/decode.

/// Assemble a full frame: length prefix, version, kind, request id
/// (version ≥ 6 only — earlier headers have no id field), payload. A
/// body beyond `u32` saturates the prefix rather than silently wrapping
/// — the receiver then rejects it as `BadLength` instead of desyncing;
/// use [`Response::encode_checked`] to catch oversize before sending.
fn frame(version: u8, kind: u8, request_id: u32, payload: &[u8]) -> Vec<u8> {
    let id_bytes = if version >= 6 { 4 } else { 0 };
    let len = u32::try_from(payload.len() + 2 + id_bytes).unwrap_or(u32::MAX);
    let mut out = Vec::with_capacity(payload.len() + 6 + id_bytes);
    put_u32(&mut out, len);
    out.push(version);
    out.push(kind);
    if version >= 6 {
        put_u32(&mut out, request_id);
    }
    out.extend_from_slice(payload);
    out
}

/// Validate the version byte and return `(version, kind, request_id,
/// payload)` of a frame body (everything after the length prefix). Any
/// version in [`MIN_PROTOCOL_VERSION`]..=[`PROTOCOL_VERSION`] is
/// accepted; the payload decoders branch on it. Pre-v6 headers carry no
/// id field and report id `0`.
fn split_body(body: &[u8]) -> Result<(u8, u8, u32, &[u8]), ProtoError> {
    if body.len() < 2 {
        return Err(ProtoError::Truncated);
    }
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&body[0]) {
        return Err(ProtoError::BadVersion(body[0]));
    }
    let (version, kind) = (body[0], body[1]);
    if version >= 6 {
        if body.len() < 6 {
            return Err(ProtoError::Truncated);
        }
        let id = u32::from_le_bytes(body[2..6].try_into().unwrap());
        Ok((version, kind, id, &body[6..]))
    } else {
        Ok((version, kind, 0, &body[2..]))
    }
}

impl Request {
    /// Encode to a complete wire frame (length prefix included), always
    /// at [`PROTOCOL_VERSION`] with request id `0` (the serial-client
    /// convention; pipelined clients pass real ids via
    /// [`Request::encode_with_id`]).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_for_version(PROTOCOL_VERSION, 0)
    }

    /// Encode at [`PROTOCOL_VERSION`] carrying `request_id`, so the
    /// out-of-order reply stream can be matched back to this request.
    pub fn encode_with_id(&self, request_id: u32) -> Vec<u8> {
        self.encode_for_version(PROTOCOL_VERSION, request_id)
    }

    /// Encode exactly as a peer of `version` would: v3 frames omit the
    /// tenant fields entirely (the tenant is *dropped*, not defaulted —
    /// a v3 peer cannot name one), pre-v6 headers omit the request id.
    /// `version` is clamped into the supported range. Kinds a version
    /// does not define (`Metrics`/`Traces` below v5) still encode; the
    /// receiving decoder rejects them as `BadKind`, which is precisely
    /// how compat tests exercise that path.
    pub fn encode_for_version(&self, version: u8, request_id: u32) -> Vec<u8> {
        let version = version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        let tenanted = version >= 4;
        let mut payload = Vec::new();
        let kind = match self {
            Request::Prepare { sql, tenant } => {
                put_string(&mut payload, sql);
                if tenanted {
                    put_string(&mut payload, tenant);
                }
                KIND_PREPARE
            }
            Request::Query {
                sql,
                tenant,
                deadline,
            } => {
                put_string(&mut payload, sql);
                if tenanted {
                    put_string(&mut payload, tenant);
                }
                // 0 = no deadline; a zero deadline is sent as 1 µs.
                let micros = deadline.map(|d| (d.as_micros() as u64).max(1)).unwrap_or(0);
                put_u64(&mut payload, micros);
                KIND_QUERY
            }
            Request::QueryParams {
                template,
                tenant,
                params,
                deadline,
            } => {
                put_string(&mut payload, template);
                if tenanted {
                    put_string(&mut payload, tenant);
                }
                put_u32(&mut payload, params.len() as u32);
                for p in params {
                    put_value(&mut payload, p);
                }
                let micros = deadline.map(|d| (d.as_micros() as u64).max(1)).unwrap_or(0);
                put_u64(&mut payload, micros);
                KIND_QUERY_PARAMS
            }
            Request::Score { model, tenant, row } => {
                put_string(&mut payload, model);
                if tenanted {
                    put_string(&mut payload, tenant);
                }
                put_f64_vec(&mut payload, row);
                KIND_SCORE
            }
            Request::Stats { tenant } => {
                if tenanted {
                    put_string(&mut payload, tenant);
                }
                KIND_STATS
            }
            Request::Metrics { tenant } => {
                put_string(&mut payload, tenant);
                KIND_METRICS
            }
            Request::Traces { tenant, limit } => {
                put_string(&mut payload, tenant);
                put_u32(&mut payload, *limit);
                KIND_TRACES
            }
            Request::Shutdown => KIND_SHUTDOWN,
        };
        frame(version, kind, request_id, &payload)
    }

    /// Decode a frame body (version + kind + payload, no length prefix).
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        Request::decode_framed(body).map(|(req, _, _)| req)
    }

    /// [`Request::decode`], also returning the frame's version so the
    /// responder can reply in kind (a v3 peer must get v3 bytes back).
    pub fn decode_versioned(body: &[u8]) -> Result<(Request, u8), ProtoError> {
        Request::decode_framed(body).map(|(req, version, _)| (req, version))
    }

    /// Full header decode: the request, the frame's version, and its
    /// request id (`0` for pre-v6 frames, which carry no id field).
    pub fn decode_framed(body: &[u8]) -> Result<(Request, u8, u32), ProtoError> {
        let (version, kind, request_id, payload) = split_body(body)?;
        let mut r = Reader::new(payload);
        // Version 3 frames carry no tenant anywhere: map them to the
        // default tenant (for Stats too — in a v3 world the default
        // tenant *was* the whole server).
        let v3 = || crate::tenant::DEFAULT_TENANT.to_string();
        let req = match kind {
            KIND_PREPARE => {
                let sql = r.string()?;
                let tenant = if version >= 4 { r.string()? } else { v3() };
                Request::Prepare { sql, tenant }
            }
            KIND_QUERY => {
                let sql = r.string()?;
                let tenant = if version >= 4 { r.string()? } else { v3() };
                let micros = r.u64()?;
                Request::Query {
                    sql,
                    tenant,
                    deadline: (micros > 0).then(|| Duration::from_micros(micros)),
                }
            }
            KIND_QUERY_PARAMS => {
                let template = r.string()?;
                let tenant = if version >= 4 { r.string()? } else { v3() };
                let n = r.count(2)?; // tag + ≥ 1 payload byte per value
                let params = (0..n)
                    .map(|_| decode_value(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                let micros = r.u64()?;
                Request::QueryParams {
                    template,
                    tenant,
                    params,
                    deadline: (micros > 0).then(|| Duration::from_micros(micros)),
                }
            }
            KIND_SCORE => {
                let model = r.string()?;
                let tenant = if version >= 4 { r.string()? } else { v3() };
                Request::Score {
                    model,
                    tenant,
                    row: r.f64_vec()?,
                }
            }
            KIND_STATS => Request::Stats {
                tenant: if version >= 4 { r.string()? } else { v3() },
            },
            // The observability frames are v5-only: an older peer that
            // sends these bytes has a kind its own protocol does not
            // define, which is exactly what BadKind means.
            KIND_METRICS if version >= 5 => Request::Metrics {
                tenant: r.string()?,
            },
            KIND_TRACES if version >= 5 => Request::Traces {
                tenant: r.string()?,
                limit: r.u32()?,
            },
            KIND_SHUTDOWN => Request::Shutdown,
            kind => return Err(ProtoError::BadKind(kind)),
        };
        r.finish()?;
        Ok((req, version, request_id))
    }
}

impl Response {
    /// Encode to a complete wire frame (length prefix included) at
    /// [`PROTOCOL_VERSION`] with request id `0`.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_for_version(PROTOCOL_VERSION)
    }

    /// Encode for a specific peer version: the server answers each
    /// request in the version it arrived in, so v3 clients get v3
    /// bytes (same layouts, minus the v4-only trailing `Stats`
    /// counters). `version` is clamped into the supported range. The
    /// request id is `0`; replies to pipelined requests go through
    /// [`Response::encode_framed`].
    pub fn encode_for_version(&self, version: u8) -> Vec<u8> {
        self.encode_framed(version, 0)
    }

    /// [`Response::encode_for_version`] carrying `request_id`, echoing
    /// the id of the request this frame answers (dropped from the
    /// header below v6).
    pub fn encode_framed(&self, version: u8, request_id: u32) -> Vec<u8> {
        let version = version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        let mut payload = Vec::new();
        let kind = match self {
            Response::Prepared {
                cache_hit,
                prepare_micros,
            } => {
                payload.push(*cache_hit as u8);
                put_u64(&mut payload, *prepare_micros);
                KIND_PREPARED
            }
            Response::Rows {
                cache_hit,
                total_micros,
                table,
            } => {
                payload.push(*cache_hit as u8);
                put_u64(&mut payload, *total_micros);
                encode_table(&mut payload, table);
                KIND_ROWS
            }
            Response::RowsChunk { table } => {
                encode_table(&mut payload, table);
                KIND_ROWS_CHUNK
            }
            Response::RowsEnd {
                cache_hit,
                total_micros,
                total_rows,
            } => {
                payload.push(*cache_hit as u8);
                put_u64(&mut payload, *total_micros);
                put_u64(&mut payload, *total_rows);
                KIND_ROWS_END
            }
            Response::Score { value } => {
                put_f64(&mut payload, *value);
                KIND_SCORED
            }
            Response::Stats(s) => {
                for v in [
                    s.queries,
                    s.errors,
                    s.rows,
                    s.plan_hits,
                    s.plan_misses,
                    s.preparations,
                    s.invalidations,
                    s.normalized,
                    s.template_hits,
                    s.result_hits,
                    s.result_misses,
                    s.result_invalidations,
                    s.batch_requests,
                    s.batches,
                    s.admitted,
                    s.rejected_overloaded,
                    s.rejected_deadline,
                ] {
                    put_u64(&mut payload, v);
                }
                if version >= 4 {
                    put_u64(&mut payload, s.latency_p50_micros);
                    put_u64(&mut payload, s.latency_p95_micros);
                    put_u64(&mut payload, s.latency_p99_micros);
                }
                KIND_STATS_REPLY
            }
            Response::Metrics { text } => {
                put_string(&mut payload, text);
                KIND_METRICS_REPLY
            }
            Response::Traces { traces } => {
                put_u32(&mut payload, traces.len() as u32);
                for t in traces {
                    put_string(&mut payload, &t.tenant);
                    put_string(&mut payload, &t.sql);
                    put_u64(&mut payload, t.seq);
                    put_u64(&mut payload, t.total_us);
                    payload.push(t.slow as u8);
                    put_u32(&mut payload, t.spans.len() as u32);
                    for s in &t.spans {
                        put_string(&mut payload, &s.name);
                        put_u32(&mut payload, s.parent.unwrap_or(SPAN_ROOT));
                        put_u64(&mut payload, s.start_us);
                        put_u64(&mut payload, s.duration_us);
                    }
                }
                KIND_TRACES_REPLY
            }
            Response::ShutdownAck => KIND_SHUTDOWN_ACK,
            Response::Error { code, message } => {
                put_u16(&mut payload, *code as u16);
                put_string(&mut payload, message);
                KIND_ERROR
            }
        };
        frame(version, kind, request_id, &payload)
    }

    /// Decode a frame body (version + kind + payload, no length prefix).
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        Response::decode_framed(body).map(|(resp, _, _)| resp)
    }

    /// Full header decode: the response, the frame's version, and the
    /// request id it answers (`0` for pre-v6 frames).
    pub fn decode_framed(body: &[u8]) -> Result<(Response, u8, u32), ProtoError> {
        let (version, kind, request_id, payload) = split_body(body)?;
        let mut r = Reader::new(payload);
        let resp = match kind {
            KIND_PREPARED => Response::Prepared {
                cache_hit: decode_bool(r.u8()?)?,
                prepare_micros: r.u64()?,
            },
            KIND_ROWS => Response::Rows {
                cache_hit: decode_bool(r.u8()?)?,
                total_micros: r.u64()?,
                table: Arc::new(decode_table(&mut r)?),
            },
            // The streaming kinds don't exist below v6: a pre-v6 peer's
            // decoder would reject these bytes as unknown, so ours must
            // too when the frame claims an older version.
            KIND_ROWS_CHUNK if version >= 6 => Response::RowsChunk {
                table: Arc::new(decode_table(&mut r)?),
            },
            KIND_ROWS_END if version >= 6 => Response::RowsEnd {
                cache_hit: decode_bool(r.u8()?)?,
                total_micros: r.u64()?,
                total_rows: r.u64()?,
            },
            KIND_SCORED => Response::Score { value: r.f64()? },
            KIND_STATS_REPLY => {
                let mut stats = WireStats {
                    queries: r.u64()?,
                    errors: r.u64()?,
                    rows: r.u64()?,
                    plan_hits: r.u64()?,
                    plan_misses: r.u64()?,
                    preparations: r.u64()?,
                    invalidations: r.u64()?,
                    normalized: r.u64()?,
                    template_hits: r.u64()?,
                    result_hits: r.u64()?,
                    result_misses: r.u64()?,
                    result_invalidations: r.u64()?,
                    batch_requests: r.u64()?,
                    batches: r.u64()?,
                    admitted: r.u64()?,
                    rejected_overloaded: r.u64()?,
                    rejected_deadline: r.u64()?,
                    latency_p50_micros: 0,
                    latency_p95_micros: 0,
                    latency_p99_micros: 0,
                };
                if version >= 4 {
                    stats.latency_p50_micros = r.u64()?;
                    stats.latency_p95_micros = r.u64()?;
                    stats.latency_p99_micros = r.u64()?;
                }
                Response::Stats(stats)
            }
            KIND_METRICS_REPLY => Response::Metrics { text: r.string()? },
            KIND_TRACES_REPLY => {
                // Minimum bytes per trace: two string lengths, seq,
                // total_us, the slow byte, and the span count.
                let n = r.count(29)?;
                let traces = (0..n)
                    .map(|_| decode_trace(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Response::Traces { traces }
            }
            KIND_SHUTDOWN_ACK => Response::ShutdownAck,
            KIND_ERROR => {
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| ProtoError::Malformed(format!("bad error code {raw}")))?;
                Response::Error {
                    code,
                    message: r.string()?,
                }
            }
            kind => return Err(ProtoError::BadKind(kind)),
        };
        r.finish()?;
        Ok((resp, version, request_id))
    }

    /// Build the error frame for a [`ServerError`]. The message is the
    /// variant's inner detail: the code already carries the kind, and
    /// [`ErrorCode::into_error`] reconstructs the exact original.
    pub fn from_error(e: &ServerError) -> Response {
        Response::Error {
            code: e.into(),
            message: e.detail(),
        }
    }

    /// [`Response::encode_for_version`], but a frame beyond
    /// [`MAX_FRAME_LEN`] — a result table too large for the protocol —
    /// comes back as `Err(BadLength)` instead of a frame the receiver
    /// would reject.
    pub fn encode_checked(&self, version: u8) -> Result<Vec<u8>, ProtoError> {
        Self::check_len(self.encode_for_version(version))
    }

    /// [`Response::encode_framed`] with the same oversize check as
    /// [`Response::encode_checked`].
    pub fn encode_framed_checked(
        &self,
        version: u8,
        request_id: u32,
    ) -> Result<Vec<u8>, ProtoError> {
        Self::check_len(self.encode_framed(version, request_id))
    }

    /// Build one `RowsChunk` frame for rows `offset..offset + len` of a
    /// (possibly shared) result table, encoding the range straight from
    /// the original columns — no sub-table is materialized, so a cached
    /// `Arc<Table>` streams to any number of connections without a
    /// copy. Errors on out-of-range or a chunk that overflows
    /// [`MAX_FRAME_LEN`] (shrink the chunk).
    pub fn rows_chunk_frame(
        version: u8,
        request_id: u32,
        table: &Table,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ProtoError> {
        let version = version.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        if version < 6 {
            return Err(ProtoError::BadKind(KIND_ROWS_CHUNK));
        }
        if offset.saturating_add(len) > table.num_rows() {
            return Err(ProtoError::Malformed(format!(
                "chunk {offset}..{} out of range for {} rows",
                offset + len,
                table.num_rows()
            )));
        }
        let mut payload = Vec::new();
        encode_table_range(&mut payload, table, offset, len);
        Self::check_len(frame(version, KIND_ROWS_CHUNK, request_id, &payload))
    }

    fn check_len(wire: Vec<u8>) -> Result<Vec<u8>, ProtoError> {
        let body_len = wire.len() - 4;
        if body_len > MAX_FRAME_LEN as usize {
            return Err(ProtoError::BadLength(
                u32::try_from(body_len).unwrap_or(u32::MAX),
            ));
        }
        Ok(wire)
    }
}

fn decode_trace(r: &mut Reader<'_>) -> Result<Trace, ProtoError> {
    let tenant = r.string()?;
    let sql = r.string()?;
    let seq = r.u64()?;
    let total_us = r.u64()?;
    let slow = decode_bool(r.u8()?)?;
    // Minimum bytes per span: name length, parent, start_us, duration_us.
    let n = r.count(24)?;
    let spans = (0..n)
        .map(|_| {
            let name = r.string()?;
            let parent = r.u32()?;
            Ok(Span {
                name,
                parent: (parent != SPAN_ROOT).then_some(parent),
                start_us: r.u64()?,
                duration_us: r.u64()?,
            })
        })
        .collect::<Result<Vec<_>, ProtoError>>()?;
    Ok(Trace {
        seq,
        tenant,
        sql,
        total_us,
        slow,
        spans,
    })
}

fn decode_bool(b: u8) -> Result<bool, ProtoError> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(ProtoError::Malformed(format!("bad bool byte {b}"))),
    }
}

/// Read one frame body from `r`: the length prefix is validated against
/// [`MAX_FRAME_LEN`] *before* the body allocation. A clean close before
/// the first length byte is [`ProtoError::Eof`]; mid-frame closes are
/// [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    ProtoError::Eof
                } else {
                    ProtoError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(ProtoError::BadLength(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e.to_string())
        }
    })?;
    Ok(body)
}

/// Write a fully assembled frame (from [`Request::encode`] /
/// [`Response::encode`]) to `w`.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), ProtoError> {
    w.write_all(frame)
        .map_err(|e| ProtoError::Io(e.to_string()))?;
    w.flush().map_err(|e| ProtoError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: Request) {
        let wire = req.encode();
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let wire = resp.encode();
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Prepare {
            sql: "SELECT 1".into(),
            tenant: "default".into(),
        });
        roundtrip_request(Request::Query {
            sql: "SELECT * FROM t WHERE x > 1".into(),
            tenant: "team-a".into(),
            deadline: None,
        });
        roundtrip_request(Request::Query {
            sql: "q".into(),
            tenant: "default".into(),
            deadline: Some(Duration::from_millis(250)),
        });
        roundtrip_request(Request::Score {
            model: "risk".into(),
            tenant: "team-b".into(),
            row: vec![1.0, -2.5, f64::MAX],
        });
        roundtrip_request(Request::Stats {
            tenant: String::new(), // aggregate
        });
        roundtrip_request(Request::Stats {
            tenant: "team-a".into(),
        });
        roundtrip_request(Request::Shutdown);
    }

    /// Hand-encode version-3 frames (no tenant fields anywhere) and
    /// check they decode into the default tenant — the backward
    /// compatibility contract for pre-tenancy clients.
    #[test]
    fn v3_requests_decode_into_the_default_tenant() {
        let v3_frame = |kind: u8, payload: &[u8]| frame(3, kind, 0, payload);

        let mut query = Vec::new();
        put_string(&mut query, "SELECT 1");
        put_u64(&mut query, 250_000);
        let wire = v3_frame(KIND_QUERY, &query);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        let (req, version) = Request::decode_versioned(&body).unwrap();
        assert_eq!(version, 3);
        assert_eq!(
            req,
            Request::Query {
                sql: "SELECT 1".into(),
                tenant: crate::tenant::DEFAULT_TENANT.into(),
                deadline: Some(Duration::from_micros(250_000)),
            }
        );

        let mut params = Vec::new();
        put_string(&mut params, "SELECT a FROM t WHERE a > ?");
        put_u32(&mut params, 1);
        put_value(&mut params, &Value::Int64(30));
        put_u64(&mut params, 0);
        let body = read_frame(&mut Cursor::new(&v3_frame(KIND_QUERY_PARAMS, &params))).unwrap();
        let (req, _) = Request::decode_versioned(&body).unwrap();
        assert!(matches!(
            req,
            Request::QueryParams { tenant, .. } if tenant == crate::tenant::DEFAULT_TENANT
        ));

        // v3 Stats is an empty payload and means "the default tenant"
        // (which, pre-tenancy, was the whole server).
        let body = read_frame(&mut Cursor::new(&v3_frame(KIND_STATS, &[]))).unwrap();
        let (req, _) = Request::decode_versioned(&body).unwrap();
        assert_eq!(
            req,
            Request::Stats {
                tenant: crate::tenant::DEFAULT_TENANT.into()
            }
        );

        let mut score = Vec::new();
        put_string(&mut score, "m");
        put_f64_vec(&mut score, &[1.0, 2.0]);
        let body = read_frame(&mut Cursor::new(&v3_frame(KIND_SCORE, &score))).unwrap();
        let (req, _) = Request::decode_versioned(&body).unwrap();
        assert!(matches!(
            req,
            Request::Score { tenant, .. } if tenant == crate::tenant::DEFAULT_TENANT
        ));
    }

    /// A v3 `Stats` reply omits the v4 latency counters; the decoder
    /// fills zeros. Encoding for v3 then re-decoding round-trips the v3
    /// subset — exactly what a v3 client sees.
    #[test]
    fn stats_reply_downgrades_for_v3_peers() {
        let full = WireStats {
            queries: 7,
            result_hits: 3,
            latency_p50_micros: 111,
            latency_p95_micros: 222,
            latency_p99_micros: 333,
            ..WireStats::default()
        };
        let v3_wire = Response::Stats(full).encode_for_version(3);
        assert_eq!(v3_wire[4], 3, "reply carries the peer's version");
        let body = read_frame(&mut Cursor::new(&v3_wire)).unwrap();
        let Response::Stats(seen) = Response::decode(&body).unwrap() else {
            panic!("not a stats frame");
        };
        assert_eq!(seen.queries, 7);
        assert_eq!(seen.result_hits, 3);
        assert_eq!(
            (
                seen.latency_p50_micros,
                seen.latency_p95_micros,
                seen.latency_p99_micros
            ),
            (0, 0, 0),
            "v3 frames carry no latency counters"
        );
        // The v4 encoding keeps them.
        let v4_body = read_frame(&mut Cursor::new(&Response::Stats(full).encode())).unwrap();
        let Response::Stats(seen) = Response::decode(&v4_body).unwrap() else {
            panic!("not a stats frame");
        };
        assert_eq!(seen, full);
    }

    #[test]
    fn response_roundtrips() {
        let table = Table::try_new(
            Schema::from_pairs(&[
                ("id", DataType::Int64),
                ("score", DataType::Float64),
                ("dest", DataType::Utf8),
                ("flag", DataType::Bool),
            ])
            .into_shared(),
            vec![
                Column::Int64(vec![1, -7]),
                Column::Float64(vec![0.5, f64::NEG_INFINITY]),
                Column::Utf8(vec!["JFK".into(), "日本".into()]),
                Column::Bool(vec![true, false]),
            ],
        )
        .unwrap();
        roundtrip_response(Response::Rows {
            cache_hit: true,
            total_micros: 1234,
            table: Arc::new(table),
        });
        roundtrip_response(Response::Prepared {
            cache_hit: false,
            prepare_micros: 99,
        });
        roundtrip_response(Response::Score { value: 6.25 });
        roundtrip_response(Response::Stats(WireStats {
            queries: 1,
            errors: 2,
            rows: 3,
            plan_hits: 4,
            plan_misses: 5,
            preparations: 6,
            invalidations: 7,
            normalized: 13,
            template_hits: 14,
            result_hits: 15,
            result_misses: 16,
            result_invalidations: 17,
            batch_requests: 8,
            batches: 9,
            admitted: 10,
            rejected_overloaded: 11,
            rejected_deadline: 12,
            latency_p50_micros: 18,
            latency_p95_micros: 19,
            latency_p99_micros: 20,
        }));
        roundtrip_response(Response::ShutdownAck);
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
    }

    #[test]
    fn observability_frames_roundtrip() {
        roundtrip_request(Request::Metrics {
            tenant: String::new(), // aggregate
        });
        roundtrip_request(Request::Metrics {
            tenant: "team-a".into(),
        });
        roundtrip_request(Request::Traces {
            tenant: String::new(),
            limit: 16,
        });
        roundtrip_response(Response::Metrics {
            text: "raven_queries_total 5\nraven_rows_total{tenant=\"a\"} 50\n".into(),
        });
        roundtrip_response(Response::Traces {
            traces: vec![
                Trace {
                    seq: 9,
                    tenant: "team-a".into(),
                    sql: "SELECT 1".into(),
                    total_us: 1500,
                    slow: false,
                    spans: vec![
                        Span {
                            name: "plan-cache-lookup".into(),
                            parent: None,
                            start_us: 2,
                            duration_us: 40,
                        },
                        Span {
                            name: "parse-bind".into(),
                            parent: Some(0),
                            start_us: 3,
                            duration_us: 20,
                        },
                    ],
                },
                // A spanless slow capture (unsampled request over the
                // threshold) must survive the wire too.
                Trace {
                    seq: 3,
                    tenant: "default".into(),
                    sql: "SELECT slow FROM t".into(),
                    total_us: 900_000,
                    slow: true,
                    spans: Vec::new(),
                },
            ],
        });
        roundtrip_response(Response::Traces { traces: Vec::new() });
    }

    /// The observability kinds don't exist below version 5: the decoder
    /// must reject them as unknown kinds, exactly as a genuine v4 peer's
    /// decoder would. `encode_for_version` builds the genuine pre-v6
    /// frame (no request-id header bytes), so this exercises the real
    /// v4/v3 wire image.
    #[test]
    fn observability_requests_are_v5_only() {
        let wire = Request::Metrics {
            tenant: String::new(),
        }
        .encode_for_version(4, 0);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(Request::decode(&body), Err(ProtoError::BadKind(0x07)));
        let wire = Request::Traces {
            tenant: String::new(),
            limit: 4,
        }
        .encode_for_version(3, 0);
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(Request::decode(&body), Err(ProtoError::BadKind(0x08)));
    }

    /// The streaming kinds don't exist below version 6: a frame claiming
    /// v5 with kind 0x88/0x89 must be rejected the way a genuine v5
    /// decoder would reject it — BadKind, never a misparse.
    #[test]
    fn streaming_replies_are_v6_only() {
        let chunk = Response::RowsChunk {
            table: Arc::new(
                Table::try_new(
                    Schema::from_pairs(&[("i", DataType::Int64)]).into_shared(),
                    vec![Column::Int64(vec![1, 2])],
                )
                .unwrap(),
            ),
        };
        let body = read_frame(&mut Cursor::new(&chunk.encode())).unwrap();
        assert!(matches!(
            Response::decode(&body),
            Ok(Response::RowsChunk { .. })
        ));
        let v5_wire = chunk.encode_for_version(5);
        let body = read_frame(&mut Cursor::new(&v5_wire)).unwrap();
        assert_eq!(Response::decode(&body), Err(ProtoError::BadKind(0x88)));

        let end = Response::RowsEnd {
            cache_hit: true,
            total_micros: 42,
            total_rows: 2,
        };
        let body = read_frame(&mut Cursor::new(&end.encode_for_version(5))).unwrap();
        assert_eq!(Response::decode(&body), Err(ProtoError::BadKind(0x89)));
        // `rows_chunk_frame` refuses to build pre-v6 streams outright.
        let table = Table::try_new(
            Schema::from_pairs(&[("i", DataType::Int64)]).into_shared(),
            vec![Column::Int64(vec![1])],
        )
        .unwrap();
        assert!(Response::rows_chunk_frame(5, 0, &table, 0, 1).is_err());
    }

    /// v6 headers carry the request id right after the kind byte; pre-v6
    /// headers have no id field at all, and both directions echo it.
    #[test]
    fn request_ids_ride_the_v6_header_and_only_the_v6_header() {
        let req = Request::Stats {
            tenant: "team-a".into(),
        };
        let wire = req.encode_with_id(0xDEAD_BEEF);
        assert_eq!(wire[4], PROTOCOL_VERSION);
        assert_eq!(wire[5], 0x04);
        assert_eq!(&wire[6..10], &0xDEAD_BEEFu32.to_le_bytes());
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        let (decoded, version, id) = Request::decode_framed(&body).unwrap();
        assert_eq!((decoded, version, id), (req.clone(), 6, 0xDEAD_BEEF));

        // The same request at v5 is 4 bytes shorter and reports id 0.
        let v5_wire = req.encode_for_version(5, 0xDEAD_BEEF);
        assert_eq!(v5_wire.len() + 4, wire.len());
        let body = read_frame(&mut Cursor::new(&v5_wire)).unwrap();
        let (_, version, id) = Request::decode_framed(&body).unwrap();
        assert_eq!((version, id), (5, 0));

        let resp = Response::Score { value: 1.5 };
        let body = read_frame(&mut Cursor::new(&resp.encode_framed(PROTOCOL_VERSION, 7))).unwrap();
        let (decoded, version, id) = Response::decode_framed(&body).unwrap();
        assert_eq!((decoded, version, id), (resp, 6, 7));
    }

    /// Chunk frames encode a row range straight from the shared table;
    /// reassembling every chunk reproduces the monolithic table exactly.
    #[test]
    fn chunk_frames_cover_the_table_exactly() {
        let table = Arc::new(
            Table::try_new(
                Schema::from_pairs(&[("i", DataType::Int64), ("s", DataType::Utf8)]).into_shared(),
                vec![
                    Column::Int64((0..10).collect()),
                    Column::Utf8((0..10).map(|i| format!("row-{i}")).collect()),
                ],
            )
            .unwrap(),
        );
        let mut rows = 0usize;
        let mut chunks = Vec::new();
        for (offset, len) in [(0, 3), (3, 3), (6, 4)] {
            let wire =
                Response::rows_chunk_frame(PROTOCOL_VERSION, 9, &table, offset, len).unwrap();
            let body = read_frame(&mut Cursor::new(&wire)).unwrap();
            let (resp, _, id) = Response::decode_framed(&body).unwrap();
            assert_eq!(id, 9);
            let Response::RowsChunk { table: chunk } = resp else {
                panic!("not a chunk");
            };
            assert_eq!(chunk.num_rows(), len);
            rows += chunk.num_rows();
            chunks.push((*chunk).clone());
        }
        assert_eq!(rows, table.num_rows());
        let rebuilt = Table::concat(&chunks).unwrap();
        assert_eq!(&rebuilt, &*table);
        // Out-of-range chunks are a typed error, not a slice panic.
        assert!(Response::rows_chunk_frame(PROTOCOL_VERSION, 0, &table, 8, 4).is_err());
    }

    #[test]
    fn error_frames_reconstruct_the_exact_error() {
        let errors = [
            ServerError::Sql("s".into()),
            ServerError::Overloaded("o".into()),
            ServerError::DeadlineExceeded("d".into()),
            ServerError::ShuttingDown,
            ServerError::BadRequest("b".into()),
        ];
        for e in errors {
            let Response::Error { code, message } = Response::from_error(&e) else {
                panic!("not an error frame");
            };
            assert_eq!(code.into_error(message), e, "round-trip must be exact");
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        put_u32(&mut wire, MAX_FRAME_LEN + 1);
        wire.extend_from_slice(&[0u8; 64]);
        assert_eq!(
            read_frame(&mut Cursor::new(&wire)),
            Err(ProtoError::BadLength(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut wire = Request::Stats {
            tenant: String::new(),
        }
        .encode();
        wire[4] = 9; // clobber the version byte
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(Request::decode(&body), Err(ProtoError::BadVersion(9)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = Request::Stats {
            tenant: String::new(),
        }
        .encode();
        // Extend the payload by one byte and fix up the length prefix.
        wire.push(0xAB);
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        let body = read_frame(&mut Cursor::new(&wire)).unwrap();
        assert!(matches!(
            Request::decode(&body),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn eof_and_truncation_are_distinct() {
        assert_eq!(
            read_frame(&mut Cursor::new(Vec::new())),
            Err(ProtoError::Eof)
        );
        let wire = Request::Prepare {
            sql: "SELECT 1".into(),
            tenant: "default".into(),
        }
        .encode();
        for cut in 1..wire.len() {
            let err = read_frame(&mut Cursor::new(&wire[..cut]));
            assert!(err.is_err(), "cut at {cut} must not parse");
        }
    }
}
