//! `ServerState`: the shared, thread-safe heart of the serving layer —
//! now a multi-tenant one.
//!
//! A `ServerState` is a sharded registry of [`Tenant`]s plus the
//! server-wide admission controller. Each tenant owns its slice of the
//! stack (catalog, model store, scorer, plan/result caches, batcher,
//! quota, stats — see [`crate::tenant`]); the registry maps tenant names
//! to shards behind an `RwLock` *per registry shard*, not one global
//! lock, so resolving different tenants never serializes.
//!
//! Every pre-tenancy method (`execute`, `serve`, `register_table`, …)
//! still exists and operates on the always-present [`DEFAULT_TENANT`];
//! the `*_in` variants take an explicit tenant name and create the
//! tenant on first use (bounded by [`ServerConfig::max_tenants`]).

use crate::admission::{AdmissionController, AdmissionStats};
use crate::batcher::{BatchConfig, BatcherStats};
use crate::cache::{PlanCacheStats, PreparedQuery};
use crate::error::{Result, ServerError};
use crate::result_cache::ResultCacheStats;
use crate::stats::{LatencySummary, StatsSnapshot};
use crate::tenant::{Tenant, TenantId, TenantQuotaConfig, DEFAULT_TENANT};
use crate::AdmissionConfig;
use raven_core::{ModelStore, RavenSession, SessionConfig};
use raven_data::{Catalog, CatalogShards, NamespaceMap, Table, Value};
use raven_ml::Pipeline;
use raven_obs::{RegistrySnapshot, SpanRecorder, Trace};
use raven_runtime::RavenScorer;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registry shards for the tenant map (and the backing catalog
/// namespaces). Tenant resolution takes a read lock on exactly one.
const TENANT_MAP_SHARDS: usize = 16;

/// Serving configuration: a [`SessionConfig`] (optimizer + engines) plus
/// the serving-only knobs. Cache and batch budgets apply **per tenant**:
/// every tenant gets its own plan cache of `plan_cache_capacity`
/// entries, its own result cache of `result_cache_capacity` entries and
/// `result_cache_max_bytes` bytes, and its own micro-batcher.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Optimizer/executor/scorer configuration shared by every request.
    pub session: SessionConfig,
    /// Maximum prepared plans kept per tenant (LRU beyond this). 0
    /// disables the cache: every request re-optimizes (the bench
    /// ablation baseline).
    pub plan_cache_capacity: usize,
    /// Maximum memoized result tables kept per tenant (LRU beyond this).
    /// 0 disables result caching: every request executes. Results are
    /// cached only for plans the determinism analysis marks pure, keyed
    /// on a [`raven_ir::PlanFingerprint`] over (tenant, optimized plan,
    /// bound parameter values, model/table versions), and invalidated by
    /// that tenant's `store_model` / `replace_table`.
    pub result_cache_capacity: usize,
    /// Byte budget across one tenant's memoized result tables
    /// (approximate payload bytes; 0 = unbounded).
    pub result_cache_max_bytes: usize,
    /// Micro-batching knobs for point-scoring requests (per tenant).
    pub batch: BatchConfig,
    /// Server-wide admission control: concurrent-execution limit, queue
    /// bound, wait timeout, default deadline. This is the outer ring
    /// every request must clear *after* its tenant quota.
    pub admission: AdmissionConfig,
    /// Per-tenant admission quota — the inner ring, acquired first, so a
    /// noisy tenant is rejected at its own boundary before it can occupy
    /// global execution slots. Defaults to unlimited concurrency (quotas
    /// off).
    pub tenant_quota: TenantQuotaConfig,
    /// Maximum live tenants, the always-present `default` included
    /// (0 = unlimited) — so `max_tenants: 4` allows three tenants beyond
    /// the default. Tenants are created on first use — including over
    /// the wire — so a cap keeps a misbehaving client from minting
    /// unbounded namespaces.
    pub max_tenants: usize,
    /// Normalize incoming SQL before the plan-cache lookup
    /// ([`mod@crate::normalize`]): literals become `?` placeholders, so
    /// queries differing only in constants share one prepared plan.
    pub normalize_parameters: bool,
    /// Head-sampling rate for request tracing: every Nth request per
    /// tenant records a full span tree (1 = every request, 0 = tracing
    /// off entirely — no per-request allocation, no slow-query capture).
    /// Unsampled requests still land in the slow-query ring when they
    /// cross [`ServerConfig::slow_query_threshold`], but without spans
    /// (the breakdown costs recording; the detection costs one compare).
    pub trace_sample_rate: u32,
    /// End-to-end latency at or above which a request is captured in the
    /// slow-query ring regardless of sampling.
    pub slow_query_threshold: Duration,
    /// Capacity of each per-tenant trace ring (sampled and slow rings
    /// are bounded separately, so fast traffic cannot evict slow traces).
    pub trace_ring_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            session: SessionConfig::default(),
            plan_cache_capacity: 128,
            result_cache_capacity: 256,
            result_cache_max_bytes: 64 * 1024 * 1024,
            batch: BatchConfig::default(),
            admission: AdmissionConfig::default(),
            tenant_quota: TenantQuotaConfig::default(),
            max_tenants: 0,
            normalize_parameters: true,
            trace_sample_rate: 64,
            slow_query_threshold: Duration::from_millis(100),
            trace_ring_capacity: 128,
        }
    }
}

impl ServerConfig {
    /// Serial engines, zero external latency — unit tests.
    pub fn for_tests() -> Self {
        ServerConfig {
            session: SessionConfig::for_tests(),
            ..Default::default()
        }
    }
}

/// The result of one served query.
#[derive(Debug)]
pub struct ServerQueryResult {
    /// The result rows. Shared (`Arc`) so a result-cache hit replays the
    /// stored table without a deep copy.
    pub table: Arc<Table>,
    /// End-to-end latency of this request (cache lookup + execution).
    pub total_time: Duration,
    /// Execution-only latency (a result-cache hit pays only the lookup).
    pub exec_time: Duration,
    /// Whether the plan came from the prepared-plan cache.
    pub cache_hit: bool,
    /// Whether the *rows* came from the result cache (execution skipped).
    pub result_cache_hit: bool,
    /// The prepared plan this request executed (report included).
    pub prepared: Arc<PreparedQuery>,
}

/// Sharded tenant registry: the data layer's generic
/// [`raven_data::NamespaceMap`] (same shard layout that backs
/// [`CatalogShards`]) plus the slot accounting [`ServerConfig::max_tenants`]
/// needs.
struct TenantRegistry {
    map: NamespaceMap<Arc<Tenant>>,
    /// Live tenant count (the always-present default included), reserved
    /// *before* a creation commits so `max_tenants` is a hard bound even
    /// under races.
    count: AtomicUsize,
}

impl TenantRegistry {
    fn new() -> Self {
        TenantRegistry {
            map: NamespaceMap::new(TENANT_MAP_SHARDS),
            count: AtomicUsize::new(0),
        }
    }

    fn get(&self, id: &TenantId) -> Option<Arc<Tenant>> {
        self.map.get(id.as_str())
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// All tenants, sorted by name.
    fn all(&self) -> Vec<Arc<Tenant>> {
        self.map.values()
    }

    /// Get `id`, or build-and-insert via `make`. The build runs outside
    /// the shard lock (it spawns the tenant's batcher thread); losers of
    /// a creation race drop their build, release their slot reservation,
    /// and adopt the winner's.
    fn get_or_insert_with(
        &self,
        id: &TenantId,
        max_tenants: usize,
        make: impl FnOnce() -> Tenant,
    ) -> Result<Arc<Tenant>> {
        if let Some(found) = self.get(id) {
            return Ok(found);
        }
        // Reserve a slot first: max_tenants is a hard bound, not a hint.
        if max_tenants > 0 {
            let reserved = self
                .count
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                    (c < max_tenants).then_some(c + 1)
                });
            if reserved.is_err() {
                // Re-check under the race: the tenant may exist already
                // (its creator holds the slot), which is not an error.
                if let Some(found) = self.get(id) {
                    return Ok(found);
                }
                return Err(ServerError::Overloaded(format!(
                    "tenant limit reached ({max_tenants}); tenant {id} not created"
                )));
            }
        } else {
            self.count.fetch_add(1, Ordering::SeqCst);
        }
        match self.map.try_insert(id.as_str(), Arc::new(make())) {
            Ok(fresh) => Ok(fresh),
            Err(existing) => {
                // Lost the race: release our reservation, adopt the winner.
                self.count.fetch_sub(1, Ordering::SeqCst);
                Ok(existing)
            }
        }
    }
}

/// Shared serving state: a registry of per-tenant shards plus the
/// server-wide admission ring.
///
/// One `ServerState` (wrapped in an `Arc`) is shared by any number of
/// worker/client threads; all methods take `&self`. Per the paper's
/// north star — inference "serving heavy traffic" inside the DBMS — the
/// throughput levers (prepared-plan cache, deterministic result cache,
/// micro-batching) now apply per tenant, so many model namespaces share
/// one engine without sharing fate: a mutation in one tenant invalidates
/// nothing elsewhere, and a tenant that exhausts its quota is rejected
/// at its own boundary.
pub struct ServerState {
    tenants: TenantRegistry,
    /// Namespaced catalogs backing the tenants — the data-layer view of
    /// the same namespaces ([`raven_data::CatalogShards`]).
    catalogs: CatalogShards,
    /// Always-present default tenant, resolved without a registry lookup.
    default_tenant: Arc<Tenant>,
    admission: AdmissionController,
    /// Server-wide trace sequence counter, shared by every tenant's
    /// [`raven_obs::TraceSink`] so aggregate trace views interleave
    /// tenants in capture order.
    trace_seq: Arc<AtomicU64>,
    config: ServerConfig,
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new(ServerConfig::default())
    }
}

impl ServerState {
    /// Fresh server: empty catalog, empty model store (default tenant).
    pub fn new(config: ServerConfig) -> Self {
        let scorer = Arc::new(RavenScorer::new(config.session.scorer.clone()));
        ServerState::from_parts(
            Arc::new(Catalog::new()),
            Arc::new(ModelStore::new()),
            scorer,
            config,
        )
    }

    /// A server whose default tenant wraps an existing session's catalog,
    /// models, and warm scorer caches (e.g. train interactively, then
    /// serve).
    pub fn from_session(session: &RavenSession, config: ServerConfig) -> Self {
        ServerState::from_parts(
            session.catalog_shared(),
            session.store_shared(),
            session.scorer_shared(),
            config,
        )
    }

    /// A server whose default tenant is assembled from explicit shared
    /// parts.
    pub fn from_parts(
        catalog: Arc<Catalog>,
        store: Arc<ModelStore>,
        scorer: Arc<RavenScorer>,
        config: ServerConfig,
    ) -> Self {
        let catalogs = CatalogShards::new(TENANT_MAP_SHARDS);
        let default_id = TenantId::default();
        let default_catalog = catalogs.get_or_insert_with(default_id.as_str(), || catalog.clone());
        let trace_seq = Arc::new(AtomicU64::new(0));
        let default_tenant = Arc::new(Tenant::from_parts(
            default_id.clone(),
            default_catalog,
            store,
            scorer,
            config.tenant_quota.clone(),
            config.clone(),
            trace_seq.clone(),
        ));
        let tenants = TenantRegistry::new();
        // Seed the always-present default tenant. It occupies a slot like
        // any other tenant — `max_tenants` caps *live tenants total*, so
        // `max_tenants: 4` means the default plus three more.
        tenants
            .map
            .try_insert(default_id.as_str(), default_tenant.clone())
            .ok();
        tenants.count.fetch_add(1, Ordering::SeqCst);
        let admission = AdmissionController::new(config.admission.clone());
        ServerState {
            tenants,
            catalogs,
            default_tenant,
            admission,
            trace_seq,
            config,
        }
    }

    // -----------------------------------------------------------------
    // Tenant resolution.

    /// The always-present default tenant.
    pub fn default_tenant(&self) -> &Arc<Tenant> {
        &self.default_tenant
    }

    /// Resolve `tenant`, creating its shard on first use (empty catalog,
    /// empty model store, fresh caches, its own quota). Fails typed on an
    /// invalid name ([`ServerError::BadRequest`]) or when
    /// [`ServerConfig::max_tenants`] is reached
    /// ([`ServerError::Overloaded`]).
    pub fn tenant(&self, tenant: &str) -> Result<Arc<Tenant>> {
        self.tenant_with_quota(tenant, self.config.tenant_quota.clone())
    }

    /// [`ServerState::tenant`], but a tenant created by *this* call gets
    /// `quota` instead of the configured default. If the tenant already
    /// exists its quota is unchanged.
    pub fn tenant_with_quota(&self, tenant: &str, quota: TenantQuotaConfig) -> Result<Arc<Tenant>> {
        self.tenant_with_config(tenant, quota, self.config.clone())
    }

    /// [`ServerState::tenant`], but a tenant created by *this* call gets
    /// `batch` as its micro-batching policy instead of the configured
    /// default — hot tenants with measured-cheap models can run a wider
    /// adaptive window while a latency-critical tenant keeps a tight
    /// fixed one. If the tenant already exists its policy is unchanged.
    pub fn tenant_with_batch(&self, tenant: &str, batch: BatchConfig) -> Result<Arc<Tenant>> {
        let mut config = self.config.clone();
        config.batch = batch;
        self.tenant_with_config(tenant, self.config.tenant_quota.clone(), config)
    }

    fn tenant_with_config(
        &self,
        tenant: &str,
        quota: TenantQuotaConfig,
        config: ServerConfig,
    ) -> Result<Arc<Tenant>> {
        if tenant == DEFAULT_TENANT {
            return Ok(self.default_tenant.clone());
        }
        let id = TenantId::new(tenant)?;
        if let Some(found) = self.tenants.get(&id) {
            return Ok(found);
        }
        self.tenants
            .get_or_insert_with(&id, self.config.max_tenants, || {
                // Everything the tenant owns — including its catalog's
                // registration in the shared namespace map — is created
                // only *after* the max_tenants reservation succeeded, so
                // a rejected creation leaks nothing: a client spraying
                // fresh names past the cap must not grow CatalogShards
                // (or anything else) unboundedly.
                Tenant::from_parts(
                    id.clone(),
                    self.catalogs.get_or_create(id.as_str()),
                    Arc::new(ModelStore::new()),
                    Arc::new(RavenScorer::new(config.session.scorer.clone())),
                    quota,
                    config,
                    self.trace_seq.clone(),
                )
            })
    }

    /// Resolve `tenant` without creating it.
    pub fn try_tenant(&self, tenant: &str) -> Option<Arc<Tenant>> {
        if tenant == DEFAULT_TENANT {
            return Some(self.default_tenant.clone());
        }
        self.tenants.get(&TenantId::new(tenant).ok()?)
    }

    /// All live tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.tenants
            .all()
            .iter()
            .map(|t| t.id().as_str().to_string())
            .collect()
    }

    /// Number of live tenants (≥ 1: the default tenant always exists).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The data-layer view of the tenant namespaces.
    pub fn catalog_shards(&self) -> &CatalogShards {
        &self.catalogs
    }

    // -----------------------------------------------------------------
    // Default-tenant conveniences (the pre-tenancy API, unchanged).

    /// The default tenant's table catalog.
    pub fn catalog(&self) -> &Catalog {
        self.default_tenant.catalog()
    }

    /// The default tenant's model store.
    pub fn store(&self) -> &ModelStore {
        self.default_tenant.store()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A session over the default tenant's shared state (for training
    /// flows, EXPLAIN, ad-hoc work); queries through it bypass the plan
    /// cache.
    pub fn session(&self) -> RavenSession {
        self.default_tenant.session()
    }

    /// A session over `tenant`'s shared state (created on first use).
    pub fn session_for(&self, tenant: &str) -> Result<RavenSession> {
        Ok(self.tenant(tenant)?.session())
    }

    /// Register a table in the default tenant. Errors if the name is
    /// taken.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        self.default_tenant.register_table(name, table)
    }

    /// Register a table in `tenant` (created on first use).
    pub fn register_table_in(&self, tenant: &str, name: &str, table: Table) -> Result<()> {
        self.tenant(tenant)?.register_table(name, table)
    }

    /// Replace (or insert) a table in the default tenant, invalidating
    /// its dependent plans and memoized results.
    pub fn replace_table(&self, name: &str, table: Table) {
        self.default_tenant.replace_table(name, table);
    }

    /// Replace (or insert) a table in `tenant`. Only that tenant's
    /// caches are invalidated.
    pub fn replace_table_in(&self, tenant: &str, name: &str, table: Table) -> Result<()> {
        self.tenant(tenant)?.replace_table(name, table);
        Ok(())
    }

    /// Store a model in the default tenant (new version if the name
    /// exists), invalidating its dependent plans, inference sessions,
    /// and memoized results.
    pub fn store_model(&self, name: &str, pipeline: Pipeline) -> Result<u32> {
        self.default_tenant.store_model(name, pipeline)
    }

    /// Store a model in `tenant`. Only that tenant's caches are
    /// invalidated — the serving-layer half of the paper's transactional
    /// model updates, now tenant-scoped.
    pub fn store_model_in(&self, tenant: &str, name: &str, pipeline: Pipeline) -> Result<u32> {
        self.tenant(tenant)?.store_model(name, pipeline)
    }

    /// Prepare `sql` in the default tenant (parse → bind → optimize),
    /// consulting its plan cache. Returns the prepared plan and whether
    /// it was a cache hit.
    pub fn prepare(&self, sql: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        self.default_tenant.prepare(sql)
    }

    /// Prepare `sql` in `tenant` (created on first use).
    pub fn prepare_in(&self, tenant: &str, sql: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        self.tenant(tenant)?.prepare(sql)
    }

    /// Serve one SQL query in the default tenant (no explicit deadline;
    /// both admission rings still apply).
    pub fn execute(&self, sql: &str) -> Result<ServerQueryResult> {
        self.serve(sql, None)
    }

    /// Serve one SQL query in `tenant` (no explicit deadline).
    pub fn execute_in(&self, tenant: &str, sql: &str) -> Result<ServerQueryResult> {
        self.serve_in(tenant, sql, None)
    }

    /// Serve one SQL query in the default tenant under admission control
    /// and an optional deadline.
    pub fn serve(&self, sql: &str, deadline: Option<Duration>) -> Result<ServerQueryResult> {
        self.serve_shard(&self.default_tenant, sql, deadline)
    }

    /// Serve one SQL query in `tenant` under two admission rings and an
    /// optional deadline.
    ///
    /// The request first acquires the **tenant quota** permit
    /// ([`ServerConfig::tenant_quota`]) — so a tenant saturating its own
    /// allowance is rejected with a typed [`ServerError::Overloaded`]
    /// before it can consume server-wide capacity — then the **global**
    /// permit ([`ServerConfig::admission`]), then executes with a
    /// cancellation token carrying the deadline. `deadline` falls back
    /// to [`AdmissionConfig::default_deadline`].
    pub fn serve_in(
        &self,
        tenant: &str,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<ServerQueryResult> {
        let shard = self.tenant(tenant)?;
        self.serve_shard(&shard, sql, deadline)
    }

    /// Serve one literal-SQL query **inline from warm caches**, or
    /// decline — the reactor's fast path. Never blocks, never executes,
    /// never creates a tenant: a cold cache, a saturated admission ring,
    /// an unknown tenant, or a reply bigger than `max_bytes` all return
    /// `None`, and the caller dispatches to the executor pool, which
    /// repeats the probes with full accounting. A committed call is
    /// counter-for-counter identical to a pooled result-cache hit.
    pub fn try_serve_cached_in(
        &self,
        tenant: &str,
        sql: &str,
        deadline: Option<Duration>,
        max_bytes: usize,
    ) -> Option<ServerQueryResult> {
        let shard = self.try_tenant(tenant)?;
        let start = Instant::now();
        let deadline_at = deadline
            .or(self.config.admission.default_deadline)
            .map(|d| start + d);
        shard.serve_cached_fast(sql, start, deadline_at, max_bytes, &self.admission)
    }

    /// [`ServerState::try_serve_cached_in`] for the pre-parameterized
    /// wire path.
    pub fn try_serve_cached_params_in(
        &self,
        tenant: &str,
        template: &str,
        params: &[Value],
        deadline: Option<Duration>,
        max_bytes: usize,
    ) -> Option<ServerQueryResult> {
        let shard = self.try_tenant(tenant)?;
        let start = Instant::now();
        let deadline_at = deadline
            .or(self.config.admission.default_deadline)
            .map(|d| start + d);
        shard.serve_cached_fast_params(
            template,
            params,
            start,
            deadline_at,
            max_bytes,
            &self.admission,
        )
    }

    /// The shared serve shell: resolve the effective deadline, begin the
    /// request trace, clear both admission rings, record the per-request
    /// outcome, and run `body` with the permits held. Exists once so the
    /// ring ordering and the outcome accounting (each request is
    /// `admitted` or in exactly one rejection bucket — the invariant
    /// stats reconcile on) cannot drift between the literal-SQL and
    /// parameterized paths. The trace is finished here too — rejected
    /// and failed requests get captured (sampled or slow) like served
    /// ones, with whatever spans they accumulated before the error.
    fn admit_and_run(
        &self,
        shard: &Tenant,
        sql: &str,
        deadline: Option<Duration>,
        body: impl FnOnce(Instant, Option<Instant>, &SpanRecorder) -> Result<ServerQueryResult>,
    ) -> Result<ServerQueryResult> {
        let start = Instant::now();
        let deadline_at = deadline
            .or(self.config.admission.default_deadline)
            .map(|d| start + d);
        let trace = shard.trace_sink().begin();
        // Ring 1 (tenant quota) before ring 2 (global): a permit held at
        // the global ring while blocked on a tenant quota would let a
        // saturated tenant occupy server-wide capacity. Admission
        // rejections are recorded as per-tenant outcomes, not query
        // errors: the request was never executed.
        let rings = {
            let _span = trace.span("tenant-quota-wait");
            shard.quota().admit(deadline_at)
        }
        .and_then(|tenant_permit| {
            let _span = trace.span("global-admission-wait");
            Ok((tenant_permit, self.admission.admit(deadline_at)?))
        });
        let _permits = match rings {
            Ok(permits) => permits,
            Err(e) => {
                shard.stats_recorder().record_rejection(&e);
                shard
                    .trace_sink()
                    .finish(trace, shard.id().as_str(), sql, start.elapsed());
                return Err(e);
            }
        };
        shard.stats_recorder().record_admitted();
        let outcome = body(start, deadline_at, &trace);
        if outcome.is_err() {
            shard.stats_recorder().record_error();
        }
        let total = match &outcome {
            Ok(result) => result.total_time,
            Err(_) => start.elapsed(),
        };
        shard
            .trace_sink()
            .finish(trace, shard.id().as_str(), sql, total);
        outcome
    }

    fn serve_shard(
        &self,
        shard: &Arc<Tenant>,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<ServerQueryResult> {
        self.admit_and_run(shard, sql, deadline, |start, deadline_at, trace| {
            shard.execute_inner(sql, start, deadline_at, trace)
        })
    }

    /// Serve a pre-parameterized statement in the default tenant: a
    /// template containing `?` placeholders plus its positional argument
    /// values (the [`crate::proto::Request::QueryParams`] wire path).
    pub fn serve_with_params(
        &self,
        template: &str,
        params: &[Value],
        deadline: Option<Duration>,
    ) -> Result<ServerQueryResult> {
        self.serve_with_params_shard(&self.default_tenant, template, params, deadline)
    }

    /// Serve a pre-parameterized statement in `tenant`, under the same
    /// two admission rings as [`ServerState::serve_in`].
    pub fn serve_with_params_in(
        &self,
        tenant: &str,
        template: &str,
        params: &[Value],
        deadline: Option<Duration>,
    ) -> Result<ServerQueryResult> {
        let shard = self.tenant(tenant)?;
        self.serve_with_params_shard(&shard, template, params, deadline)
    }

    fn serve_with_params_shard(
        &self,
        shard: &Arc<Tenant>,
        template: &str,
        params: &[Value],
        deadline: Option<Duration>,
    ) -> Result<ServerQueryResult> {
        self.admit_and_run(shard, template, deadline, |start, deadline_at, trace| {
            shard.execute_params_inner(template, params, start, deadline_at, trace)
        })
    }

    /// Score one raw feature row against `model` via the default
    /// tenant's micro-batcher (blocks until the coalesced batch
    /// completes).
    pub fn score_row(&self, model: &str, row: Vec<f64>) -> Result<f64> {
        self.default_tenant.score_row(model, row)
    }

    /// Score one raw feature row in `tenant` (created on first use).
    pub fn score_row_in(&self, tenant: &str, model: &str, row: Vec<f64>) -> Result<f64> {
        self.tenant(tenant)?.score_row(model, row)
    }

    /// [`ServerState::score_row`] under an SLO: the batcher admits,
    /// queues, and waits only as long as `deadline` (or the configured
    /// `admission.default_deadline`) allows, shedding typed
    /// [`ServerError::DeadlineExceeded`] otherwise.
    pub fn score_row_with_deadline(
        &self,
        model: &str,
        row: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<f64> {
        self.default_tenant
            .score_row_with_deadline(model, row, deadline)
    }

    /// [`ServerState::score_row_with_deadline`] in `tenant` (created on
    /// first use).
    pub fn score_row_with_deadline_in(
        &self,
        tenant: &str,
        model: &str,
        row: Vec<f64>,
        deadline: Option<Duration>,
    ) -> Result<f64> {
        self.tenant(tenant)?
            .score_row_with_deadline(model, row, deadline)
    }

    // -----------------------------------------------------------------
    // Observability.

    /// The default tenant's plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.default_tenant.plan_cache_stats()
    }

    /// The default tenant's result-cache counters.
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.default_tenant.result_cache_stats()
    }

    /// The default tenant's micro-batcher counters.
    pub fn batcher_stats(&self) -> BatcherStats {
        self.default_tenant.batcher_stats()
    }

    /// Raw counters of the server-wide (global-ring) admission
    /// controller. Per-request outcomes — which include tenant-ring
    /// rejections — live in each tenant's snapshot.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// One tenant's full observability snapshot (`None` if the tenant
    /// does not exist; never creates it).
    pub fn tenant_stats(&self, tenant: &str) -> Option<StatsSnapshot> {
        self.try_tenant(tenant).map(|t| t.snapshot())
    }

    /// One tenant's unified metric snapshot, or — with `tenant` empty —
    /// the cross-tenant aggregate: counters and log2 histograms merge
    /// exactly (bucket-wise sums), unlike averaged percentiles. `None`
    /// if a named tenant does not exist (never creates it).
    pub fn metrics_snapshot(&self, tenant: &str) -> Option<RegistrySnapshot> {
        if tenant.is_empty() {
            let mut merged = RegistrySnapshot::default();
            for shard in self.tenants.all() {
                merged.merge(&shard.metrics_snapshot());
            }
            return Some(merged);
        }
        self.try_tenant(tenant).map(|t| t.metrics_snapshot())
    }

    /// Prometheus-style text exposition of [`ServerState::metrics_snapshot`]
    /// — the body of the `Metrics` wire frame. A named tenant's series
    /// carry a `tenant` label; the aggregate (empty `tenant`) carries
    /// none.
    pub fn metrics_text(&self, tenant: &str) -> Option<String> {
        self.metrics_snapshot(tenant).map(|s| s.render(tenant))
    }

    /// The most recently captured slow queries, newest first: one
    /// tenant's slow ring, or (empty `tenant`) every tenant's rings
    /// interleaved in capture order via the shared trace sequence.
    pub fn slow_queries(&self, tenant: &str, limit: usize) -> Option<Vec<Arc<Trace>>> {
        self.collect_traces(tenant, limit, |t, n| t.trace_sink().recent_slow(n))
    }

    /// The most recently head-sampled request traces, newest first.
    pub fn recent_traces(&self, tenant: &str, limit: usize) -> Option<Vec<Arc<Trace>>> {
        self.collect_traces(tenant, limit, |t, n| t.trace_sink().recent(n))
    }

    fn collect_traces(
        &self,
        tenant: &str,
        limit: usize,
        pick: impl Fn(&Tenant, usize) -> Vec<Arc<Trace>>,
    ) -> Option<Vec<Arc<Trace>>> {
        if tenant.is_empty() {
            let mut all: Vec<Arc<Trace>> = Vec::new();
            for shard in self.tenants.all() {
                all.extend(pick(&shard, limit));
            }
            all.sort_by_key(|t| std::cmp::Reverse(t.seq));
            all.truncate(limit);
            return Some(all);
        }
        self.try_tenant(tenant).map(|t| pick(&t, limit))
    }

    /// Aggregate observability snapshot across every tenant: counters
    /// summed, latency percentiles recomputed over the merged recent
    /// windows. With only the default tenant live this equals its own
    /// snapshot (modulo window timing).
    pub fn stats(&self) -> StatsSnapshot {
        let tenants = self.tenants.all();
        let mut samples: Vec<u64> = Vec::new();
        let mut merged: Option<StatsSnapshot> = None;
        for tenant in &tenants {
            // One lock per tenant: its counters and its latency samples
            // are read together, so they stay mutually consistent.
            let (snap, tenant_samples) = tenant.snapshot_with_samples();
            samples.extend(tenant_samples);
            merged = Some(match merged.take() {
                None => snap,
                Some(mut acc) => {
                    acc.absorb(&snap);
                    acc
                }
            });
        }
        let mut merged = merged.unwrap_or_else(|| self.default_tenant.snapshot());
        merged.latency = LatencySummary::from_samples(samples);
        merged.queries_per_sec = if merged.uptime.as_secs_f64() > 0.0 {
            merged.queries as f64 / merged.uptime.as_secs_f64()
        } else {
            0.0
        };
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel};

    fn linear(w: Vec<f64>, b: f64) -> Pipeline {
        let steps = (0..w.len())
            .map(|i| FeatureStep::new(format!("x{i}"), Transform::Identity))
            .collect();
        Pipeline::new(
            steps,
            Estimator::Linear(LinearModel::new(w, b, LinearKind::Regression).unwrap()),
        )
        .unwrap()
    }

    fn table_of(n: i64) -> Table {
        Table::try_new(
            Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
            vec![Column::Float64((0..n).map(|i| i as f64).collect())],
        )
        .unwrap()
    }

    fn server_with_table() -> ServerState {
        let server = ServerState::new(ServerConfig::for_tests());
        server.register_table("t", table_of(100)).unwrap();
        server.store_model("m", linear(vec![1.0], 0.0)).unwrap();
        server
    }

    const SQL: &str = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                       WITH (s FLOAT) AS p WHERE p.s > 49";

    #[test]
    fn prepare_once_execute_many() {
        let server = server_with_table();
        let first = server.execute(SQL).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.result_cache_hit, "first execution must run");
        assert_eq!(first.table.num_rows(), 50);
        for _ in 0..4 {
            let again = server.execute(SQL).unwrap();
            assert!(again.cache_hit, "repeat execution must hit the plan cache");
            assert!(
                again.result_cache_hit,
                "identical deterministic repeat must hit the result cache"
            );
            assert_eq!(again.table.num_rows(), 50);
            assert!(
                Arc::ptr_eq(&first.table, &again.table),
                "a result hit replays the stored table, no copy"
            );
        }
        let stats = server.plan_cache_stats();
        assert_eq!(stats.preparations, 1, "optimization ran once");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        let results = server.result_cache_stats();
        assert_eq!(results.executions, 1, "execution ran once: {results}");
        assert_eq!((results.hits, results.misses), (4, 1));
        let snap = server.stats();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.result_cache.hits, 4);
        assert_eq!(snap.admission.admitted, 5, "every request was admitted");
        assert!(snap.latency.max >= snap.latency.p50);
    }

    #[test]
    fn model_update_invalidates_dependent_plans() {
        let server = server_with_table();
        let v1 = server.execute(SQL).unwrap();
        assert_eq!(v1.table.num_rows(), 50);
        // New model scores every row at 100: the filter keeps all rows.
        server.store_model("m", linear(vec![0.0], 100.0)).unwrap();
        let v2 = server.execute(SQL).unwrap();
        assert!(!v2.cache_hit, "model update must invalidate the plan");
        assert!(
            !v2.result_cache_hit,
            "model update must invalidate the memoized result"
        );
        assert_eq!(v2.table.num_rows(), 100);
        assert_eq!(server.plan_cache_stats().invalidations, 1);
        assert_eq!(server.result_cache_stats().invalidations, 1);
    }

    #[test]
    fn table_replacement_invalidates_dependent_plans() {
        let server = server_with_table();
        server.execute(SQL).unwrap();
        server.replace_table("t", table_of(200));
        let result = server.execute(SQL).unwrap();
        assert!(!result.cache_hit);
        assert!(!result.result_cache_hit);
        assert_eq!(result.table.num_rows(), 150);
        assert_eq!(server.result_cache_stats().invalidations, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut config = ServerConfig::for_tests();
        config.plan_cache_capacity = 0;
        config.result_cache_capacity = 0;
        let server = ServerState::new(config);
        server.register_table("t", table_of(2)).unwrap();
        server.store_model("m", linear(vec![1.0], 0.0)).unwrap();
        let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p";
        assert!(!server.execute(sql).unwrap().cache_hit);
        let second = server.execute(sql).unwrap();
        assert!(!second.cache_hit);
        assert!(
            !second.result_cache_hit,
            "capacity 0 must disable result caching"
        );
        let results = server.result_cache_stats();
        assert_eq!(
            (results.hits, results.misses, results.executions),
            (0, 0, 0)
        );
    }

    #[test]
    fn distinct_parameter_values_are_distinct_result_entries() {
        // 1 template plan, N constants: the plan cache shares one entry,
        // the result cache keys each bound-parameter variant separately —
        // and each repeat of the same constant hits.
        let server = server_with_table();
        for threshold in [10, 20, 30] {
            let sql = format!(
                "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                 WITH (s FLOAT) AS p WHERE p.s > {threshold}"
            );
            let first = server.execute(&sql).unwrap();
            assert!(!first.result_cache_hit);
            assert_eq!(first.table.num_rows(), (99 - threshold) as usize);
            let again = server.execute(&sql).unwrap();
            assert!(again.result_cache_hit, "repeat of threshold {threshold}");
            assert_eq!(again.table.num_rows(), (99 - threshold) as usize);
        }
        assert_eq!(server.plan_cache_stats().preparations, 1);
        let results = server.result_cache_stats();
        assert_eq!(results.executions, 3, "one execution per distinct constant");
        assert_eq!(results.hits, 3);
    }

    #[test]
    fn serve_with_params_rides_the_result_cache() {
        let server = server_with_table();
        let template = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                        WITH (s FLOAT) AS p WHERE p.s > ?";
        let first = server
            .serve_with_params(template, &[Value::Float64(49.0)], None)
            .unwrap();
        assert!(!first.result_cache_hit);
        let again = server
            .serve_with_params(template, &[Value::Float64(49.0)], None)
            .unwrap();
        assert!(again.result_cache_hit);
        assert_eq!(first.table.num_rows(), again.table.num_rows());
        // And the literal spelling of the same request shares the entry:
        // normalization binds the same template to the same values.
        let literal = server
            .execute(
                "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                 WITH (s FLOAT) AS p WHERE p.s > 49.0",
            )
            .unwrap();
        assert!(
            literal.result_cache_hit,
            "literal spelling must reuse the parameterized result"
        );
        assert_eq!(server.result_cache_stats().executions, 1);
    }

    #[test]
    fn errors_are_counted_and_typed() {
        let server = server_with_table();
        assert!(matches!(
            server.execute("SELECT * FROM missing"),
            Err(ServerError::Sql(_))
        ));
        assert_eq!(server.stats().errors, 1);
    }

    #[test]
    fn zero_deadline_is_rejected_typed() {
        let server = server_with_table();
        // An already-expired deadline never reaches execution; the
        // rejection lands in the tenant's per-request outcome counters.
        assert!(matches!(
            server.serve(SQL, Some(Duration::ZERO)),
            Err(ServerError::DeadlineExceeded(_))
        ));
        assert_eq!(server.stats().admission.rejected_deadline, 1);
        // A generous deadline serves normally, clearing both rings.
        let ok = server.serve(SQL, Some(Duration::from_secs(60))).unwrap();
        assert_eq!(ok.table.num_rows(), 50);
        assert_eq!(server.stats().admission.admitted, 1);
        assert_eq!(
            server.admission_stats().admitted,
            1,
            "the global ring granted exactly one permit"
        );
    }

    #[test]
    fn session_view_shares_state() {
        let server = server_with_table();
        let session = server.session();
        let result = session.query("SELECT x0 FROM t WHERE x0 > 97").unwrap();
        assert_eq!(result.table.num_rows(), 2);
    }

    // -----------------------------------------------------------------
    // Tracing and metrics.

    #[test]
    fn sampled_requests_record_stage_breakdowns() {
        let mut config = ServerConfig::for_tests();
        config.trace_sample_rate = 1; // sample every request
        config.slow_query_threshold = Duration::ZERO; // everything is "slow"
        let server = ServerState::new(config);
        server.register_table("t", table_of(100)).unwrap();
        server.store_model("m", linear(vec![1.0], 0.0)).unwrap();
        server.execute(SQL).unwrap();
        server.execute(SQL).unwrap();
        let traces = server.recent_traces(DEFAULT_TENANT, 8).unwrap();
        assert_eq!(traces.len(), 2, "both requests were sampled");
        // Newest first: [0] is the warm repeat, [1] the cold request.
        let cold = &traces[1];
        let names: Vec<&str> = cold.spans.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "tenant-quota-wait",
            "global-admission-wait",
            "normalize",
            "plan-cache-lookup",
            "parse-bind",
            "optimize",
            "fingerprint",
            "result-cache-lookup",
            "op:scan",
        ] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        assert!(cold.stage_total_us() <= cold.total_us);
        // The warm repeat hits both caches: no parse, no execution.
        let warm = &traces[0];
        let warm_names: Vec<&str> = warm.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(!warm_names.contains(&"parse-bind"), "{warm_names:?}");
        assert!(
            !warm_names.iter().any(|n| n.starts_with("op:")),
            "result-cache hit must skip execution: {warm_names:?}"
        );
        assert!(warm_names.contains(&"result-cache-lookup"));
        // A zero slow threshold lands every request in the slow ring;
        // the aggregate view interleaves tenants newest-first.
        let slow = server.slow_queries("", 8).unwrap();
        assert_eq!(slow.len(), 2);
        assert!(slow[0].seq > slow[1].seq, "newest first");
        assert!(slow[0].slow && slow[0].sql == SQL);
        assert!(slow[0].render().contains("result-cache-lookup"));
        // And the unified metrics carry the request counters.
        let text = server.metrics_text("").unwrap();
        assert!(text.contains("raven_queries_total 2"), "{text}");
        assert!(
            server.metrics_text("ghost").is_none(),
            "metrics must not create tenants"
        );
    }

    #[test]
    fn tracing_disabled_captures_nothing() {
        let mut config = ServerConfig::for_tests();
        config.trace_sample_rate = 0;
        config.slow_query_threshold = Duration::ZERO;
        let server = ServerState::new(config);
        server.register_table("t", table_of(10)).unwrap();
        server.store_model("m", linear(vec![1.0], 0.0)).unwrap();
        server.execute(SQL).unwrap();
        assert!(server.recent_traces("", 8).unwrap().is_empty());
        assert!(server.slow_queries("", 8).unwrap().is_empty());
    }

    // -----------------------------------------------------------------
    // Tenancy.

    #[test]
    fn default_tenant_always_exists_and_names_are_validated() {
        let server = ServerState::new(ServerConfig::for_tests());
        assert_eq!(server.tenants(), vec![DEFAULT_TENANT.to_string()]);
        assert_eq!(server.tenant_count(), 1);
        assert!(server.try_tenant("ghost").is_none());
        assert!(matches!(
            server.tenant("no spaces allowed"),
            Err(ServerError::BadRequest(_))
        ));
        server.tenant("acme").unwrap();
        assert_eq!(
            server.tenants(),
            vec!["acme".to_string(), DEFAULT_TENANT.to_string()]
        );
        // Resolution is idempotent: one shard per name.
        let a = server.tenant("acme").unwrap();
        let b = server.tenant("acme").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(server.tenant_count(), 2);
        // The data layer sees the same namespaces.
        assert!(server.catalog_shards().contains("acme"));
    }

    #[test]
    fn same_named_objects_in_two_tenants_stay_isolated() {
        let server = ServerState::new(ServerConfig::for_tests());
        for (tenant, weight, rows) in [("alpha", 1.0, 100), ("beta", 2.0, 50)] {
            server
                .register_table_in(tenant, "t", table_of(rows))
                .unwrap();
            server
                .store_model_in(tenant, "m", linear(vec![weight], 0.0))
                .unwrap();
        }
        let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p";
        // alpha: identity over 100 rows; beta: doubled over 50 rows.
        assert_eq!(
            server.execute_in("alpha", sql).unwrap().table.num_rows(),
            100
        );
        assert_eq!(server.execute_in("beta", sql).unwrap().table.num_rows(), 50);
        // Warm both result caches, then swap alpha's model: beta's
        // caches are untouched and its repeat still hits.
        assert!(server.execute_in("beta", sql).unwrap().result_cache_hit);
        server
            .store_model_in("alpha", "m", linear(vec![0.0], 7.0))
            .unwrap();
        let alpha = server.tenant_stats("alpha").unwrap();
        let beta = server.tenant_stats("beta").unwrap();
        assert_eq!(alpha.plan_cache.invalidations, 1);
        assert_eq!(alpha.result_cache.invalidations, 1);
        assert_eq!(beta.plan_cache.invalidations, 0, "cross-tenant leak");
        assert_eq!(beta.result_cache.invalidations, 0, "cross-tenant leak");
        let beta_again = server.execute_in("beta", sql).unwrap();
        assert!(beta_again.cache_hit && beta_again.result_cache_hit);
        // The default tenant never saw any of it.
        assert_eq!(server.stats().errors, 0);
        assert!(server
            .try_tenant(DEFAULT_TENANT)
            .unwrap()
            .catalog()
            .table_names()
            .is_empty());
    }

    #[test]
    fn tenant_quota_rejects_only_the_saturating_tenant() {
        let mut config = ServerConfig::for_tests();
        config.tenant_quota = TenantQuotaConfig::strict(1);
        let server = Arc::new(ServerState::new(config));
        for tenant in ["noisy", "quiet"] {
            server
                .register_table_in(tenant, "t", table_of(100))
                .unwrap();
            server
                .store_model_in(tenant, "m", linear(vec![1.0], 0.0))
                .unwrap();
        }
        let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p";
        // Hold `noisy`'s single slot at the tenant ring.
        let noisy = server.tenant("noisy").unwrap();
        let held = noisy.quota().admit(None).unwrap();
        assert!(matches!(
            server.serve_in("noisy", sql, None),
            Err(ServerError::Overloaded(_))
        ));
        // `quiet` is admitted and served while `noisy` is saturated.
        assert_eq!(
            server
                .serve_in("quiet", sql, None)
                .unwrap()
                .table
                .num_rows(),
            100
        );
        drop(held);
        assert_eq!(
            server
                .serve_in("noisy", sql, None)
                .unwrap()
                .table
                .num_rows(),
            100
        );
        let noisy_stats = server.tenant_stats("noisy").unwrap();
        let quiet_stats = server.tenant_stats("quiet").unwrap();
        assert_eq!(noisy_stats.admission.rejected_overloaded, 1);
        assert_eq!(quiet_stats.admission.rejected_overloaded, 0);
        assert_eq!(quiet_stats.admission.admitted, 1);
    }

    #[test]
    fn max_tenants_is_a_hard_bound() {
        let mut config = ServerConfig::for_tests();
        config.max_tenants = 2; // default + one more
        let server = ServerState::new(config);
        server.tenant("a").unwrap();
        assert!(matches!(
            server.tenant("b"),
            Err(ServerError::Overloaded(_))
        ));
        // Existing tenants still resolve.
        assert!(server.tenant("a").is_ok());
        assert!(server.tenant(DEFAULT_TENANT).is_ok());
        assert_eq!(server.tenant_count(), 2);
    }

    #[test]
    fn aggregate_stats_sum_across_tenants() {
        let server = ServerState::new(ServerConfig::for_tests());
        for tenant in ["a", "b"] {
            server.register_table_in(tenant, "t", table_of(10)).unwrap();
            server
                .store_model_in(tenant, "m", linear(vec![1.0], 0.0))
                .unwrap();
        }
        let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p";
        for _ in 0..3 {
            server.execute_in("a", sql).unwrap();
        }
        for _ in 0..2 {
            server.execute_in("b", sql).unwrap();
        }
        let aggregate = server.stats();
        assert_eq!(aggregate.queries, 5);
        assert_eq!(aggregate.rows, 50);
        assert_eq!(aggregate.admission.admitted, 5);
        assert_eq!(aggregate.plan_cache.preparations, 2, "one per tenant");
        assert_eq!(server.tenant_stats("a").unwrap().queries, 3);
        assert_eq!(server.tenant_stats("b").unwrap().queries, 2);
        assert!(aggregate.latency.max >= aggregate.latency.p50);
    }
}
