//! `ServerState`: the shared, thread-safe heart of the serving layer.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::batcher::{BatchConfig, BatcherStats, MicroBatcher};
use crate::cache::{PlanCache, PlanCacheStats, PlanKey, PreparedQuery};
use crate::error::{Result, ServerError};
use crate::result_cache::{ResultCache, ResultCacheStats, ResultDeps};
use crate::stats::{ServerStats, StatsSnapshot};
use raven_core::{ModelStore, RavenSession, SessionConfig};
use raven_data::{Catalog, Table, Value};
use raven_ir::{FingerprintBuilder, PlanFingerprint};
use raven_ml::Pipeline;
use raven_relational::{CancelToken, ExecError, SharedExecutor};
use raven_runtime::RavenScorer;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serving configuration: a [`SessionConfig`] (optimizer + engines) plus
/// the serving-only knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Optimizer/executor/scorer configuration shared by every request.
    pub session: SessionConfig,
    /// Maximum prepared plans kept (LRU beyond this). 0 disables the
    /// cache: every request re-optimizes (the bench ablation baseline).
    pub plan_cache_capacity: usize,
    /// Maximum memoized result tables kept (LRU beyond this). 0 disables
    /// result caching: every request executes. Results are cached only
    /// for plans the determinism analysis marks pure, keyed on a
    /// [`PlanFingerprint`] over (optimized plan, bound parameter values,
    /// model/table versions), and invalidated by [`ServerState::store_model`]
    /// and [`ServerState::replace_table`].
    pub result_cache_capacity: usize,
    /// Byte budget across all memoized result tables (approximate
    /// payload bytes; 0 = unbounded). Entry count alone is no memory
    /// bound when entries are whole tables — LRU entries are evicted
    /// until the total fits, and a single result larger than the whole
    /// budget is served but never cached (`too_large` counter).
    pub result_cache_max_bytes: usize,
    /// Micro-batching knobs for point-scoring requests.
    pub batch: BatchConfig,
    /// Admission control for [`ServerState::serve`]: concurrent-execution
    /// limit, queue bound, wait timeout, default deadline.
    pub admission: AdmissionConfig,
    /// Normalize incoming SQL before the plan-cache lookup
    /// ([`mod@crate::normalize`]): literals become `?` placeholders, so
    /// queries differing only in constants share one prepared plan.
    /// Disable to key the cache on exact SQL text (the PR-1 behavior and
    /// the bench ablation baseline).
    pub normalize_parameters: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            session: SessionConfig::default(),
            plan_cache_capacity: 128,
            result_cache_capacity: 256,
            result_cache_max_bytes: 64 * 1024 * 1024,
            batch: BatchConfig::default(),
            admission: AdmissionConfig::default(),
            normalize_parameters: true,
        }
    }
}

impl ServerConfig {
    /// Serial engines, zero external latency — unit tests.
    pub fn for_tests() -> Self {
        ServerConfig {
            session: SessionConfig::for_tests(),
            ..Default::default()
        }
    }
}

/// The result of one served query.
#[derive(Debug)]
pub struct ServerQueryResult {
    /// The result rows. Shared (`Arc`) so a result-cache hit replays the
    /// stored table without a deep copy.
    pub table: Arc<Table>,
    /// End-to-end latency of this request (cache lookup + execution).
    pub total_time: Duration,
    /// Execution-only latency (a result-cache hit pays only the lookup).
    pub exec_time: Duration,
    /// Whether the plan came from the prepared-plan cache.
    pub cache_hit: bool,
    /// Whether the *rows* came from the result cache (execution skipped).
    pub result_cache_hit: bool,
    /// The prepared plan this request executed (report included).
    pub prepared: Arc<PreparedQuery>,
}

/// Shared serving state: catalog + model store + scorer + prepared-plan
/// cache + micro-batcher + stats, everything behind `Arc`s.
///
/// One `ServerState` (wrapped in an `Arc`) is shared by any number of
/// worker/client threads; all methods take `&self`. Per the paper's
/// north star — inference "serving heavy traffic" inside the DBMS — the
/// three throughput levers are (1) the prepared-plan cache, which runs
/// parse → bind → optimize once per distinct query template, (2) the
/// deterministic result cache, which skips execution entirely for exact
/// repeats of pure queries, and (3) the micro-batcher, which turns
/// concurrent point lookups into batched scorer invocations.
pub struct ServerState {
    catalog: Arc<Catalog>,
    store: Arc<ModelStore>,
    scorer: Arc<RavenScorer>,
    executor: SharedExecutor,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    batcher: MicroBatcher,
    admission: AdmissionController,
    stats: ServerStats,
    config: ServerConfig,
}

impl Default for ServerState {
    fn default() -> Self {
        ServerState::new(ServerConfig::default())
    }
}

impl ServerState {
    /// Fresh server: empty catalog, empty model store.
    pub fn new(config: ServerConfig) -> Self {
        let catalog = Arc::new(Catalog::new());
        let store = Arc::new(ModelStore::new());
        let scorer = Arc::new(RavenScorer::new(config.session.scorer.clone()));
        ServerState::from_parts(catalog, store, scorer, config)
    }

    /// A server over an existing session's catalog, models, and warm
    /// scorer caches (e.g. train interactively, then serve).
    pub fn from_session(session: &RavenSession, config: ServerConfig) -> Self {
        ServerState::from_parts(
            session.catalog_shared(),
            session.store_shared(),
            session.scorer_shared(),
            config,
        )
    }

    /// A server over explicit shared parts.
    pub fn from_parts(
        catalog: Arc<Catalog>,
        store: Arc<ModelStore>,
        scorer: Arc<RavenScorer>,
        config: ServerConfig,
    ) -> Self {
        let executor = SharedExecutor::new(
            catalog.clone(),
            scorer.clone() as Arc<dyn raven_relational::Scorer>,
            config.session.exec,
        );
        let batcher = MicroBatcher::new(store.clone(), config.batch.clone());
        let admission = AdmissionController::new(config.admission.clone());
        ServerState {
            catalog,
            store,
            scorer,
            executor,
            plan_cache: PlanCache::new(config.plan_cache_capacity.max(1)),
            result_cache: ResultCache::new(
                config.result_cache_capacity.max(1),
                config.result_cache_max_bytes,
            ),
            batcher,
            admission,
            stats: ServerStats::new(),
            config,
        }
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The model store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A session over this server's shared state (for training flows,
    /// EXPLAIN, ad-hoc work); queries through it bypass the plan cache.
    pub fn session(&self) -> RavenSession {
        RavenSession::from_shared(
            self.catalog.clone(),
            self.store.clone(),
            self.scorer.clone(),
            self.config.session.clone(),
        )
    }

    /// Register a table. Errors if the name is taken.
    pub fn register_table(&self, name: &str, table: Table) -> Result<()> {
        self.catalog
            .register(name, table)
            .map_err(|e| ServerError::Data(e.to_string()))
    }

    /// Replace (or insert) a table, invalidating every cached plan that
    /// scans it and every memoized result computed from it (the catalog
    /// generation it advances also retires the old fingerprints).
    pub fn replace_table(&self, name: &str, table: Table) {
        self.catalog.register_or_replace(name, table);
        self.plan_cache.invalidate_table(name);
        self.result_cache.invalidate_table(name);
    }

    /// Store a model (new version if the name exists). Cached plans bind
    /// model pipelines at prepare time, so every plan referencing the
    /// model is invalidated, as are its cached inference sessions and
    /// every memoized result it scored — the serving-layer half of the
    /// paper's transactional model updates.
    pub fn store_model(&self, name: &str, pipeline: Pipeline) -> Result<u32> {
        let version = self.store.store(name, pipeline);
        self.scorer.invalidate(name);
        self.plan_cache.invalidate_model(name);
        self.result_cache.invalidate_model(name);
        Ok(version)
    }

    /// Prepare `sql` (parse → bind → optimize), consulting the plan
    /// cache. Returns the prepared plan and whether it was a cache hit.
    ///
    /// With [`ServerConfig::normalize_parameters`] on (the default) the
    /// SQL is first normalized to its parameterized template, so warming
    /// the cache with `... WHERE age > 30` also warms it for every other
    /// constant.
    pub fn prepare(&self, sql: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        let (prepared, cache_hit, _params) = self.prepare_normalized(sql)?;
        Ok((prepared, cache_hit))
    }

    /// Normalize (when enabled) and prepare: returns the prepared
    /// template plan, whether it was a cache hit, and the parameter
    /// values extracted from `sql` (empty on the exact-text path).
    fn prepare_normalized(&self, sql: &str) -> Result<(Arc<PreparedQuery>, bool, Vec<Value>)> {
        if self.config.normalize_parameters {
            if let Some(n) = crate::normalize::normalize(sql) {
                match self.prepare_text(&n.template) {
                    Ok((prepared, cache_hit)) if prepared.param_count == n.params.len() => {
                        if n.has_params() {
                            self.stats.record_normalized(cache_hit);
                        }
                        return Ok((prepared, cache_hit, n.params));
                    }
                    // The template didn't prepare (e.g. a literal whose
                    // placeholder type is uninferable, like a bare
                    // `SELECT 5`) or its arity surprised us: fall back to
                    // the exact literal text below.
                    _ => {}
                }
            }
            // Exact-text path, canonicalized: `normalize` declines SQL
            // that already carries `?` placeholders, and canonicalizing
            // here keys it identically to [`ServerState::serve_with_params`]
            // — so `prepare(template)` warms the entry `QueryParams`
            // requests will hit.
            let canonical = crate::normalize::canonicalize(sql).unwrap_or_else(|| sql.to_string());
            let (prepared, cache_hit) = self.prepare_text(&canonical)?;
            return Ok((prepared, cache_hit, Vec::new()));
        }
        let (prepared, cache_hit) = self.prepare_text(sql)?;
        Ok((prepared, cache_hit, Vec::new()))
    }

    /// Prepare exactly this text (template or literal SQL), consulting
    /// the plan cache keyed on it.
    fn prepare_text(&self, sql: &str) -> Result<(Arc<PreparedQuery>, bool)> {
        let key = PlanKey {
            sql: sql.to_string(),
            rules: self.config.session.rules,
            mode: self.config.session.optimizer_mode,
        };
        if self.config.plan_cache_capacity == 0 {
            // Cache disabled: always prepare fresh.
            let prepared = self.prepare_uncached(sql)?;
            self.plan_cache.note_uncached_preparation();
            return Ok((Arc::new(prepared), false));
        }
        self.plan_cache
            .get_or_prepare(key, || self.prepare_uncached(sql))
    }

    fn prepare_uncached(&self, sql: &str) -> Result<PreparedQuery> {
        let start = Instant::now();
        let session = self.session();
        let bound = session.plan(sql)?;
        let (optimized, report) = session.optimize(bound.clone())?;
        Ok(PreparedQuery::from_stages(
            sql,
            &bound,
            optimized,
            report,
            start.elapsed(),
        ))
    }

    /// Serve one SQL query end to end (no explicit deadline; admission
    /// control still applies per [`ServerConfig::admission`]).
    pub fn execute(&self, sql: &str) -> Result<ServerQueryResult> {
        self.serve(sql, None)
    }

    /// Serve one SQL query under admission control and an optional
    /// deadline. The request first acquires an execution permit — a full
    /// queue or a timed-out wait rejects with a typed
    /// [`ServerError::Overloaded`] instead of stalling — then executes
    /// with a [`CancelToken`] carrying the deadline, so an expired
    /// request aborts mid-plan with [`ServerError::DeadlineExceeded`].
    /// `deadline` falls back to [`AdmissionConfig::default_deadline`].
    pub fn serve(&self, sql: &str, deadline: Option<Duration>) -> Result<ServerQueryResult> {
        let start = Instant::now();
        let deadline_at = deadline
            .or(self.config.admission.default_deadline)
            .map(|d| start + d);
        // Admission rejections are counted by the controller, not as
        // query errors: the request was never executed.
        let _permit = self.admission.admit(deadline_at)?;
        let outcome = self.execute_inner(sql, start, deadline_at);
        if outcome.is_err() {
            self.stats.record_error();
        }
        outcome
    }

    /// Snapshot the result-cache epoch. Must happen **before** the plan
    /// this request will execute is resolved (plan-cache lookup): any
    /// model/table mutation after this point bumps the epoch, and the
    /// request's result — possibly computed from the superseded plan or
    /// versions — is then served but never published to the cache.
    fn result_epoch(&self) -> u64 {
        self.result_cache.epoch()
    }

    /// Serve a pre-parameterized statement: a template containing `?`
    /// placeholders plus its positional argument values (the
    /// [`crate::proto::Request::QueryParams`] wire path). The template is
    /// prepared through the plan cache exactly as written — no
    /// normalization pass — and must expect exactly `params.len()`
    /// values; a mismatch is a typed [`ServerError::BadRequest`].
    pub fn serve_with_params(
        &self,
        template: &str,
        params: &[Value],
        deadline: Option<Duration>,
    ) -> Result<ServerQueryResult> {
        let start = Instant::now();
        let deadline_at = deadline
            .or(self.config.admission.default_deadline)
            .map(|d| start + d);
        let _permit = self.admission.admit(deadline_at)?;
        let result_epoch = self.result_epoch();
        let outcome = (|| {
            // Canonicalize spacing so a hand-written template and the
            // normalizer's rendering of the equivalent literal query
            // share one cache entry.
            let canonical =
                crate::normalize::canonicalize(template).unwrap_or_else(|| template.to_string());
            let (prepared, cache_hit) = self.prepare_text(&canonical)?;
            if prepared.param_count != params.len() {
                return Err(ServerError::BadRequest(format!(
                    "statement expects {} parameter(s), got {}",
                    prepared.param_count,
                    params.len()
                )));
            }
            self.run_prepared(
                prepared,
                cache_hit,
                params,
                start,
                deadline_at,
                result_epoch,
            )
        })();
        if outcome.is_err() {
            self.stats.record_error();
        }
        outcome
    }

    fn execute_inner(
        &self,
        sql: &str,
        start: Instant,
        deadline_at: Option<Instant>,
    ) -> Result<ServerQueryResult> {
        let result_epoch = self.result_epoch();
        let (prepared, cache_hit, params) = self.prepare_normalized(sql)?;
        self.run_prepared(
            prepared,
            cache_hit,
            &params,
            start,
            deadline_at,
            result_epoch,
        )
    }

    /// The result-cache key for one request: the optimized plan's
    /// structure, this request's bound parameter values, and the current
    /// version of every model and table the plan depends on (dependency
    /// lists are sorted at prepare time, so the feed order is stable).
    /// Versions make stale entries unreachable even before invalidation
    /// sweeps them out.
    fn result_fingerprint(&self, prepared: &PreparedQuery, params: &[Value]) -> PlanFingerprint {
        let mut builder = FingerprintBuilder::new()
            .plan(&prepared.plan)
            .params(params);
        for model in &prepared.model_deps {
            builder = builder.dependency("model", model, self.store.latest_version(model) as u64);
        }
        for table in &prepared.table_deps {
            builder =
                builder.dependency("table", table, self.catalog.generation(table).unwrap_or(0));
        }
        builder.finish()
    }

    /// Execute a prepared (possibly parameterized) plan: substitute the
    /// parameter values into a throwaway copy of the cached template plan
    /// and run it under the deadline's cancellation token.
    ///
    /// Deterministic plans route through the result cache first: a
    /// fingerprint hit replays the stored table with no execution at all;
    /// a miss executes under single-flight (one execution per hot
    /// fingerprint, however many threads race) and publishes the result
    /// unless an invalidation intervened since `result_epoch`.
    fn run_prepared(
        &self,
        prepared: Arc<PreparedQuery>,
        cache_hit: bool,
        params: &[Value],
        start: Instant,
        deadline_at: Option<Instant>,
        result_epoch: u64,
    ) -> Result<ServerQueryResult> {
        let exec_start = Instant::now();
        let cancel = match deadline_at {
            Some(at) => CancelToken::with_deadline(at),
            None => CancelToken::new(),
        };
        let map_exec_err = |e: ExecError| match e {
            ExecError::Cancelled => ServerError::DeadlineExceeded(format!(
                "query exceeded its deadline after {:?}",
                start.elapsed()
            )),
            e => ServerError::Execution(e.to_string()),
        };
        let caching = self.config.result_cache_capacity > 0;
        let (table, result_cache_hit) = if caching && prepared.determinism.cacheable {
            let fingerprint = self.result_fingerprint(&prepared, params);
            let deps = ResultDeps {
                models: prepared.model_deps.clone(),
                tables: prepared.table_deps.clone(),
            };
            self.result_cache
                .get_or_execute(
                    fingerprint,
                    result_epoch,
                    deps,
                    // Polled while waiting on another thread's in-flight
                    // execution of the same fingerprint: this request's
                    // deadline keeps firing even though it runs no plan.
                    || cancel.check(),
                    || {
                        self.executor
                            .execute_with_params(&prepared.plan, params, &cancel)
                    },
                )
                .map_err(map_exec_err)?
        } else {
            if caching {
                self.result_cache.note_uncacheable();
            }
            let table = self
                .executor
                .execute_with_params(&prepared.plan, params, &cancel)
                .map_err(map_exec_err)?;
            (Arc::new(table), false)
        };
        let exec_time = exec_start.elapsed();
        let total_time = start.elapsed();
        self.stats.record_query(total_time, table.num_rows());
        Ok(ServerQueryResult {
            table,
            total_time,
            exec_time,
            cache_hit,
            result_cache_hit,
            prepared,
        })
    }

    /// Score one raw feature row against `model` via the micro-batcher
    /// (blocks until the coalesced batch completes).
    pub fn score_row(&self, model: &str, row: Vec<f64>) -> Result<f64> {
        self.batcher.score(model, row)
    }

    /// Plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Result-cache counters.
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.result_cache.stats()
    }

    /// Micro-batcher counters.
    pub fn batcher_stats(&self) -> BatcherStats {
        self.batcher.stats()
    }

    /// Admission-control counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Full observability snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot(
            self.plan_cache.stats(),
            self.result_cache.stats(),
            self.scorer.cache_stats(),
            self.batcher.stats(),
            self.admission.stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_data::{Column, DataType, Schema};
    use raven_ml::featurize::Transform;
    use raven_ml::{Estimator, FeatureStep, LinearKind, LinearModel};

    fn linear(w: Vec<f64>, b: f64) -> Pipeline {
        let steps = (0..w.len())
            .map(|i| FeatureStep::new(format!("x{i}"), Transform::Identity))
            .collect();
        Pipeline::new(
            steps,
            Estimator::Linear(LinearModel::new(w, b, LinearKind::Regression).unwrap()),
        )
        .unwrap()
    }

    fn server_with_table() -> ServerState {
        let server = ServerState::new(ServerConfig::for_tests());
        let table = Table::try_new(
            Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
            vec![Column::Float64((0..100).map(|i| i as f64).collect())],
        )
        .unwrap();
        server.register_table("t", table).unwrap();
        server.store_model("m", linear(vec![1.0], 0.0)).unwrap();
        server
    }

    const SQL: &str = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                       WITH (s FLOAT) AS p WHERE p.s > 49";

    #[test]
    fn prepare_once_execute_many() {
        let server = server_with_table();
        let first = server.execute(SQL).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.result_cache_hit, "first execution must run");
        assert_eq!(first.table.num_rows(), 50);
        for _ in 0..4 {
            let again = server.execute(SQL).unwrap();
            assert!(again.cache_hit, "repeat execution must hit the plan cache");
            assert!(
                again.result_cache_hit,
                "identical deterministic repeat must hit the result cache"
            );
            assert_eq!(again.table.num_rows(), 50);
            assert!(
                Arc::ptr_eq(&first.table, &again.table),
                "a result hit replays the stored table, no copy"
            );
        }
        let stats = server.plan_cache_stats();
        assert_eq!(stats.preparations, 1, "optimization ran once");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        let results = server.result_cache_stats();
        assert_eq!(results.executions, 1, "execution ran once: {results}");
        assert_eq!((results.hits, results.misses), (4, 1));
        let snap = server.stats();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.result_cache.hits, 4);
        assert!(snap.latency.max >= snap.latency.p50);
    }

    #[test]
    fn model_update_invalidates_dependent_plans() {
        let server = server_with_table();
        let v1 = server.execute(SQL).unwrap();
        assert_eq!(v1.table.num_rows(), 50);
        // New model scores every row at 100: the filter keeps all rows.
        server.store_model("m", linear(vec![0.0], 100.0)).unwrap();
        let v2 = server.execute(SQL).unwrap();
        assert!(!v2.cache_hit, "model update must invalidate the plan");
        assert!(
            !v2.result_cache_hit,
            "model update must invalidate the memoized result"
        );
        assert_eq!(v2.table.num_rows(), 100);
        assert_eq!(server.plan_cache_stats().invalidations, 1);
        assert_eq!(server.result_cache_stats().invalidations, 1);
    }

    #[test]
    fn table_replacement_invalidates_dependent_plans() {
        let server = server_with_table();
        server.execute(SQL).unwrap();
        let bigger = Table::try_new(
            Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
            vec![Column::Float64((0..200).map(|i| i as f64).collect())],
        )
        .unwrap();
        server.replace_table("t", bigger);
        let result = server.execute(SQL).unwrap();
        assert!(!result.cache_hit);
        assert!(!result.result_cache_hit);
        assert_eq!(result.table.num_rows(), 150);
        assert_eq!(server.result_cache_stats().invalidations, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut config = ServerConfig::for_tests();
        config.plan_cache_capacity = 0;
        config.result_cache_capacity = 0;
        let server = ServerState::new(config);
        let table = Table::try_new(
            Schema::from_pairs(&[("x0", DataType::Float64)]).into_shared(),
            vec![Column::Float64(vec![1.0, 2.0])],
        )
        .unwrap();
        server.register_table("t", table).unwrap();
        server.store_model("m", linear(vec![1.0], 0.0)).unwrap();
        let sql = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) WITH (s FLOAT) AS p";
        assert!(!server.execute(sql).unwrap().cache_hit);
        let second = server.execute(sql).unwrap();
        assert!(!second.cache_hit);
        assert!(
            !second.result_cache_hit,
            "capacity 0 must disable result caching"
        );
        let results = server.result_cache_stats();
        assert_eq!(
            (results.hits, results.misses, results.executions),
            (0, 0, 0)
        );
    }

    #[test]
    fn distinct_parameter_values_are_distinct_result_entries() {
        // 1 template plan, N constants: the plan cache shares one entry,
        // the result cache keys each bound-parameter variant separately —
        // and each repeat of the same constant hits.
        let server = server_with_table();
        for threshold in [10, 20, 30] {
            let sql = format!(
                "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                 WITH (s FLOAT) AS p WHERE p.s > {threshold}"
            );
            let first = server.execute(&sql).unwrap();
            assert!(!first.result_cache_hit);
            assert_eq!(first.table.num_rows(), (99 - threshold) as usize);
            let again = server.execute(&sql).unwrap();
            assert!(again.result_cache_hit, "repeat of threshold {threshold}");
            assert_eq!(again.table.num_rows(), (99 - threshold) as usize);
        }
        assert_eq!(server.plan_cache_stats().preparations, 1);
        let results = server.result_cache_stats();
        assert_eq!(results.executions, 3, "one execution per distinct constant");
        assert_eq!(results.hits, 3);
    }

    #[test]
    fn serve_with_params_rides_the_result_cache() {
        let server = server_with_table();
        let template = "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                        WITH (s FLOAT) AS p WHERE p.s > ?";
        let first = server
            .serve_with_params(template, &[Value::Float64(49.0)], None)
            .unwrap();
        assert!(!first.result_cache_hit);
        let again = server
            .serve_with_params(template, &[Value::Float64(49.0)], None)
            .unwrap();
        assert!(again.result_cache_hit);
        assert_eq!(first.table.num_rows(), again.table.num_rows());
        // And the literal spelling of the same request shares the entry:
        // normalization binds the same template to the same values.
        let literal = server
            .execute(
                "SELECT p.s FROM PREDICT(MODEL = 'm', DATA = t AS d) \
                 WITH (s FLOAT) AS p WHERE p.s > 49.0",
            )
            .unwrap();
        assert!(
            literal.result_cache_hit,
            "literal spelling must reuse the parameterized result"
        );
        assert_eq!(server.result_cache_stats().executions, 1);
    }

    #[test]
    fn errors_are_counted_and_typed() {
        let server = server_with_table();
        assert!(matches!(
            server.execute("SELECT * FROM missing"),
            Err(ServerError::Sql(_))
        ));
        assert_eq!(server.stats().errors, 1);
    }

    #[test]
    fn zero_deadline_is_rejected_typed() {
        let server = server_with_table();
        // An already-expired deadline never reaches execution.
        assert!(matches!(
            server.serve(SQL, Some(Duration::ZERO)),
            Err(ServerError::DeadlineExceeded(_))
        ));
        assert_eq!(server.admission_stats().rejected_deadline, 1);
        // A generous deadline serves normally.
        let ok = server.serve(SQL, Some(Duration::from_secs(60))).unwrap();
        assert_eq!(ok.table.num_rows(), 50);
        assert_eq!(server.admission_stats().admitted, 1);
    }

    #[test]
    fn session_view_shares_state() {
        let server = server_with_table();
        let session = server.session();
        let result = session.query("SELECT x0 FROM t WHERE x0 > 97").unwrap();
        assert_eq!(result.table.num_rows(), 2);
    }
}
