//! Execution devices and the simulated-GPU timing model.

use std::time::Duration;

/// Statistics from one graph execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Wall-clock time actually spent computing on this machine.
    pub wall: Duration,
    /// Device-model time: equals `wall` on CPU; on the simulated GPU it is
    /// the analytic latency+throughput estimate. Benchmarks report this.
    pub simulated: Duration,
    /// Floating-point operations executed (analytic count).
    pub flops: u64,
    /// Bytes moved across the host/device boundary (inputs + outputs).
    pub transferred_bytes: u64,
}

impl RunStats {
    /// Accumulate another run into this one (batch loops).
    pub fn accumulate(&mut self, other: RunStats) {
        self.wall += other.wall;
        self.simulated += other.simulated;
        self.flops += other.flops;
        self.transferred_bytes += other.transferred_bytes;
    }
}

/// Parameters of the simulated GPU.
///
/// The paper's Fig. 2(d) runs on an Nvidia K80. This environment has no
/// GPU, so per the substitution rule the device executes the *same CPU
/// kernels* (outputs are identical) and reports an analytic execution time:
///
/// ```text
/// t = launch_latency + transferred_bytes / pcie_bandwidth + flops / throughput
/// ```
///
/// Defaults approximate a K80-class card on *small-batch inference GEMMs*
/// (not peak FLOPs): a few milliseconds of fixed kernel-launch/driver
/// overhead per inference call, ~6 GB/s effective PCIe transfer, and
/// ~25 GFLOP/s effective throughput — roughly 15× this crate's scalar CPU
/// kernels, matching the ~15× large-batch speedup the paper measures in
/// Fig. 2(d). The *shape* this produces — latency-bound (no better than
/// CPU) at small batch, throughput-bound (order-of-magnitude faster) at
/// large batch — is the phenomenon Fig. 2(d) reports; see DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Fixed overhead per inference call (kernel launches, driver).
    pub launch_latency: Duration,
    /// Sustained FLOP/s of the simulated card.
    pub flops_per_sec: f64,
    /// Effective host<->device bandwidth, bytes/s.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            launch_latency: Duration::from_micros(3000),
            flops_per_sec: 2.5e10,
            bandwidth_bytes_per_sec: 6.0e9,
        }
    }
}

impl GpuModel {
    /// Simulated execution time for a run.
    pub fn simulate(&self, flops: u64, transferred_bytes: u64) -> Duration {
        let compute = flops as f64 / self.flops_per_sec;
        let transfer = transferred_bytes as f64 / self.bandwidth_bytes_per_sec;
        self.launch_latency + Duration::from_secs_f64(compute + transfer)
    }
}

/// Where a session executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Device {
    /// Host CPU. `threads` bounds intra-query parallelism for batched runs.
    Cpu { threads: usize },
    /// The simulated GPU (see [`GpuModel`]).
    SimulatedGpu(GpuModel),
}

impl Default for Device {
    fn default() -> Self {
        Device::cpu_single()
    }
}

impl Device {
    /// Single-threaded CPU device (the standalone-ORT configuration).
    pub fn cpu_single() -> Device {
        Device::Cpu { threads: 1 }
    }

    /// CPU device using up to all available cores.
    pub fn cpu_parallel() -> Device {
        Device::Cpu {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Default simulated GPU.
    pub fn simulated_gpu() -> Device {
        Device::SimulatedGpu(GpuModel::default())
    }

    /// Thread budget for batched execution (1 on the simulated GPU: the
    /// host side submits work serially).
    pub fn threads(&self) -> usize {
        match self {
            Device::Cpu { threads } => (*threads).max(1),
            Device::SimulatedGpu(_) => 1,
        }
    }

    /// Convert measured wall time + counters into device-model time.
    pub fn simulate(&self, wall: Duration, flops: u64, transferred_bytes: u64) -> Duration {
        match self {
            Device::Cpu { .. } => wall,
            Device::SimulatedGpu(model) => model.simulate(flops, transferred_bytes),
        }
    }

    /// True if this device reports analytic (not wall-clock) times.
    pub fn is_simulated(&self) -> bool {
        matches!(self, Device::SimulatedGpu(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_simulated_equals_wall() {
        let d = Device::cpu_single();
        let wall = Duration::from_millis(7);
        assert_eq!(d.simulate(wall, 1_000_000, 4096), wall);
        assert!(!d.is_simulated());
        assert_eq!(d.threads(), 1);
    }

    #[test]
    fn gpu_latency_floor() {
        let model = GpuModel::default();
        // A tiny run is dominated by launch latency.
        let t = model.simulate(1000, 1000);
        assert!(t >= model.launch_latency);
        assert!(t < model.launch_latency + Duration::from_micros(10));
    }

    #[test]
    fn gpu_throughput_scaling() {
        let model = GpuModel {
            launch_latency: Duration::ZERO,
            flops_per_sec: 1e9,
            bandwidth_bytes_per_sec: 1e9,
        };
        let t = model.simulate(2_000_000_000, 0);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
        let t = model.simulate(0, 500_000_000);
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gpu_device_single_host_thread() {
        let d = Device::simulated_gpu();
        assert!(d.is_simulated());
        assert_eq!(d.threads(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = RunStats {
            wall: Duration::from_millis(1),
            simulated: Duration::from_millis(2),
            flops: 10,
            transferred_bytes: 100,
        };
        a.accumulate(RunStats {
            wall: Duration::from_millis(3),
            simulated: Duration::from_millis(4),
            flops: 5,
            transferred_bytes: 50,
        });
        assert_eq!(a.wall, Duration::from_millis(4));
        assert_eq!(a.simulated, Duration::from_millis(6));
        assert_eq!(a.flops, 15);
        assert_eq!(a.transferred_bytes, 150);
    }
}
