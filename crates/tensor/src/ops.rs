//! Operators and their CPU kernels.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;
use std::fmt;

/// A tensor operator.
///
/// The set covers what the paper's NN translations need (§4.2 "NN
/// translation"): GEMM-based tree scoring, linear/logistic regression,
/// MLPs, scalers and one-hot featurizers, plus the reduction/comparison
/// plumbing they require. Every operator has a reference CPU kernel in
/// [`Op::eval`] and an analytic FLOP estimate in [`Op::flops`] used by the
/// simulated-GPU timing model and the cost-based optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Matrix product `A[m,k] × B[k,n] → [m,n]`.
    MatMul,
    /// Fused `alpha·(A×B) + beta·C` where `C` broadcasts per-row.
    Gemm { alpha: f32, beta: f32 },
    /// Elementwise/broadcast addition.
    Add,
    /// Elementwise/broadcast subtraction.
    Sub,
    /// Elementwise/broadcast multiplication.
    Mul,
    /// Elementwise/broadcast division.
    Div,
    /// Elementwise negation.
    Neg,
    /// Elementwise max(x, 0).
    Relu,
    /// Elementwise logistic sigmoid.
    Sigmoid,
    /// Elementwise tanh.
    Tanh,
    /// Elementwise e^x.
    Exp,
    /// Comparison producing 0.0/1.0: `a < b`.
    Less,
    /// Comparison producing 0.0/1.0: `a <= b`.
    LessOrEqual,
    /// Comparison producing 0.0/1.0: `a > b`.
    Greater,
    /// Comparison producing 0.0/1.0: `a >= b`.
    GreaterOrEqual,
    /// Comparison producing 0.0/1.0: `a == b` (exact).
    Equal,
    /// Select columns of a matrix by index.
    GatherCols { indices: Vec<usize> },
    /// Concatenate along an axis (0 = rows, 1 = cols).
    Concat { axis: usize },
    /// Reshape to a fixed target shape.
    Reshape { shape: Vec<usize> },
    /// Sum along an axis of a matrix → vector.
    ReduceSum { axis: usize },
    /// Mean along an axis of a matrix → vector.
    ReduceMean { axis: usize },
    /// Row-wise argmax of a matrix → vector of indices (as f32).
    ArgMax,
    /// Row-wise softmax of a matrix.
    Softmax,
}

impl Op {
    /// Operator name (for display / diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Op::MatMul => "MatMul",
            Op::Gemm { .. } => "Gemm",
            Op::Add => "Add",
            Op::Sub => "Sub",
            Op::Mul => "Mul",
            Op::Div => "Div",
            Op::Neg => "Neg",
            Op::Relu => "Relu",
            Op::Sigmoid => "Sigmoid",
            Op::Tanh => "Tanh",
            Op::Exp => "Exp",
            Op::Less => "Less",
            Op::LessOrEqual => "LessOrEqual",
            Op::Greater => "Greater",
            Op::GreaterOrEqual => "GreaterOrEqual",
            Op::Equal => "Equal",
            Op::GatherCols { .. } => "GatherCols",
            Op::Concat { .. } => "Concat",
            Op::Reshape { .. } => "Reshape",
            Op::ReduceSum { .. } => "ReduceSum",
            Op::ReduceMean { .. } => "ReduceMean",
            Op::ArgMax => "ArgMax",
            Op::Softmax => "Softmax",
        }
    }

    /// Number of inputs this operator expects. `None` = variadic (>=1).
    pub fn arity(&self) -> Option<usize> {
        match self {
            Op::MatMul
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Less
            | Op::LessOrEqual
            | Op::Greater
            | Op::GreaterOrEqual
            | Op::Equal => Some(2),
            Op::Gemm { .. } => Some(3),
            Op::Concat { .. } => None,
            _ => Some(1),
        }
    }

    /// Evaluate the operator on `inputs`.
    pub fn eval(&self, inputs: &[&Tensor]) -> Result<Tensor> {
        if let Some(expected) = self.arity() {
            if inputs.len() != expected {
                return Err(TensorError::ArityMismatch {
                    op: self.name().into(),
                    expected,
                    actual: inputs.len(),
                });
            }
        } else if inputs.is_empty() {
            return Err(TensorError::ArityMismatch {
                op: self.name().into(),
                expected: 1,
                actual: 0,
            });
        }
        match self {
            Op::MatMul => matmul(inputs[0], inputs[1]),
            Op::Gemm { alpha, beta } => gemm(inputs[0], inputs[1], inputs[2], *alpha, *beta),
            Op::Add => broadcast_binary(inputs[0], inputs[1], "Add", |a, b| a + b),
            Op::Sub => broadcast_binary(inputs[0], inputs[1], "Sub", |a, b| a - b),
            Op::Mul => broadcast_binary(inputs[0], inputs[1], "Mul", |a, b| a * b),
            Op::Div => broadcast_binary(inputs[0], inputs[1], "Div", |a, b| a / b),
            Op::Neg => Ok(unary(inputs[0], |x| -x)),
            Op::Relu => Ok(unary(inputs[0], |x| x.max(0.0))),
            Op::Sigmoid => Ok(unary(inputs[0], |x| 1.0 / (1.0 + (-x).exp()))),
            Op::Tanh => Ok(unary(inputs[0], f32::tanh)),
            Op::Exp => Ok(unary(inputs[0], f32::exp)),
            Op::Less => broadcast_binary(inputs[0], inputs[1], "Less", |a, b| bool2f(a < b)),
            Op::LessOrEqual => {
                broadcast_binary(inputs[0], inputs[1], "LessOrEqual", |a, b| bool2f(a <= b))
            }
            Op::Greater => broadcast_binary(inputs[0], inputs[1], "Greater", |a, b| bool2f(a > b)),
            Op::GreaterOrEqual => {
                broadcast_binary(inputs[0], inputs[1], "GreaterOrEqual", |a, b| {
                    bool2f(a >= b)
                })
            }
            Op::Equal => broadcast_binary(inputs[0], inputs[1], "Equal", |a, b| bool2f(a == b)),
            Op::GatherCols { indices } => gather_cols(inputs[0], indices),
            Op::Concat { axis } => concat(inputs, *axis),
            Op::Reshape { shape } => inputs[0].clone().reshape(shape.clone()),
            Op::ReduceSum { axis } => reduce(inputs[0], *axis, false),
            Op::ReduceMean { axis } => reduce(inputs[0], *axis, true),
            Op::ArgMax => argmax(inputs[0]),
            Op::Softmax => softmax(inputs[0]),
        }
    }

    /// Analytic floating-point operation count for this op on the given
    /// input shapes (used by the simulated-GPU timing model and cost-based
    /// optimizer; precision matters less than proportionality).
    pub fn flops(&self, inputs: &[&Tensor]) -> u64 {
        let out_elems = |t: &Tensor| t.numel() as u64;
        match self {
            Op::MatMul | Op::Gemm { .. } => {
                if inputs.len() >= 2 && inputs[0].rank() == 2 && inputs[1].rank() == 2 {
                    let m = inputs[0].rows() as u64;
                    let k = inputs[0].cols() as u64;
                    let n = inputs[1].cols() as u64;
                    2 * m * k * n
                } else {
                    0
                }
            }
            Op::Softmax => inputs.first().map(|t| 4 * out_elems(t)).unwrap_or(0),
            Op::Sigmoid | Op::Tanh | Op::Exp => {
                inputs.first().map(|t| 4 * out_elems(t)).unwrap_or(0)
            }
            _ => inputs.iter().map(|t| out_elems(t)).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[inline]
fn bool2f(b: bool) -> f32 {
    if b {
        1.0
    } else {
        0.0
    }
}

fn unary(a: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let mut out = a.clone();
    for x in out.data_mut() {
        *x = f(*x);
    }
    out
}

/// Broadcasting for binary ops. Supported shapes:
/// * identical shapes (elementwise);
/// * `[m,n] ∘ [n]` — the vector broadcasts across rows;
/// * `[m,n] ∘ [1]` and `[k] ∘ [1]` — scalar broadcast;
/// * the mirrored versions of the above.
fn broadcast_binary(
    a: &Tensor,
    b: &Tensor,
    op: &str,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor> {
    // Same shape: straight elementwise.
    if a.shape() == b.shape() {
        let data = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        return Tensor::new(a.shape().to_vec(), data);
    }
    // Scalar on either side.
    if b.numel() == 1 {
        let s = b.data()[0];
        let data = a.data().iter().map(|&x| f(x, s)).collect();
        return Tensor::new(a.shape().to_vec(), data);
    }
    if a.numel() == 1 {
        let s = a.data()[0];
        let data = b.data().iter().map(|&y| f(s, y)).collect();
        return Tensor::new(b.shape().to_vec(), data);
    }
    // Matrix ∘ row-vector.
    if a.rank() == 2 && b.rank() == 1 && a.cols() == b.numel() {
        let (m, n) = (a.rows(), a.cols());
        let mut data = Vec::with_capacity(m * n);
        let bv = b.data();
        for i in 0..m {
            let row = &a.data()[i * n..(i + 1) * n];
            for j in 0..n {
                data.push(f(row[j], bv[j]));
            }
        }
        return Tensor::matrix(m, n, data);
    }
    if b.rank() == 2 && a.rank() == 1 && b.cols() == a.numel() {
        let (m, n) = (b.rows(), b.cols());
        let mut data = Vec::with_capacity(m * n);
        let av = a.data();
        for i in 0..m {
            let row = &b.data()[i * n..(i + 1) * n];
            for j in 0..n {
                data.push(f(av[j], row[j]));
            }
        }
        return Tensor::matrix(m, n, data);
    }
    Err(TensorError::ShapeMismatch {
        expected: format!("{op}-broadcastable shapes"),
        actual: format!("{:?} vs {:?}", a.shape(), b.shape()),
    })
}

/// `A[m,k] × B[k,n]`. Rank-1 `A` is treated as `[1,k]`; rank-1 `B` as `[k,1]`.
///
/// The kernel uses the i-k-j loop order so the inner loop streams both the
/// B row and the output row sequentially — the standard cache-friendly
/// ordering for row-major data.
fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k1) = if a.rank() == 2 {
        (a.rows(), a.cols())
    } else {
        (1, a.numel())
    };
    let (k2, n) = if b.rank() == 2 {
        (b.rows(), b.cols())
    } else {
        (b.numel(), 1)
    };
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: format!("inner dims to match ({k1})"),
            actual: format!("{k2}"),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k1..(i + 1) * k1];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue; // sparse-weight fast path; exact zeros are common after pruning
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    if a.rank() == 1 && b.rank() == 1 {
        Tensor::new(vec![1], out)
    } else if b.rank() == 1 {
        Tensor::new(vec![m], out)
    } else {
        Tensor::matrix(m, n, out)
    }
}

fn gemm(a: &Tensor, b: &Tensor, c: &Tensor, alpha: f32, beta: f32) -> Result<Tensor> {
    let mut prod = matmul(a, b)?;
    if alpha != 1.0 {
        for x in prod.data_mut() {
            *x *= alpha;
        }
    }
    if beta == 0.0 {
        return Ok(prod);
    }
    let scaled_c = if beta == 1.0 {
        c.clone()
    } else {
        unary(c, |x| x * beta)
    };
    broadcast_binary(&prod, &scaled_c, "Gemm", |x, y| x + y)
}

fn gather_cols(a: &Tensor, indices: &[usize]) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "rank 2".into(),
            actual: format!("rank {}", a.rank()),
        });
    }
    let (m, n) = (a.rows(), a.cols());
    if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
        return Err(TensorError::ShapeMismatch {
            expected: format!("column index < {n}"),
            actual: format!("{bad}"),
        });
    }
    let k = indices.len();
    let mut out = Vec::with_capacity(m * k);
    for i in 0..m {
        let row = &a.data()[i * n..(i + 1) * n];
        for &j in indices {
            out.push(row[j]);
        }
    }
    Tensor::matrix(m, k, out)
}

fn concat(inputs: &[&Tensor], axis: usize) -> Result<Tensor> {
    match axis {
        0 => Tensor::vstack(&inputs.iter().map(|&t| t.clone()).collect::<Vec<_>>()),
        1 => {
            let m = inputs[0].rows();
            if inputs.iter().any(|t| t.rank() != 2 || t.rows() != m) {
                return Err(TensorError::ShapeMismatch {
                    expected: format!("[{m}, *] matrices"),
                    actual: "mismatched row counts".into(),
                });
            }
            let total: usize = inputs.iter().map(|t| t.cols()).sum();
            let mut out = Vec::with_capacity(m * total);
            for i in 0..m {
                for t in inputs {
                    out.extend_from_slice(t.row(i)?);
                }
            }
            Tensor::matrix(m, total, out)
        }
        _ => Err(TensorError::InvalidGraph(format!(
            "Concat axis must be 0 or 1, got {axis}"
        ))),
    }
}

fn reduce(a: &Tensor, axis: usize, mean: bool) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "rank 2".into(),
            actual: format!("rank {}", a.rank()),
        });
    }
    let (m, n) = (a.rows(), a.cols());
    match axis {
        0 => {
            let mut out = vec![0.0f32; n];
            for i in 0..m {
                for (o, &v) in out.iter_mut().zip(a.row(i)?) {
                    *o += v;
                }
            }
            if mean && m > 0 {
                for o in &mut out {
                    *o /= m as f32;
                }
            }
            Ok(Tensor::vector(out))
        }
        1 => {
            let mut out = Vec::with_capacity(m);
            for i in 0..m {
                let s: f32 = a.row(i)?.iter().sum();
                out.push(if mean && n > 0 { s / n as f32 } else { s });
            }
            Ok(Tensor::vector(out))
        }
        _ => Err(TensorError::InvalidGraph(format!(
            "Reduce axis must be 0 or 1, got {axis}"
        ))),
    }
}

fn argmax(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "rank 2".into(),
            actual: format!("rank {}", a.rank()),
        });
    }
    let mut out = Vec::with_capacity(a.rows());
    for i in 0..a.rows() {
        let row = a.row(i)?;
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best as f32);
    }
    Ok(Tensor::vector(out))
}

fn softmax(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "rank 2".into(),
            actual: format!("rank {}", a.rank()),
        });
    }
    let (m, n) = (a.rows(), a.cols());
    let mut out = Vec::with_capacity(m * n);
    for i in 0..m {
        let row = a.row(i)?;
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        out.extend(exps.into_iter().map(|e| e / sum));
    }
    Tensor::matrix(m, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(r: usize, c: usize, d: Vec<f32>) -> Tensor {
        Tensor::matrix(r, c, d).unwrap()
    }

    #[test]
    fn matmul_basic() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let out = Op::MatMul.eval(&[&a, &b]).unwrap();
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = m(2, 3, vec![0.0; 6]);
        let b = m(2, 2, vec![0.0; 4]);
        assert!(Op::MatMul.eval(&[&a, &b]).is_err());
    }

    #[test]
    fn matmul_vector_forms() {
        let a = Tensor::vector(vec![1., 2.]);
        let b = m(2, 2, vec![1., 0., 0., 1.]);
        let out = Op::MatMul.eval(&[&a, &b]).unwrap();
        assert_eq!(out.shape(), &[1, 2]);
        let bv = Tensor::vector(vec![3., 4.]);
        let out2 = Op::MatMul
            .eval(&[&m(2, 2, vec![1., 0., 0., 1.]), &bv])
            .unwrap();
        assert_eq!(out2.shape(), &[2]);
        assert_eq!(out2.data(), &[3., 4.]);
    }

    #[test]
    fn matmul_skips_zero_weights() {
        // The zero fast path must not change results.
        let a = m(1, 3, vec![0.0, 2.0, 0.0]);
        let b = m(3, 1, vec![5.0, 7.0, 9.0]);
        let out = Op::MatMul.eval(&[&a, &b]).unwrap();
        assert_eq!(out.data(), &[14.0]);
    }

    #[test]
    fn gemm_matches_matmul_plus_bias() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let b = m(2, 2, vec![1., 0., 0., 1.]);
        let bias = Tensor::vector(vec![10., 20.]);
        let out = Op::Gemm {
            alpha: 1.0,
            beta: 1.0,
        }
        .eval(&[&a, &b, &bias])
        .unwrap();
        assert_eq!(out.data(), &[11., 22., 13., 24.]);
        // alpha/beta scaling
        let out = Op::Gemm {
            alpha: 2.0,
            beta: 0.5,
        }
        .eval(&[&a, &b, &bias])
        .unwrap();
        assert_eq!(out.data(), &[7., 14., 11., 18.]);
    }

    #[test]
    fn broadcast_add_row_vector() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let v = Tensor::vector(vec![10., 20.]);
        assert_eq!(
            Op::Add.eval(&[&a, &v]).unwrap().data(),
            &[11., 22., 13., 24.]
        );
        // mirrored
        assert_eq!(Op::Sub.eval(&[&v, &a]).unwrap().data(), &[9., 18., 7., 16.]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = m(1, 3, vec![1., 2., 3.]);
        let s = Tensor::scalar(2.0);
        assert_eq!(Op::Mul.eval(&[&a, &s]).unwrap().data(), &[2., 4., 6.]);
        assert_eq!(Op::Div.eval(&[&a, &s]).unwrap().data(), &[0.5, 1., 1.5]);
    }

    #[test]
    fn broadcast_incompatible() {
        let a = m(2, 3, vec![0.0; 6]);
        let v = Tensor::vector(vec![0.0; 2]);
        assert!(Op::Add.eval(&[&a, &v]).is_err());
    }

    #[test]
    fn comparisons_produce_indicator() {
        let a = Tensor::vector(vec![1., 5., 3.]);
        let b = Tensor::vector(vec![2., 2., 3.]);
        assert_eq!(Op::Less.eval(&[&a, &b]).unwrap().data(), &[1., 0., 0.]);
        assert_eq!(
            Op::LessOrEqual.eval(&[&a, &b]).unwrap().data(),
            &[1., 0., 1.]
        );
        assert_eq!(Op::Greater.eval(&[&a, &b]).unwrap().data(), &[0., 1., 0.]);
        assert_eq!(
            Op::GreaterOrEqual.eval(&[&a, &b]).unwrap().data(),
            &[0., 1., 1.]
        );
        assert_eq!(Op::Equal.eval(&[&a, &b]).unwrap().data(), &[0., 0., 1.]);
    }

    #[test]
    fn activations() {
        let a = Tensor::vector(vec![-1., 0., 1.]);
        assert_eq!(Op::Relu.eval(&[&a]).unwrap().data(), &[0., 0., 1.]);
        let s = Op::Sigmoid.eval(&[&a]).unwrap();
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[0] < 0.5 && s.data()[2] > 0.5);
        assert_eq!(Op::Neg.eval(&[&a]).unwrap().data(), &[1., 0., -1.]);
    }

    #[test]
    fn gather_and_concat() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let g = Op::GatherCols {
            indices: vec![2, 0],
        }
        .eval(&[&a])
        .unwrap();
        assert_eq!(g.data(), &[3., 1., 6., 4.]);
        assert!(Op::GatherCols { indices: vec![5] }.eval(&[&a]).is_err());

        let b = m(2, 1, vec![9., 10.]);
        let c = Op::Concat { axis: 1 }.eval(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[2, 4]);
        assert_eq!(c.row(0).unwrap(), &[1., 2., 3., 9.]);
        let r = Op::Concat { axis: 0 }.eval(&[&a, &a]).unwrap();
        assert_eq!(r.shape(), &[4, 3]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(
            Op::ReduceSum { axis: 0 }.eval(&[&a]).unwrap().data(),
            &[5., 7., 9.]
        );
        assert_eq!(
            Op::ReduceSum { axis: 1 }.eval(&[&a]).unwrap().data(),
            &[6., 15.]
        );
        assert_eq!(
            Op::ReduceMean { axis: 1 }.eval(&[&a]).unwrap().data(),
            &[2., 5.]
        );
    }

    #[test]
    fn argmax_and_softmax() {
        let a = m(2, 3, vec![1., 3., 2., 9., 0., 1.]);
        assert_eq!(Op::ArgMax.eval(&[&a]).unwrap().data(), &[1., 0.]);
        let s = Op::Softmax.eval(&[&a]).unwrap();
        let row0: f32 = s.row(0).unwrap().iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!(s.at(0, 1) > s.at(0, 0));
    }

    #[test]
    fn arity_enforced() {
        let a = Tensor::vector(vec![1.0]);
        assert!(matches!(
            Op::MatMul.eval(&[&a]),
            Err(TensorError::ArityMismatch { .. })
        ));
        assert!(Op::Concat { axis: 0 }.eval(&[]).is_err());
    }

    #[test]
    fn flops_estimates() {
        let a = m(4, 8, vec![0.0; 32]);
        let b = m(8, 2, vec![0.0; 16]);
        assert_eq!(Op::MatMul.flops(&[&a, &b]), 2 * 4 * 8 * 2);
        assert_eq!(Op::Add.flops(&[&a, &a]), 32);
        assert_eq!(Op::Sigmoid.flops(&[&a]), 128);
    }
}
