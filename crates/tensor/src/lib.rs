//! # raven-tensor
//!
//! A from-scratch tensor-graph inference runtime: the stand-in for ONNX
//! Runtime in the raven-rs reproduction of *"Extending Relational Query
//! Processing with ML Inference"* (CIDR 2020).
//!
//! The paper integrates ONNX Runtime inside SQL Server and relies on three
//! of its properties, all reproduced here:
//!
//! 1. **An operator graph over dense `f32` tensors** ([`graph::Graph`],
//!    [`ops::Op`]) covering the linear-algebra operators that classical ML
//!    models translate into (GEMM-based tree scoring, logistic regression,
//!    MLPs, featurizers).
//! 2. **Compiler-style graph optimizations** ([`optimize`]): constant
//!    folding (the paper's §4.1 "compiler optimizations ... such as
//!    constant-folding within ONNX Runtime"), dead-code elimination, and
//!    MatMul+Add → Gemm fusion.
//! 3. **Inference sessions with caching and batch execution**
//!    ([`session`]): sessions own an optimized graph; a
//!    [`session::SessionCache`] reproduces SQL Server's
//!    model/inference-session caching that makes warm small-batch queries
//!    fast (Fig. 3, observation ii); batched and multi-threaded execution
//!    reproduce observations (iii) and (v).
//!
//! Hardware note: the paper's Fig. 2(d) uses an Nvidia K80. This crate has
//! no GPU; [`device::Device`] `SimulatedGpu` runs the *same kernels*
//! (results are bit-identical to CPU) and reports an analytic *simulated*
//! execution time from a calibrated launch-latency + throughput model. See
//! `DESIGN.md` §5 for the substitution argument.

pub mod device;
pub mod error;
pub mod graph;
pub mod ops;
pub mod optimize;
pub mod serialize;
pub mod session;
pub mod tensor;

pub use device::{Device, RunStats};
pub use error::TensorError;
pub use graph::{Graph, GraphBuilder, Node};
pub use ops::Op;
pub use session::{InferenceSession, SessionCache, SessionOptions};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
