//! Tensor computation graphs.

use crate::error::TensorError;
use crate::ops::Op;
use crate::tensor::Tensor;
use crate::Result;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One operator application: `output = op(inputs...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub op: Op,
    pub inputs: Vec<String>,
    pub output: String,
}

/// A dataflow graph of tensor operators.
///
/// Names bind everything together: graph inputs, initializers (weights
/// baked into the model) and node outputs share one namespace. A graph is
/// the unit that NN translation produces and that an
/// [`crate::InferenceSession`] optimizes and executes — the analogue of an
/// ONNX model file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
    pub initializers: HashMap<String, Tensor>,
}

impl Graph {
    /// Validate structural invariants:
    /// * every node input is a graph input, an initializer, or some node's
    ///   output;
    /// * no name is produced twice (single static assignment);
    /// * every graph output is produced;
    /// * the graph is acyclic (checked by attempting a topological sort).
    pub fn validate(&self) -> Result<()> {
        let mut produced: HashSet<&str> = HashSet::new();
        for name in &self.inputs {
            produced.insert(name);
        }
        for name in self.initializers.keys() {
            if !produced.insert(name) {
                return Err(TensorError::InvalidGraph(format!(
                    "initializer {name} shadows a graph input"
                )));
            }
        }
        let mut node_outputs: HashSet<&str> = HashSet::new();
        for node in &self.nodes {
            if produced.contains(node.output.as_str()) || !node_outputs.insert(node.output.as_str())
            {
                return Err(TensorError::InvalidGraph(format!(
                    "name {} produced more than once",
                    node.output
                )));
            }
            if let Some(expected) = node.op.arity() {
                if node.inputs.len() != expected {
                    return Err(TensorError::ArityMismatch {
                        op: node.op.name().into(),
                        expected,
                        actual: node.inputs.len(),
                    });
                }
            }
        }
        let all: HashSet<&str> = produced
            .iter()
            .copied()
            .chain(node_outputs.iter().copied())
            .collect();
        for node in &self.nodes {
            for input in &node.inputs {
                if !all.contains(input.as_str()) {
                    return Err(TensorError::NameNotFound(input.clone()));
                }
            }
        }
        for output in &self.outputs {
            if !all.contains(output.as_str()) {
                return Err(TensorError::NameNotFound(output.clone()));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Kahn topological sort; errors on cycles. Returns node indices in
    /// executable order.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let producer: HashMap<&str, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.output.as_str(), i))
            .collect();
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for input in &node.inputs {
                if let Some(&p) = producer.get(input.as_str()) {
                    indegree[i] += 1;
                    dependents[p].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(TensorError::InvalidGraph("cycle detected".into()));
        }
        Ok(order)
    }

    /// Execute the graph with the given named inputs.
    ///
    /// Returns the requested outputs plus the total FLOPs executed (fed to
    /// device timing models).
    pub fn run(&self, inputs: &HashMap<String, Tensor>) -> Result<(Vec<Tensor>, u64)> {
        let mut env: HashMap<&str, Tensor> =
            HashMap::with_capacity(self.initializers.len() + inputs.len() + self.nodes.len());
        for (k, v) in &self.initializers {
            env.insert(k.as_str(), v.clone());
        }
        for name in &self.inputs {
            let t = inputs
                .get(name)
                .ok_or_else(|| TensorError::NameNotFound(name.clone()))?;
            env.insert(name.as_str(), t.clone());
        }
        let mut flops = 0u64;
        for &i in &self.topo_order()? {
            let node = &self.nodes[i];
            let args: Vec<&Tensor> = node
                .inputs
                .iter()
                .map(|n| {
                    env.get(n.as_str())
                        .ok_or_else(|| TensorError::NameNotFound(n.clone()))
                })
                .collect::<Result<_>>()?;
            flops += node.op.flops(&args);
            let out = node.op.eval(&args)?;
            env.insert(node.output.as_str(), out);
        }
        let outputs = self
            .outputs
            .iter()
            .map(|n| {
                env.get(n.as_str())
                    .cloned()
                    .ok_or_else(|| TensorError::NameNotFound(n.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok((outputs, flops))
    }

    /// Total number of parameters (initializer elements).
    pub fn num_parameters(&self) -> usize {
        self.initializers.values().map(Tensor::numel).sum()
    }

    /// Names of all node outputs (useful for debugging passes).
    pub fn node_output_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.output.as_str()).collect()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Graph(inputs={:?}, outputs={:?}, {} initializers, {} nodes)",
            self.inputs,
            self.outputs,
            self.initializers.len(),
            self.nodes.len()
        )?;
        for node in &self.nodes {
            writeln!(
                f,
                "  {} = {}({})",
                node.output,
                node.op,
                node.inputs.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Graph`]s; generates fresh value names.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
    counter: usize,
}

impl GraphBuilder {
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Declare a graph input.
    pub fn input(&mut self, name: impl Into<String>) -> String {
        let name = name.into();
        self.graph.inputs.push(name.clone());
        name
    }

    /// Add a weight/constant tensor.
    pub fn initializer(&mut self, name: impl Into<String>, tensor: Tensor) -> String {
        let name = name.into();
        self.graph.initializers.insert(name.clone(), tensor);
        name
    }

    /// Add a node; returns the fresh output name.
    pub fn node(&mut self, op: Op, inputs: &[&str]) -> String {
        let output = format!("v{}", self.counter);
        self.counter += 1;
        self.graph.nodes.push(Node {
            op,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.clone(),
        });
        output
    }

    /// Add a node with an explicit output name.
    pub fn named_node(&mut self, op: Op, inputs: &[&str], output: impl Into<String>) -> String {
        let output = output.into();
        self.graph.nodes.push(Node {
            op,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.clone(),
        });
        output
    }

    /// Mark a name as a graph output.
    pub fn output(&mut self, name: impl Into<String>) {
        self.graph.outputs.push(name.into());
    }

    /// Finish, validating the graph.
    pub fn build(self) -> Result<Graph> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = sigmoid(x·W + b)
    fn logistic_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.input("x");
        let w = b.initializer("w", Tensor::matrix(2, 1, vec![1.0, -1.0]).unwrap());
        let bias = b.initializer("b", Tensor::vector(vec![0.5]));
        let z = b.node(
            Op::Gemm {
                alpha: 1.0,
                beta: 1.0,
            },
            &[&x, &w, &bias],
        );
        let y = b.node(Op::Sigmoid, &[&z]);
        b.output(y);
        b.build().unwrap()
    }

    #[test]
    fn build_and_run() {
        let g = logistic_graph();
        let mut inputs = HashMap::new();
        inputs.insert(
            "x".to_string(),
            Tensor::matrix(2, 2, vec![1.0, 1.0, 3.0, 0.0]).unwrap(),
        );
        let (outs, flops) = g.run(&inputs).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].shape(), &[2, 1]);
        // row0: sigmoid(1-1+0.5)=sigmoid(0.5)
        assert!((outs[0].data()[0] - 1.0 / (1.0 + (-0.5f32).exp())).abs() < 1e-6);
        assert!(flops > 0);
    }

    #[test]
    fn missing_input_is_error() {
        let g = logistic_graph();
        let err = g.run(&HashMap::new());
        assert!(matches!(err, Err(TensorError::NameNotFound(_))));
    }

    #[test]
    fn validate_rejects_duplicate_output() {
        let mut g = logistic_graph();
        let dup = g.nodes[0].clone();
        g.nodes.push(dup);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_input() {
        let mut g = logistic_graph();
        g.nodes[0].inputs[0] = "ghost".into();
        assert!(matches!(g.validate(), Err(TensorError::NameNotFound(_))));
    }

    #[test]
    fn validate_rejects_cycle() {
        let mut g = Graph {
            inputs: vec!["x".into()],
            outputs: vec!["a".into()],
            ..Default::default()
        };
        g.nodes.push(Node {
            op: Op::Neg,
            inputs: vec!["b".into()],
            output: "a".into(),
        });
        g.nodes.push(Node {
            op: Op::Neg,
            inputs: vec!["a".into()],
            output: "b".into(),
        });
        assert!(g.validate().is_err());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = logistic_graph();
        let order = g.topo_order().unwrap();
        // Gemm (node 0) must run before Sigmoid (node 1).
        let pos0 = order.iter().position(|&i| i == 0).unwrap();
        let pos1 = order.iter().position(|&i| i == 1).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn parameters_counted() {
        let g = logistic_graph();
        assert_eq!(g.num_parameters(), 3);
    }

    #[test]
    fn display_contains_ops() {
        let s = logistic_graph().to_string();
        assert!(s.contains("Gemm"));
        assert!(s.contains("Sigmoid"));
    }
}
